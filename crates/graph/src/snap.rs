//! `.gtpq` binary snapshots: versioned, checksummed, mmap-loadable.
//!
//! The container lays every large array of a [`DataGraph`] and its
//! [`Condensation`] out as 64-byte-aligned little-endian *int runs* so a
//! loader can reinterpret the file bytes in place: [`GraphSnapshot::open`]
//! with [`LoadMode::Mmap`] maps the file read-only and rebuilds the graph as
//! borrowed [`IntRun`] views over the mapping — cold
//! start is O(page faults) plus one linear decode of the (comparatively
//! small) materialized sections, not O(parse).
//!
//! # On-disk layout
//!
//! ```text
//! [ header: 64 bytes ]
//! [ section 0 data, padded to 64 ]
//! [ section 1 data, padded to 64 ]
//! ...
//! [ TOC: 32 bytes per section ]
//! ```
//!
//! The fixed header is written last (the writer seeks back), which lets
//! producers stream sections without knowing counts up front:
//!
//! | offset | field | type |
//! |--------|-------|------|
//! | 0  | magic `GTPQSNAP` | `[u8; 8]` |
//! | 8  | format version (= 2) | `u32` |
//! | 12 | flags | `u32` |
//! | 16 | section count | `u64` |
//! | 24 | TOC byte offset | `u64` |
//! | 32 | total file length | `u64` |
//! | 40 | epoch | `u64` |
//! | 48 | TOC CRC-32 | `u32` |
//! | 52 | header CRC-32 (bytes 0..52) | `u32` |
//! | 56 | reserved (zero) | `u64` |
//!
//! Each TOC entry is `{ kind: u32, crc: u32, offset: u64, byte_len: u64,
//! reserved: u64 }`.  Section offsets are multiples of 64, so every aligned
//! integer run in the file is aligned in the mapping too (mmap bases are
//! page-aligned; the heap fallback buffer is 8-byte aligned).
//!
//! # Verification policy
//!
//! The header and TOC checksums, the section-table bounds, the count
//! cross-checks against the `Meta` section, and a linear
//! monotonicity-and-span scan over **every** offsets run are verified on
//! **every** load — the offsets scan is what lets the slice accessors
//! (`Csr::neighbors` and friends) index without bounds branches: no corrupt
//! offset can survive a successful open.  Sections that are decoded into
//! owned structures anyway (symbol table, string dictionary, index
//! dictionaries) are always CRC-checked and validated field by field.  The
//! big mapped runs (adjacency targets, posting nodes, condensation arrays,
//! and the attribute tuple columns — decoded lazily, see
//! [`crate::tuples::AttrTuples`]) are CRC-checked *and* field-validated by
//! [`LoadMode::Heap`] and [`LoadMode::MmapVerified`]; plain
//! [`LoadMode::Mmap`] skips those passes to keep the open truly lazy — use
//! a verifying mode for files you do not trust (under plain mmap, a
//! malformed attribute entry degrades to a skipped attribute at access
//! time, never a panic).  Loading never causes undefined behaviour in any
//! mode: every mapped window is bounds- and alignment-checked before it is
//! wrapped.
//!
//! # External modification hazard
//!
//! A mapped load ([`LoadMode::Mmap`] / [`LoadMode::MmapVerified`]) borrows
//! the file's pages for the lifetime of the graph.  The mapping is private
//! and read-only, but it cannot protect against **another process**
//! truncating or rewriting the file in place while it is mapped: touching a
//! page past a new, shorter EOF raises `SIGBUS`, and in-place rewrites can
//! be observed as torn data.  Replacing the file via `rename(2)` is always
//! safe — the mapping keeps the old inode alive — and
//! [`GraphSnapshot::save`] itself only ever publishes by rename.  Where the
//! file may be truncated or rewritten in place by other software, load with
//! [`LoadMode::Heap`].
//!
//! # Version policy
//!
//! Backwards-compatible additions introduce new section kinds (readers skip
//! unknown kinds); anything else bumps the format version and old readers
//! reject the file with [`SnapshotError::UnsupportedVersion`].  Section kind
//! 33 is reserved for serialized reachability-index state.
//!
//! Version 2 added the embedding layer: a shared vector-value dictionary
//! (kinds 34–35) and the per-attribute similarity tables (kinds 36–47, see
//! [`crate::sim_index`]).  Version-1 files remain loadable — their graphs
//! simply carry no vector values and an empty sim catalog.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::attr::AttrValue;
use crate::condensation::{CompId, Condensation};
use crate::csr::Csr;
use crate::graph::{DataGraph, NodeId};
use crate::index::{AttrIndex, IntPairs};
use crate::mutate::GraphSnapshot;
use crate::run::{crc32, AlignedBytes, IntRun, RunElem, SnapshotBytes};
use crate::sim_index::{SimCatalog, SimTable};
use crate::symbol::{Symbol, SymbolTable};
use crate::tuples::{AttrColumns, AttrTuples, VecDict, TAG_INT, TAG_STR, TAG_VEC};

/// `GTPQSNAP`.
pub const MAGIC: [u8; 8] = *b"GTPQSNAP";
/// Current format version.  Version 2 added vector attribute values and the
/// similarity-table sections; readers accept versions `1..=FORMAT_VERSION`.
pub const FORMAT_VERSION: u32 = 2;
/// Section data alignment, in bytes.
pub const SECTION_ALIGN: u64 = 64;

const HEADER_LEN: u64 = 64;
const TOC_ENTRY_LEN: u64 = 32;
/// Hard cap on the section count — a corrupt header cannot make the loader
/// allocate an absurd TOC.
const MAX_SECTIONS: u64 = 4096;

/// How to load a snapshot file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadMode {
    /// Zero-copy `mmap`; the big runs borrow the mapping and their checksums
    /// are *not* verified (header, TOC, every offsets run and the
    /// materialized sections always are).  Falls back to [`LoadMode::Heap`]
    /// when mapping is unavailable.  The file must not be truncated or
    /// rewritten in place by another process while the graph is alive (see
    /// the [module docs](crate::snap#external-modification-hazard));
    /// replacing it via rename — as [`GraphSnapshot::save`] does — is safe.
    Mmap,
    /// Zero-copy `mmap` plus a full checksum pass over every section.
    MmapVerified,
    /// Portable fallback: read the whole file into an aligned heap buffer and
    /// verify every checksum.  The runs still borrow the shared buffer, so
    /// this path exercises the same code as the mapped one.
    Heap,
}

/// Typed failure of snapshot save/load.  Loading a corrupt or truncated file
/// reports one of these — it never panics and never touches invalid memory.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is shorter than a header, or a declared region runs past the
    /// end of the file.
    Truncated {
        /// Which region was cut off.
        what: &'static str,
    },
    /// The magic bytes are not `GTPQSNAP`.
    BadMagic,
    /// The format version is newer than this reader.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A stored CRC-32 does not match the bytes.
    ChecksumMismatch {
        /// Which region failed.
        section: &'static str,
    },
    /// Structurally invalid content (bad counts, non-monotone offsets,
    /// out-of-range ids, invalid UTF-8, ...).
    Malformed {
        /// Human-readable description.
        what: String,
    },
    /// Refused to save onto the file currently backing this graph's live
    /// mapping.  Although saves are atomic (temp file + rename, so the
    /// mapped inode itself would survive), replacing the source of a mapped
    /// graph with a copy of itself is almost always a mistake — save to a
    /// different path, or reload with [`LoadMode::Heap`] first.
    OverwritesMapped {
        /// The refused target path.
        path: PathBuf,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated { what } => write!(f, "snapshot truncated: {what}"),
            SnapshotError::BadMagic => write!(f, "not a .gtpq snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this reader supports 1..={FORMAT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in {section}")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot: {what}"),
            SnapshotError::OverwritesMapped { path } => write!(
                f,
                "refusing to save onto `{}`: it backs this graph's live mapping \
                 (save to a different path, or reload with LoadMode::Heap)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn malformed(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed { what: what.into() }
}

/// Identifies one section of a `.gtpq` container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SectionKind {
    /// Count cross-check block (`u64` array, see [`MetaCounts`]).
    Meta = 1,
    /// Forward CSR offsets (`u32`, `n + 1`).
    FwdOffsets = 2,
    /// Forward CSR targets (node ids, `e`).
    FwdTargets = 3,
    /// Reverse CSR offsets (`u32`, `n + 1`).
    RevOffsets = 4,
    /// Reverse CSR targets (node ids, `e`).
    RevTargets = 5,
    /// Attribute-name symbol table (string table blob).
    Symbols = 6,
    /// Attribute string-value dictionary (string table blob).
    Strings = 7,
    /// Per-node attribute tuple offsets (`u32`, `n + 1`).
    AttrOffsets = 8,
    /// Attribute name symbols, tuple-concatenated (`u32`).
    AttrNames = 9,
    /// Attribute value tags: 0 = int, 1 = string (`u8`).
    AttrTags = 10,
    /// Attribute payloads: `i64` bits or string-dictionary id (`u64`).
    AttrPayloads = 11,
    /// Value-posting slot keys: attribute symbol per slot (`u32`).
    ValSyms = 12,
    /// Value-posting slot keys: value tag per slot (`u8`).
    ValTags = 13,
    /// Value-posting slot keys: value payload per slot (`u64`).
    ValPayloads = 14,
    /// Value posting offsets (`u32`, slots + 1).
    ValOffsets = 15,
    /// Value posting node lists, concatenated (node ids).
    ValNodes = 16,
    /// Name-posting slot keys: attribute symbol per slot (`u32`).
    NameSyms = 17,
    /// Name posting offsets (`u32`, slots + 1).
    NameOffsets = 18,
    /// Name posting node lists, concatenated (node ids).
    NameNodes = 19,
    /// Integer-run attribute symbols (`u32`).
    IntSyms = 20,
    /// Integer-run offsets (`u32`, attrs + 1).
    IntOffsets = 21,
    /// Integer-run values, concatenated (`i64`).
    IntValues = 22,
    /// Integer-run node halves, concatenated (node ids).
    IntNodes = 23,
    /// Component of each node (`u32`, `n`).
    CompOf = 24,
    /// Per-component cyclicity bytes (`u8`, `c`).
    Cyclic = 25,
    /// Component member offsets (`u32`, `c + 1`).
    MembersOffsets = 26,
    /// Component members, concatenated (node ids, `n`).
    Members = 27,
    /// Condensation DAG out-edge offsets (`u32`, `c + 1`).
    CompOutOffsets = 28,
    /// Condensation DAG out-edges (component ids).
    CompOut = 29,
    /// Condensation DAG in-edge offsets (`u32`, `c + 1`).
    CompInOffsets = 30,
    /// Condensation DAG in-edges (component ids).
    CompIn = 31,
    /// Components in topological order (`u32`, `c`).
    Topo = 32,
    /// Reserved for serialized reachability-index state (not written today).
    ReachState = 33,
    /// Vector-value dictionary offsets (`u32`, vectors + 1), in `f32`
    /// element units into [`SectionKind::VecData`].  Since version 2.
    VecOffsets = 34,
    /// Vector-value dictionary data, concatenated (`f32`).
    VecData = 35,
    /// Sim-table attribute symbols, one per table (`u32`).
    SimSyms = 36,
    /// Sim-table vector dimensionalities, one per table (`u32`).
    SimDims = 37,
    /// Sim-table indexed-node offsets (`u32`, tables + 1).
    SimNodeOffsets = 38,
    /// Sim-table indexed nodes, concatenated (node ids).
    SimNodes = 39,
    /// Sim-table stored-vector offsets (`u32`, tables + 1), in `f32` units.
    SimVecOffsets = 40,
    /// Sim-table stored vectors, row-major concatenated (`f32`).
    SimVecData = 41,
    /// Sim-table pivot offsets (`u32`, tables + 1), in `f32` units.
    SimPivotOffsets = 42,
    /// Sim-table pivot vectors, row-major concatenated (`f32`).
    SimPivotData = 43,
    /// Sim-table pivot-distance offsets (`u32`, tables + 1), in `f32` units.
    SimDistOffsets = 44,
    /// Sim-table pivot-distance rows, concatenated (`f32`).
    SimDistData = 45,
    /// Sim-table sorted first-pivot distances, concatenated (`f32`; spans
    /// follow [`SectionKind::SimNodeOffsets`], one value per indexed node).
    SimSortedHead = 46,
    /// Sim-table norm bounds: `[min, max]` per table (`f32`, 2 × tables).
    SimNormBounds = 47,
}

impl SectionKind {
    /// Every section kind the current writer emits, in file order.
    pub const ALL: &'static [SectionKind] = &[
        SectionKind::FwdOffsets,
        SectionKind::FwdTargets,
        SectionKind::RevOffsets,
        SectionKind::RevTargets,
        SectionKind::Symbols,
        SectionKind::Strings,
        SectionKind::AttrOffsets,
        SectionKind::AttrNames,
        SectionKind::AttrTags,
        SectionKind::AttrPayloads,
        SectionKind::ValSyms,
        SectionKind::ValTags,
        SectionKind::ValPayloads,
        SectionKind::ValOffsets,
        SectionKind::ValNodes,
        SectionKind::NameSyms,
        SectionKind::NameOffsets,
        SectionKind::NameNodes,
        SectionKind::IntSyms,
        SectionKind::IntOffsets,
        SectionKind::IntValues,
        SectionKind::IntNodes,
        SectionKind::CompOf,
        SectionKind::Cyclic,
        SectionKind::MembersOffsets,
        SectionKind::Members,
        SectionKind::CompOutOffsets,
        SectionKind::CompOut,
        SectionKind::CompInOffsets,
        SectionKind::CompIn,
        SectionKind::Topo,
        SectionKind::VecOffsets,
        SectionKind::VecData,
        SectionKind::SimSyms,
        SectionKind::SimDims,
        SectionKind::SimNodeOffsets,
        SectionKind::SimNodes,
        SectionKind::SimVecOffsets,
        SectionKind::SimVecData,
        SectionKind::SimPivotOffsets,
        SectionKind::SimPivotData,
        SectionKind::SimDistOffsets,
        SectionKind::SimDistData,
        SectionKind::SimSortedHead,
        SectionKind::SimNormBounds,
        SectionKind::Meta,
    ];

    fn from_u32(v: u32) -> Option<Self> {
        SectionKind::ALL
            .iter()
            .chain([SectionKind::ReachState].iter())
            .copied()
            .find(|k| *k as u32 == v)
    }
}

/// The element counts a `.gtpq` file declares in its `Meta` section; every
/// other section's byte length is cross-checked against them at load time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetaCounts {
    /// Nodes in the graph.
    pub nodes: u64,
    /// Directed edges.
    pub edges: u64,
    /// Interned attribute-name symbols.
    pub symbols: u64,
    /// Distinct attribute string values.
    pub strings: u64,
    /// Total attribute entries across all nodes.
    pub attrs: u64,
    /// Value-posting slots.
    pub value_slots: u64,
    /// Total value-posting entries.
    pub value_nodes: u64,
    /// Name-posting slots.
    pub name_slots: u64,
    /// Total name-posting entries.
    pub name_nodes: u64,
    /// Attributes carrying an integer run.
    pub int_attrs: u64,
    /// Total integer-run pairs.
    pub int_pairs: u64,
    /// Strongly connected components.
    pub components: u64,
    /// Condensation DAG edges.
    pub comp_edges: u64,
}

impl MetaCounts {
    const FIELDS: usize = 13;

    fn to_words(self) -> [u64; Self::FIELDS] {
        [
            self.nodes,
            self.edges,
            self.symbols,
            self.strings,
            self.attrs,
            self.value_slots,
            self.value_nodes,
            self.name_slots,
            self.name_nodes,
            self.int_attrs,
            self.int_pairs,
            self.components,
            self.comp_edges,
        ]
    }

    fn from_words(w: &[u64]) -> Option<Self> {
        if w.len() != Self::FIELDS {
            return None;
        }
        Some(Self {
            nodes: w[0],
            edges: w[1],
            symbols: w[2],
            strings: w[3],
            attrs: w[4],
            value_slots: w[5],
            value_nodes: w[6],
            name_slots: w[7],
            name_nodes: w[8],
            int_attrs: w[9],
            int_pairs: w[10],
            components: w[11],
            comp_edges: w[12],
        })
    }
}

// ---------------------------------------------------------------------------
// Little-endian element encoding
// ---------------------------------------------------------------------------

/// Element types that can be written to / read from a snapshot section.
///
/// Implemented for the primitive run elements and the `repr(transparent)` id
/// wrappers; the methods are an implementation detail of the format.
pub trait SectionElem: RunElem {
    /// Serialized width in bytes.
    const WIDTH: usize;
    #[doc(hidden)]
    fn put_le(self, out: &mut Vec<u8>);
    #[doc(hidden)]
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! section_elem {
    ($t:ty, $w:expr, |$v:ident| $put:expr, |$b:ident| $read:expr) => {
        impl SectionElem for $t {
            const WIDTH: usize = $w;
            fn put_le(self, out: &mut Vec<u8>) {
                let $v = self;
                out.extend_from_slice(&$put);
            }
            fn read_le($b: &[u8]) -> Self {
                $read
            }
        }
    };
}

section_elem!(u8, 1, |v| [v], |b| b[0]);
section_elem!(u32, 4, |v| v.to_le_bytes(), |b| u32::from_le_bytes(
    b[..4].try_into().expect("width-checked slice")
));
section_elem!(u64, 8, |v| v.to_le_bytes(), |b| u64::from_le_bytes(
    b[..8].try_into().expect("width-checked slice")
));
section_elem!(i64, 8, |v| v.to_le_bytes(), |b| i64::from_le_bytes(
    b[..8].try_into().expect("width-checked slice")
));
// Floats travel as their raw bit pattern: bit-exact round trips, NaNs and
// signed zeros included.
section_elem!(f32, 4, |v| v.to_bits().to_le_bytes(), |b| f32::from_bits(
    u32::read_le(b)
));
section_elem!(NodeId, 4, |v| v.0.to_le_bytes(), |b| NodeId(u32::read_le(
    b
)));
section_elem!(Symbol, 4, |v| v.0.to_le_bytes(), |b| Symbol(u32::read_le(
    b
)));
section_elem!(CompId, 4, |v| v.0.to_le_bytes(), |b| CompId(u32::read_le(
    b
)));

/// The little-endian byte image of `data`: a zero-copy reinterpretation on
/// little-endian hosts, an element-by-element encode elsewhere.
fn le_image<T: SectionElem>(data: &[T]) -> Cow<'_, [u8]> {
    if cfg!(target_endian = "little") {
        // SAFETY: `T: RunElem` guarantees a padding-free plain-old-data
        // layout, and on little-endian hosts the native image *is* the
        // little-endian image.
        Cow::Borrowed(unsafe {
            std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data))
        })
    } else {
        let mut out = Vec::with_capacity(data.len() * T::WIDTH);
        for &v in data {
            v.put_le(&mut out);
        }
        Cow::Owned(out)
    }
}

/// Decodes a little-endian byte window into owned elements.  `bytes.len()`
/// must be a multiple of `T::WIDTH` (callers validate counts first).
fn decode_elems<T: SectionElem>(bytes: &[u8]) -> Vec<T> {
    bytes.chunks_exact(T::WIDTH).map(T::read_le).collect()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct TocEntry {
    kind: u32,
    crc: u32,
    offset: u64,
    byte_len: u64,
}

/// Incremental `.gtpq` writer: create, append sections one at a time, then
/// [`finish`](Self::finish).  Sections may be written in any order and each
/// one can be dropped as soon as it is on disk, which is what lets the
/// large-tier datagen stream a snapshot without ever holding the whole graph
/// (see `gtpq-datagen`).
///
/// Saves are **atomic**: the data streams into a hidden temp file next to
/// the destination and [`finish`](Self::finish) renames it into place, so a
/// crash or error mid-save never leaves a truncated or half-written file at
/// the target path — a previously good snapshot there survives untouched.
/// Dropping an unfinished writer removes the temp file.
pub struct SnapshotWriter {
    w: BufWriter<File>,
    pos: u64,
    toc: Vec<TocEntry>,
    epoch: u64,
    /// Final destination; data streams into `tmp_path` until `finish`
    /// renames it over this.
    dest: PathBuf,
    tmp_path: PathBuf,
    finished: bool,
}

/// A unique hidden sibling of `dest` for in-progress writes (pid + a
/// process-wide counter, so concurrent writers never collide).
fn tmp_sibling(dest: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let name = dest
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_owned());
    dest.with_file_name(format!(".{name}.{}.{seq}.tmp", std::process::id()))
}

impl SnapshotWriter {
    /// Opens a writer targeting `path` and reserves the header.  Nothing
    /// appears at `path` until [`finish`](Self::finish) atomically renames
    /// the finished temp file over it.
    pub fn create<P: AsRef<Path>>(path: P, epoch: u64) -> Result<Self, SnapshotError> {
        let dest = path.as_ref().to_path_buf();
        let tmp_path = tmp_sibling(&dest);
        let file = File::create(&tmp_path)?;
        let mut w = BufWriter::new(file);
        if let Err(e) = w.write_all(&[0u8; HEADER_LEN as usize]) {
            drop(w);
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        Ok(Self {
            w,
            pos: HEADER_LEN,
            toc: Vec::new(),
            epoch,
            dest,
            tmp_path,
            finished: false,
        })
    }

    fn pad_to_alignment(&mut self) -> Result<(), SnapshotError> {
        let rem = self.pos % SECTION_ALIGN;
        if rem != 0 {
            let pad = (SECTION_ALIGN - rem) as usize;
            self.w.write_all(&[0u8; SECTION_ALIGN as usize][..pad])?;
            self.pos += pad as u64;
        }
        Ok(())
    }

    /// Appends one section of raw bytes (used for the string-table blobs).
    pub fn section_bytes(&mut self, kind: SectionKind, data: &[u8]) -> Result<(), SnapshotError> {
        assert!(!self.finished, "snapshot writer already finished");
        self.pad_to_alignment()?;
        self.toc.push(TocEntry {
            kind: kind as u32,
            crc: crc32(data),
            offset: self.pos,
            byte_len: data.len() as u64,
        });
        self.w.write_all(data)?;
        self.pos += data.len() as u64;
        Ok(())
    }

    /// Appends one section of integer elements, little-endian.
    pub fn section<T: SectionElem>(
        &mut self,
        kind: SectionKind,
        data: &[T],
    ) -> Result<(), SnapshotError> {
        let image = le_image(data);
        self.section_bytes(kind, &image)
    }

    /// Appends one string-table section (the [`SectionKind::Symbols`] /
    /// [`SectionKind::Strings`] encoding: `count + 1` little-endian `u32`
    /// offsets followed by the concatenated UTF-8 text).
    pub fn string_section<'a, I>(
        &mut self,
        kind: SectionKind,
        items: I,
    ) -> Result<(), SnapshotError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.section_bytes(kind, &string_table_bytes(items))
    }

    /// Appends the full condensation block for `c`, filling the component
    /// counts of `counts` in — the hook external streamed writers (see
    /// `gtpq-datagen`) use together with [`Condensation::identity_dag`].
    pub fn condensation_sections(
        &mut self,
        c: &Condensation,
        counts: &mut MetaCounts,
    ) -> Result<(), SnapshotError> {
        write_condensation_sections(self, c, counts)
    }

    /// Appends the `Meta` count block.
    pub fn meta(&mut self, counts: &MetaCounts) -> Result<(), SnapshotError> {
        self.section(SectionKind::Meta, &counts.to_words())
    }

    /// Writes the TOC, seeks back to patch the header, flushes and syncs the
    /// temp file, then atomically renames it over the destination path.
    pub fn finish(mut self) -> Result<(), SnapshotError> {
        self.pad_to_alignment()?;
        let toc_offset = self.pos;
        let mut toc_bytes = Vec::with_capacity(self.toc.len() * TOC_ENTRY_LEN as usize);
        for e in &self.toc {
            toc_bytes.extend_from_slice(&e.kind.to_le_bytes());
            toc_bytes.extend_from_slice(&e.crc.to_le_bytes());
            toc_bytes.extend_from_slice(&e.offset.to_le_bytes());
            toc_bytes.extend_from_slice(&e.byte_len.to_le_bytes());
            toc_bytes.extend_from_slice(&0u64.to_le_bytes());
        }
        self.w.write_all(&toc_bytes)?;
        let file_len = toc_offset + toc_bytes.len() as u64;

        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes()); // flags
        header.extend_from_slice(&(self.toc.len() as u64).to_le_bytes());
        header.extend_from_slice(&toc_offset.to_le_bytes());
        header.extend_from_slice(&file_len.to_le_bytes());
        header.extend_from_slice(&self.epoch.to_le_bytes());
        header.extend_from_slice(&crc32(&toc_bytes).to_le_bytes());
        let hcrc = crc32(&header);
        header.extend_from_slice(&hcrc.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // reserved
        debug_assert_eq!(header.len() as u64, HEADER_LEN);

        self.w.seek(SeekFrom::Start(0))?;
        self.w.write_all(&header)?;
        self.w.flush()?;
        // Durability before visibility: the rename must never publish a file
        // whose pages are still only in the page cache of a dying process.
        self.w.get_ref().sync_all()?;
        std::fs::rename(&self.tmp_path, &self.dest)?;
        self.finished = true;
        Ok(())
    }
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        if !self.finished {
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Builds a string-table blob: `(count + 1)` little-endian `u32` offsets into
/// the UTF-8 byte region that follows.
fn string_table_bytes<'a, I: IntoIterator<Item = &'a str>>(items: I) -> Vec<u8> {
    let items: Vec<&str> = items.into_iter().collect();
    let mut offsets: Vec<u32> = Vec::with_capacity(items.len() + 1);
    let mut text = Vec::new();
    offsets.push(0);
    for s in &items {
        text.extend_from_slice(s.as_bytes());
        offsets.push(u32::try_from(text.len()).expect("string table under 4 GiB"));
    }
    let mut out = Vec::with_capacity(offsets.len() * 4 + text.len());
    for o in offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&text);
    out
}

/// Parses a string-table blob with exactly `count` entries.
fn parse_string_table(
    bytes: &[u8],
    count: usize,
    what: &'static str,
) -> Result<Vec<String>, SnapshotError> {
    let head = (count + 1)
        .checked_mul(4)
        .ok_or_else(|| malformed(format!("{what}: count overflow")))?;
    if bytes.len() < head {
        return Err(malformed(format!("{what}: offset table cut off")));
    }
    let offsets: Vec<u32> = decode_elems(&bytes[..head]);
    let text = &bytes[head..];
    if offsets[0] != 0 || offsets[count] as usize != text.len() {
        return Err(malformed(format!("{what}: offsets do not span the text")));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let lo = offsets[i] as usize;
        let hi = offsets[i + 1] as usize;
        if lo > hi || hi > text.len() {
            return Err(malformed(format!("{what}: non-monotone offsets")));
        }
        let s = std::str::from_utf8(&text[lo..hi])
            .map_err(|_| malformed(format!("{what}: invalid UTF-8")))?;
        out.push(s.to_owned());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Saving a graph
// ---------------------------------------------------------------------------

/// Writes every graph-derived section of `g` (everything except the
/// condensation block and the trailing `Meta`), filling `counts` in.
fn write_graph_sections(
    w: &mut SnapshotWriter,
    g: &DataGraph,
    counts: &mut MetaCounts,
) -> Result<(), SnapshotError> {
    let n = g.node_count();
    counts.nodes = n as u64;
    counts.edges = g.edge_count() as u64;
    counts.symbols = g.symbols().len() as u64;

    w.section(SectionKind::FwdOffsets, g.fwd.offsets_raw())?;
    w.section(SectionKind::FwdTargets, g.fwd.targets_raw())?;
    w.section(SectionKind::RevOffsets, g.rev.offsets_raw())?;
    w.section(SectionKind::RevTargets, g.rev.targets_raw())?;
    w.section_bytes(
        SectionKind::Symbols,
        &string_table_bytes(g.symbols().iter().map(|(_, s)| s)),
    )?;

    // Attribute tuples: string values are interned into a first-use-order
    // dictionary and vector values into a parallel one (keyed by bit
    // pattern, so NaN payloads dedupe too); each attribute becomes
    // (name symbol, tag, payload).
    let mut dict: HashMap<&str, u64> = HashMap::new();
    let mut dict_order: Vec<&str> = Vec::new();
    let mut vec_dict: HashMap<Vec<u32>, u64> = HashMap::new();
    let mut vec_offsets: Vec<u32> = vec![0];
    let mut vec_data: Vec<f32> = Vec::new();
    let mut attr_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut attr_names: Vec<Symbol> = Vec::new();
    let mut attr_tags: Vec<u8> = Vec::new();
    let mut attr_payloads: Vec<u64> = Vec::new();
    attr_offsets.push(0);
    for tuple in g.attrs.tuples() {
        for a in tuple {
            attr_names.push(a.name);
            match &a.value {
                AttrValue::Int(i) => {
                    attr_tags.push(TAG_INT);
                    attr_payloads.push(*i as u64);
                }
                AttrValue::Str(s) => {
                    attr_tags.push(TAG_STR);
                    let id = *dict.entry(s.as_str()).or_insert_with(|| {
                        dict_order.push(s.as_str());
                        (dict_order.len() - 1) as u64
                    });
                    attr_payloads.push(id);
                }
                AttrValue::Vec(v) => {
                    attr_tags.push(TAG_VEC);
                    let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                    let id = *vec_dict.entry(bits).or_insert_with(|| {
                        vec_data.extend_from_slice(v);
                        vec_offsets.push(
                            u32::try_from(vec_data.len())
                                .expect("vector dictionary under 4 Gi elements"),
                        );
                        (vec_offsets.len() - 2) as u64
                    });
                    attr_payloads.push(id);
                }
            }
        }
        attr_offsets
            .push(u32::try_from(attr_names.len()).expect("attribute count overflows u32 offsets"));
    }
    counts.strings = dict_order.len() as u64;
    counts.attrs = attr_names.len() as u64;
    w.section_bytes(
        SectionKind::Strings,
        &string_table_bytes(dict_order.iter().copied()),
    )?;
    w.section(SectionKind::AttrOffsets, &attr_offsets)?;
    w.section(SectionKind::AttrNames, &attr_names)?;
    w.section(SectionKind::AttrTags, &attr_tags)?;
    w.section(SectionKind::AttrPayloads, &attr_payloads)?;
    w.section(SectionKind::VecOffsets, &vec_offsets)?;
    w.section(SectionKind::VecData, &vec_data)?;

    // Value postings: invert the two-level dictionary into per-slot key
    // arrays (slot order is the canonical build order, so round-tripping
    // reproduces the index bit-for-bit).
    let idx = &g.index;
    let slot_count = idx.value_offsets.len().saturating_sub(1);
    let mut val_syms = vec![Symbol(0); slot_count];
    let mut val_tags = vec![0u8; slot_count];
    let mut val_payloads = vec![0u64; slot_count];
    for (&sym, map) in &idx.value_slots {
        for (value, &slot) in map {
            val_syms[slot as usize] = sym;
            match value {
                AttrValue::Int(i) => {
                    val_tags[slot as usize] = TAG_INT;
                    val_payloads[slot as usize] = *i as u64;
                }
                AttrValue::Str(s) => {
                    val_tags[slot as usize] = TAG_STR;
                    val_payloads[slot as usize] = *dict
                        .get(s.as_str())
                        .expect("indexed string value appears on some node");
                }
                // Vector values never enter the equality postings (see
                // `AttrIndex`); a defensive tag keeps this arm panic-free.
                AttrValue::Vec(_) => {
                    val_tags[slot as usize] = TAG_VEC;
                    val_payloads[slot as usize] = 0;
                }
            }
        }
    }
    counts.value_slots = slot_count as u64;
    counts.value_nodes = idx.value_nodes.len() as u64;
    w.section(SectionKind::ValSyms, &val_syms)?;
    w.section(SectionKind::ValTags, &val_tags)?;
    w.section(SectionKind::ValPayloads, &val_payloads)?;
    w.section(SectionKind::ValOffsets, &idx.value_offsets)?;
    w.section(SectionKind::ValNodes, &idx.value_nodes)?;

    // Name postings.
    let name_count = idx.name_offsets.len().saturating_sub(1);
    let mut name_syms = vec![Symbol(0); name_count];
    for (&sym, &slot) in &idx.name_slots {
        name_syms[slot as usize] = sym;
    }
    counts.name_slots = name_count as u64;
    counts.name_nodes = idx.name_nodes.len() as u64;
    w.section(SectionKind::NameSyms, &name_syms)?;
    w.section(SectionKind::NameOffsets, &idx.name_offsets)?;
    w.section(SectionKind::NameNodes, &idx.name_nodes)?;

    // Integer runs, in symbol order for determinism.
    let mut int_syms: Vec<Symbol> = idx.int_runs.keys().copied().collect();
    int_syms.sort_unstable();
    let mut int_offsets: Vec<u32> = Vec::with_capacity(int_syms.len() + 1);
    let mut int_values: Vec<i64> = Vec::new();
    let mut int_nodes: Vec<NodeId> = Vec::new();
    int_offsets.push(0);
    for sym in &int_syms {
        let run = &idx.int_runs[sym];
        int_values.extend_from_slice(&run.values);
        int_nodes.extend_from_slice(&run.nodes);
        int_offsets
            .push(u32::try_from(int_values.len()).expect("int-run count overflows u32 offsets"));
    }
    counts.int_attrs = int_syms.len() as u64;
    counts.int_pairs = int_values.len() as u64;
    w.section(SectionKind::IntSyms, &int_syms)?;
    w.section(SectionKind::IntOffsets, &int_offsets)?;
    w.section(SectionKind::IntValues, &int_values)?;
    w.section(SectionKind::IntNodes, &int_nodes)?;

    // Similarity tables, flattened CSR-style in catalog (symbol) order.  All
    // offsets are in element units; table counts are derived from the TOC at
    // load time, so `MetaCounts` is unchanged.
    let mut sim_syms: Vec<Symbol> = Vec::new();
    let mut sim_dims: Vec<u32> = Vec::new();
    let mut sim_node_offsets: Vec<u32> = vec![0];
    let mut sim_nodes: Vec<NodeId> = Vec::new();
    let mut sim_vec_offsets: Vec<u32> = vec![0];
    let mut sim_vec_data: Vec<f32> = Vec::new();
    let mut sim_pivot_offsets: Vec<u32> = vec![0];
    let mut sim_pivot_data: Vec<f32> = Vec::new();
    let mut sim_dist_offsets: Vec<u32> = vec![0];
    let mut sim_dist_data: Vec<f32> = Vec::new();
    let mut sim_sorted_head: Vec<f32> = Vec::new();
    let mut sim_norm_bounds: Vec<f32> = Vec::new();
    for (sym, table) in g.sims.iter() {
        sim_syms.push(sym);
        sim_dims.push(table.dim);
        sim_nodes.extend_from_slice(&table.nodes);
        sim_vec_data.extend_from_slice(&table.vecs);
        sim_pivot_data.extend_from_slice(&table.pivots);
        sim_dist_data.extend_from_slice(&table.dists);
        sim_sorted_head.extend_from_slice(&table.sorted_d0);
        sim_norm_bounds.push(table.norm_min);
        sim_norm_bounds.push(table.norm_max);
        let grown = u32::try_from(sim_nodes.len()).expect("sim-table node count overflows u32");
        sim_node_offsets.push(grown);
        let grown = u32::try_from(sim_vec_data.len()).expect("sim-table vector data overflows u32");
        sim_vec_offsets.push(grown);
        let grown =
            u32::try_from(sim_pivot_data.len()).expect("sim-table pivot data overflows u32");
        sim_pivot_offsets.push(grown);
        let grown =
            u32::try_from(sim_dist_data.len()).expect("sim-table distance data overflows u32");
        sim_dist_offsets.push(grown);
    }
    w.section(SectionKind::SimSyms, &sim_syms)?;
    w.section(SectionKind::SimDims, &sim_dims)?;
    w.section(SectionKind::SimNodeOffsets, &sim_node_offsets)?;
    w.section(SectionKind::SimNodes, &sim_nodes)?;
    w.section(SectionKind::SimVecOffsets, &sim_vec_offsets)?;
    w.section(SectionKind::SimVecData, &sim_vec_data)?;
    w.section(SectionKind::SimPivotOffsets, &sim_pivot_offsets)?;
    w.section(SectionKind::SimPivotData, &sim_pivot_data)?;
    w.section(SectionKind::SimDistOffsets, &sim_dist_offsets)?;
    w.section(SectionKind::SimDistData, &sim_dist_data)?;
    w.section(SectionKind::SimSortedHead, &sim_sorted_head)?;
    w.section(SectionKind::SimNormBounds, &sim_norm_bounds)?;
    Ok(())
}

/// Writes the condensation block of `c`, filling `counts` in.
fn write_condensation_sections(
    w: &mut SnapshotWriter,
    c: &Condensation,
    counts: &mut MetaCounts,
) -> Result<(), SnapshotError> {
    let (comp_of, members, cyclic, comp_out, comp_in, topo) = c.raw_parts();
    counts.components = members.len() as u64;
    counts.comp_edges = comp_out.target_count() as u64;
    w.section(SectionKind::CompOf, comp_of)?;
    w.section(SectionKind::Cyclic, cyclic)?;
    w.section(SectionKind::MembersOffsets, members.offsets_raw())?;
    w.section(SectionKind::Members, members.targets_raw())?;
    w.section(SectionKind::CompOutOffsets, comp_out.offsets_raw())?;
    w.section(SectionKind::CompOut, comp_out.targets_raw())?;
    w.section(SectionKind::CompInOffsets, comp_in.offsets_raw())?;
    w.section(SectionKind::CompIn, comp_in.targets_raw())?;
    w.section(SectionKind::Topo, topo)?;
    Ok(())
}

/// The `(device, inode)` identity of the file at `path`, when it exists.
#[cfg(unix)]
fn file_id_of(path: &Path) -> Option<(u64, u64)> {
    use std::os::unix::fs::MetadataExt;
    std::fs::metadata(path).ok().map(|m| (m.dev(), m.ino()))
}

#[cfg(not(unix))]
fn file_id_of(_path: &Path) -> Option<(u64, u64)> {
    None
}

impl GraphSnapshot {
    /// Serializes this epoch's graph and condensation to `path` as a `.gtpq`
    /// binary snapshot.  Only the *committed* state is written; a live
    /// handle's staged-but-uncommitted operations are not part of a snapshot.
    ///
    /// The save is atomic: data streams into a temp file next to `path`
    /// which is renamed over it only once complete, so a failed save never
    /// corrupts a previously good snapshot at `path`.  Saving onto the file
    /// currently backing this graph's own mapping is refused with
    /// [`SnapshotError::OverwritesMapped`].
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let backing = self
            .graph()
            .backing_file_id()
            .or_else(|| self.condensation().backing_file_id());
        if backing.is_some() && backing == file_id_of(path) {
            return Err(SnapshotError::OverwritesMapped {
                path: path.to_path_buf(),
            });
        }
        let mut w = SnapshotWriter::create(path, self.epoch())?;
        let mut counts = MetaCounts::default();
        write_graph_sections(&mut w, self.graph(), &mut counts)?;
        write_condensation_sections(&mut w, self.condensation(), &mut counts)?;
        w.meta(&counts)?;
        w.finish()
    }

    /// Loads a snapshot produced by [`GraphSnapshot::save`] (or the streamed
    /// datagen writer) with the given [`LoadMode`].
    pub fn open<P: AsRef<Path>>(path: P, mode: LoadMode) -> Result<Self, SnapshotError> {
        load_snapshot(path.as_ref(), mode)
    }

    /// Zero-copy open: maps the file and serves the big runs straight from
    /// the mapping.  Equivalent to [`GraphSnapshot::open`] with
    /// [`LoadMode::Mmap`].
    ///
    /// While the returned graph is alive the file must not be truncated or
    /// rewritten in place by another process — a changed page under the
    /// mapping means `SIGBUS` or torn reads (see the
    /// [module docs](crate::snap#external-modification-hazard)).  Replacing
    /// the file atomically via rename (what [`GraphSnapshot::save`] does) is
    /// safe; where in-place modification is possible, use
    /// [`GraphSnapshot::open_heap`] instead.
    pub fn open_mmap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::open(path, LoadMode::Mmap)
    }

    /// Portable fully-verified open into an aligned heap buffer.  Equivalent
    /// to [`GraphSnapshot::open`] with [`LoadMode::Heap`].
    pub fn open_heap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        Self::open(path, LoadMode::Heap)
    }
}

impl DataGraph {
    /// Zero-copy open of just the graph from a `.gtpq` snapshot (the stored
    /// condensation is dropped; prefer [`GraphSnapshot::open_mmap`] to keep
    /// it and skip the Tarjan recomputation).
    pub fn open_mmap<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        let snap = GraphSnapshot::open_mmap(path)?;
        Ok(snap.graph().as_ref().clone())
    }
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

struct RawSection {
    offset: usize,
    byte_len: usize,
    crc: u32,
}

struct Loader {
    bytes: Arc<SnapshotBytes>,
    sections: HashMap<u32, RawSection>,
    counts: MetaCounts,
    verify_all: bool,
}

impl Loader {
    fn section(&self, kind: SectionKind) -> Result<&RawSection, SnapshotError> {
        self.sections
            .get(&(kind as u32))
            .ok_or_else(|| malformed(format!("missing section {kind:?}")))
    }

    /// Whether the file carries this section at all (version-1 files lack
    /// the vector and sim-table sections).
    fn has(&self, kind: SectionKind) -> bool {
        self.sections.contains_key(&(kind as u32))
    }

    fn section_bytes(&self, kind: SectionKind) -> Result<&[u8], SnapshotError> {
        let s = self.section(kind)?;
        Ok(&self.bytes.as_slice()[s.offset..s.offset + s.byte_len])
    }

    /// CRC-checks one section now (used for every materialized section and,
    /// in verifying modes, for all of them).
    fn check_crc(&self, kind: SectionKind) -> Result<(), SnapshotError> {
        let s = self.section(kind)?;
        let data = &self.bytes.as_slice()[s.offset..s.offset + s.byte_len];
        if crc32(data) != s.crc {
            return Err(SnapshotError::ChecksumMismatch {
                section: kind_name(kind),
            });
        }
        Ok(())
    }

    /// Validates the section's length against `count` elements of `T` and
    /// wraps it as an [`IntRun`] borrowing the shared buffer (decoding into
    /// an owned run on hosts that cannot reinterpret, e.g. big-endian).
    fn run<T: SectionElem>(
        &self,
        kind: SectionKind,
        count: u64,
    ) -> Result<IntRun<T>, SnapshotError> {
        let s = self.section(kind)?;
        let count = usize::try_from(count).map_err(|_| malformed("count overflows usize"))?;
        let expect = count
            .checked_mul(T::WIDTH)
            .ok_or_else(|| malformed("section length overflow"))?;
        if s.byte_len != expect {
            return Err(malformed(format!(
                "section {kind:?} holds {} bytes, counts imply {expect}",
                s.byte_len
            )));
        }
        if let Some(run) = IntRun::from_bytes(&self.bytes, s.offset, count) {
            return Ok(run);
        }
        // Portable decode path (big-endian hosts, or misaligned legacy
        // files): never reinterprets, always copies.
        Ok(decode_elems::<T>(&self.bytes.as_slice()[s.offset..s.offset + s.byte_len]).into())
    }

    /// Like [`run`](Self::run) but with the element count derived from the
    /// section's own byte length — used by the sections whose counts are not
    /// part of [`MetaCounts`] (cross-checks happen against sibling offsets
    /// runs instead).
    fn run_sized<T: SectionElem>(&self, kind: SectionKind) -> Result<IntRun<T>, SnapshotError> {
        let s = self.section(kind)?;
        if !s.byte_len.is_multiple_of(T::WIDTH) {
            return Err(malformed(format!(
                "section {kind:?} holds {} bytes, not a multiple of {}",
                s.byte_len,
                T::WIDTH
            )));
        }
        self.run(kind, (s.byte_len / T::WIDTH) as u64)
    }

    /// Loads a CSR whose runs were written by the snapshot writer, checking
    /// the structural invariants the slice accessors rely on: `offsets[0] ==
    /// 0`, `offsets[n] == target count`, and monotonicity.  The linear scan
    /// runs in **every** load mode (it is O(n) over `u32`s, far cheaper than
    /// a parse) so a corrupt offset under plain [`LoadMode::Mmap`] surfaces
    /// as a typed error at load time, never as an out-of-bounds panic inside
    /// [`Csr::neighbors`] at query time.
    fn csr<T: SectionElem>(
        &self,
        offsets_kind: SectionKind,
        targets_kind: SectionKind,
        sources: u64,
        targets: u64,
    ) -> Result<Csr<T>, SnapshotError> {
        let offsets: IntRun<u32> = self.run(offsets_kind, sources + 1)?;
        let target_run: IntRun<T> = self.run(targets_kind, targets)?;
        check_offsets_span(&offsets, targets, kind_name(offsets_kind))?;
        Ok(Csr::from_parts(offsets, target_run))
    }
}

/// Validates an offsets run: leading `0`, final value equal to the target
/// count, and monotone throughout — together these bound every `lo..hi`
/// window an accessor will ever slice out of the target run.
fn check_offsets_span(
    offsets: &[u32],
    targets: u64,
    what: &'static str,
) -> Result<(), SnapshotError> {
    let first = offsets.first().copied().unwrap_or(u32::MAX);
    let last = offsets.last().copied().unwrap_or(u32::MAX);
    if first != 0 || last as u64 != targets {
        return Err(malformed(format!("{what} does not span its target run")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed(format!("{what} is non-monotone")));
    }
    Ok(())
}

fn kind_name(kind: SectionKind) -> &'static str {
    match kind {
        SectionKind::Meta => "Meta",
        SectionKind::FwdOffsets => "FwdOffsets",
        SectionKind::FwdTargets => "FwdTargets",
        SectionKind::RevOffsets => "RevOffsets",
        SectionKind::RevTargets => "RevTargets",
        SectionKind::Symbols => "Symbols",
        SectionKind::Strings => "Strings",
        SectionKind::AttrOffsets => "AttrOffsets",
        SectionKind::AttrNames => "AttrNames",
        SectionKind::AttrTags => "AttrTags",
        SectionKind::AttrPayloads => "AttrPayloads",
        SectionKind::ValSyms => "ValSyms",
        SectionKind::ValTags => "ValTags",
        SectionKind::ValPayloads => "ValPayloads",
        SectionKind::ValOffsets => "ValOffsets",
        SectionKind::ValNodes => "ValNodes",
        SectionKind::NameSyms => "NameSyms",
        SectionKind::NameOffsets => "NameOffsets",
        SectionKind::NameNodes => "NameNodes",
        SectionKind::IntSyms => "IntSyms",
        SectionKind::IntOffsets => "IntOffsets",
        SectionKind::IntValues => "IntValues",
        SectionKind::IntNodes => "IntNodes",
        SectionKind::CompOf => "CompOf",
        SectionKind::Cyclic => "Cyclic",
        SectionKind::MembersOffsets => "MembersOffsets",
        SectionKind::Members => "Members",
        SectionKind::CompOutOffsets => "CompOutOffsets",
        SectionKind::CompOut => "CompOut",
        SectionKind::CompInOffsets => "CompInOffsets",
        SectionKind::CompIn => "CompIn",
        SectionKind::Topo => "Topo",
        SectionKind::ReachState => "ReachState",
        SectionKind::VecOffsets => "VecOffsets",
        SectionKind::VecData => "VecData",
        SectionKind::SimSyms => "SimSyms",
        SectionKind::SimDims => "SimDims",
        SectionKind::SimNodeOffsets => "SimNodeOffsets",
        SectionKind::SimNodes => "SimNodes",
        SectionKind::SimVecOffsets => "SimVecOffsets",
        SectionKind::SimVecData => "SimVecData",
        SectionKind::SimPivotOffsets => "SimPivotOffsets",
        SectionKind::SimPivotData => "SimPivotData",
        SectionKind::SimDistOffsets => "SimDistOffsets",
        SectionKind::SimDistData => "SimDistData",
        SectionKind::SimSortedHead => "SimSortedHead",
        SectionKind::SimNormBounds => "SimNormBounds",
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("in-bounds header read"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("in-bounds header read"))
}

fn load_snapshot(path: &Path, mode: LoadMode) -> Result<GraphSnapshot, SnapshotError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let bytes: Arc<SnapshotBytes> = match mode {
        LoadMode::Heap => Arc::new(read_to_heap(&mut file, file_len)?),
        LoadMode::Mmap | LoadMode::MmapVerified => {
            #[cfg(all(unix, target_pointer_width = "64"))]
            {
                match crate::run::MmapFile::map(&file, file_len as usize) {
                    Some(m) => Arc::new(SnapshotBytes::Mmap(m)),
                    None => Arc::new(read_to_heap(&mut file, file_len)?),
                }
            }
            #[cfg(not(all(unix, target_pointer_width = "64")))]
            {
                Arc::new(read_to_heap(&mut file, file_len)?)
            }
        }
    };
    let verify_all = match mode {
        LoadMode::Mmap => !bytes.is_mmap(), // heap fallback is read fully anyway
        LoadMode::MmapVerified | LoadMode::Heap => true,
    };
    load_from_bytes(bytes, verify_all)
}

fn read_to_heap(file: &mut File, file_len: u64) -> Result<SnapshotBytes, SnapshotError> {
    let mut data = Vec::with_capacity(usize::try_from(file_len).unwrap_or(0));
    file.read_to_end(&mut data)?;
    Ok(SnapshotBytes::Heap(AlignedBytes::copy_from(&data)))
}

fn load_from_bytes(
    bytes: Arc<SnapshotBytes>,
    verify_all: bool,
) -> Result<GraphSnapshot, SnapshotError> {
    let data = bytes.as_slice();
    let file_len = data.len() as u64;
    if file_len < HEADER_LEN {
        return Err(SnapshotError::Truncated { what: "header" });
    }
    if data[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = read_u32(data, 8);
    if !(1..=FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let header_crc = read_u32(data, 52);
    if crc32(&data[..52]) != header_crc {
        return Err(SnapshotError::ChecksumMismatch { section: "header" });
    }
    let section_count = read_u64(data, 16);
    let toc_offset = read_u64(data, 24);
    let declared_len = read_u64(data, 32);
    let epoch = read_u64(data, 40);
    let toc_crc = read_u32(data, 48);
    if declared_len != file_len {
        return Err(SnapshotError::Truncated { what: "file body" });
    }
    if section_count > MAX_SECTIONS {
        return Err(malformed(format!("absurd section count {section_count}")));
    }
    let toc_len = section_count * TOC_ENTRY_LEN;
    if toc_offset < HEADER_LEN
        || toc_offset
            .checked_add(toc_len)
            .is_none_or(|end| end > file_len)
    {
        return Err(SnapshotError::Truncated { what: "TOC" });
    }
    let toc_bytes = &data[toc_offset as usize..(toc_offset + toc_len) as usize];
    if crc32(toc_bytes) != toc_crc {
        return Err(SnapshotError::ChecksumMismatch { section: "TOC" });
    }

    let mut sections: HashMap<u32, RawSection> = HashMap::new();
    for entry in toc_bytes.chunks_exact(TOC_ENTRY_LEN as usize) {
        let kind = read_u32(entry, 0);
        let crc = read_u32(entry, 4);
        let offset = read_u64(entry, 8);
        let byte_len = read_u64(entry, 16);
        if !offset.is_multiple_of(SECTION_ALIGN)
            || offset < HEADER_LEN
            || offset
                .checked_add(byte_len)
                .is_none_or(|end| end > file_len)
        {
            return Err(SnapshotError::Truncated { what: "section" });
        }
        if SectionKind::from_u32(kind).is_none() {
            continue; // forward compatibility: skip unknown sections
        }
        let prev = sections.insert(
            kind,
            RawSection {
                offset: offset as usize,
                byte_len: byte_len as usize,
                crc,
            },
        );
        if prev.is_some() {
            return Err(malformed(format!("duplicate section kind {kind}")));
        }
    }

    // Meta is the root of the count cross-checks: always verified.
    let loader = Loader {
        bytes: Arc::clone(&bytes),
        sections,
        counts: MetaCounts::default(),
        verify_all,
    };
    loader.check_crc(SectionKind::Meta)?;
    let meta_words: Vec<u64> = {
        let raw = loader.section_bytes(SectionKind::Meta)?;
        if raw.len() != MetaCounts::FIELDS * 8 {
            return Err(malformed("Meta section has the wrong length"));
        }
        decode_elems(raw)
    };
    let counts = MetaCounts::from_words(&meta_words).expect("length checked above");
    let loader = Loader { counts, ..loader };

    if loader.verify_all {
        for &kind in SectionKind::ALL {
            if loader.sections.contains_key(&(kind as u32)) {
                loader.check_crc(kind)?;
            }
        }
    } else {
        // Sections that are decoded into owned structures right now are
        // validated field by field; checksum them up front so decode errors
        // on a bit-flipped file surface as ChecksumMismatch, not Malformed.
        // The attribute columns are *not* here: like the big adjacency and
        // posting runs they stay mapped (decoded lazily on first access),
        // so reading them eagerly would defeat the O(page-fault) open.
        for kind in [
            SectionKind::Symbols,
            SectionKind::Strings,
            SectionKind::ValSyms,
            SectionKind::ValTags,
            SectionKind::ValPayloads,
            SectionKind::NameSyms,
            SectionKind::IntSyms,
            SectionKind::IntOffsets,
        ] {
            loader.check_crc(kind)?;
        }
        // The vector/sim key and offsets sections are validated eagerly too;
        // guard on presence — version-1 files do not carry them.  The flat
        // data runs stay lazy like the posting arrays.
        for kind in [
            SectionKind::VecOffsets,
            SectionKind::SimSyms,
            SectionKind::SimDims,
            SectionKind::SimNodeOffsets,
            SectionKind::SimVecOffsets,
            SectionKind::SimPivotOffsets,
            SectionKind::SimDistOffsets,
            SectionKind::SimNormBounds,
        ] {
            if loader.has(kind) {
                loader.check_crc(kind)?;
            }
        }
    }

    let graph = decode_graph(&loader)?;
    let condensation = decode_condensation(&loader)?;
    Ok(GraphSnapshot::from_raw_parts(
        epoch,
        Arc::new(graph),
        Arc::new(condensation),
    ))
}

fn decode_graph(l: &Loader) -> Result<DataGraph, SnapshotError> {
    let c = &l.counts;
    let n = usize::try_from(c.nodes).map_err(|_| malformed("node count overflows usize"))?;
    if c.nodes > u32::MAX as u64 || c.edges > u32::MAX as u64 || c.attrs > u32::MAX as u64 {
        return Err(malformed("counts overflow u32 offsets"));
    }

    // Symbol table: rebuilt owned (the lookup map cannot be mapped).
    let sym_count =
        usize::try_from(c.symbols).map_err(|_| malformed("symbol count overflows usize"))?;
    let names = parse_string_table(l.section_bytes(SectionKind::Symbols)?, sym_count, "Symbols")?;
    let mut symbols = SymbolTable::new();
    for name in &names {
        symbols.intern(name);
    }
    if symbols.len() != sym_count {
        return Err(malformed("Symbols: duplicate interned name"));
    }

    // String dictionary for attribute values, shared between the lazy
    // attribute columns and the index slot keys.
    let str_count =
        usize::try_from(c.strings).map_err(|_| malformed("string count overflows usize"))?;
    let strings = Arc::new(parse_string_table(
        l.section_bytes(SectionKind::Strings)?,
        str_count,
        "Strings",
    )?);

    // Adjacency: zero-copy CSR views.
    let fwd: Csr<NodeId> = l.csr(
        SectionKind::FwdOffsets,
        SectionKind::FwdTargets,
        c.nodes,
        c.edges,
    )?;
    let rev: Csr<NodeId> = l.csr(
        SectionKind::RevOffsets,
        SectionKind::RevTargets,
        c.nodes,
        c.edges,
    )?;

    // Attribute tuples: the four columns stay mapped and decode into owned
    // `Attribute`s only on first per-node access (see `AttrTuples`), so a
    // plain-mmap open never pays the per-node allocations, string clones or
    // even the page faults of these sections.  Verifying modes validate
    // every entry field by field up front — allocation-free — so a file
    // that passes a verified load can never decode wrongly later; plain
    // mmap keeps only the O(1) span check and relies on the defensive
    // access-time decode.
    let attr_offsets: IntRun<u32> = l.run(SectionKind::AttrOffsets, c.nodes + 1)?;
    let attr_names: IntRun<Symbol> = l.run(SectionKind::AttrNames, c.attrs)?;
    let attr_tags: IntRun<u8> = l.run(SectionKind::AttrTags, c.attrs)?;
    let attr_payloads: IntRun<u64> = l.run(SectionKind::AttrPayloads, c.attrs)?;
    check_offsets_span(&attr_offsets, c.attrs, "AttrOffsets")?;

    // Vector-value dictionary (version 2; absent means empty).  The offsets
    // run spans the data run, so every `lo..hi` window `VecDict::get` slices
    // is in bounds after a successful open.
    let vectors = if l.has(SectionKind::VecOffsets) {
        let data: IntRun<f32> = l.run_sized(SectionKind::VecData)?;
        let offsets: IntRun<u32> = l.run_sized(SectionKind::VecOffsets)?;
        if offsets.is_empty() {
            return Err(malformed("VecOffsets must hold at least one entry"));
        }
        check_offsets_span(&offsets, data.len() as u64, "VecOffsets")?;
        Arc::new(VecDict { offsets, data })
    } else {
        Arc::new(VecDict::default())
    };

    if l.verify_all {
        if attr_names.iter().any(|name| name.index() >= sym_count) {
            return Err(malformed("attribute name symbol out of range"));
        }
        for i in 0..attr_tags.len() {
            match attr_tags[i] {
                TAG_INT => {}
                TAG_STR => {
                    let in_dict =
                        usize::try_from(attr_payloads[i]).is_ok_and(|id| id < strings.len());
                    if !in_dict {
                        return Err(malformed("string payload out of dictionary range"));
                    }
                }
                TAG_VEC => {
                    let in_dict =
                        usize::try_from(attr_payloads[i]).is_ok_and(|id| id < vectors.len());
                    if !in_dict {
                        return Err(malformed("vector payload out of dictionary range"));
                    }
                }
                other => return Err(malformed(format!("unknown attribute value tag {other}"))),
            }
        }
    }
    let attrs = AttrTuples::from_columns(
        n,
        AttrColumns {
            offsets: attr_offsets,
            names: attr_names,
            tags: attr_tags,
            payloads: attr_payloads,
            strings: Arc::clone(&strings),
            vectors,
        },
    );

    let index = decode_index(l, sym_count, &strings)?;
    let sims = decode_sims(l, sym_count, c.nodes)?;
    Ok(DataGraph {
        symbols,
        fwd,
        rev,
        attrs,
        index,
        sims,
        edge_count: c.edges as usize,
    })
}

/// Reconstructs the similarity catalog from the flattened sim-table sections
/// (version 2; a version-1 file yields an empty catalog).  Each table is
/// re-validated through [`SimTable::from_parts`], so incoherent spans in a
/// damaged file surface as [`SnapshotError::Malformed`], never a panic.
fn decode_sims(l: &Loader, sym_count: usize, nodes: u64) -> Result<SimCatalog, SnapshotError> {
    if !l.has(SectionKind::SimSyms) {
        return Ok(SimCatalog::default());
    }
    let syms: IntRun<Symbol> = l.run_sized(SectionKind::SimSyms)?;
    let t = syms.len();
    let dims: IntRun<u32> = l.run(SectionKind::SimDims, t as u64)?;
    let node_offsets: IntRun<u32> = l.run(SectionKind::SimNodeOffsets, t as u64 + 1)?;
    let sim_nodes: IntRun<NodeId> = l.run_sized(SectionKind::SimNodes)?;
    check_offsets_span(&node_offsets, sim_nodes.len() as u64, "SimNodeOffsets")?;
    let vec_offsets: IntRun<u32> = l.run(SectionKind::SimVecOffsets, t as u64 + 1)?;
    let vec_data: IntRun<f32> = l.run_sized(SectionKind::SimVecData)?;
    check_offsets_span(&vec_offsets, vec_data.len() as u64, "SimVecOffsets")?;
    let pivot_offsets: IntRun<u32> = l.run(SectionKind::SimPivotOffsets, t as u64 + 1)?;
    let pivot_data: IntRun<f32> = l.run_sized(SectionKind::SimPivotData)?;
    check_offsets_span(&pivot_offsets, pivot_data.len() as u64, "SimPivotOffsets")?;
    let dist_offsets: IntRun<u32> = l.run(SectionKind::SimDistOffsets, t as u64 + 1)?;
    let dist_data: IntRun<f32> = l.run_sized(SectionKind::SimDistData)?;
    check_offsets_span(&dist_offsets, dist_data.len() as u64, "SimDistOffsets")?;
    let sorted_head: IntRun<f32> = l.run(SectionKind::SimSortedHead, sim_nodes.len() as u64)?;
    let norm_bounds: IntRun<f32> = l.run(SectionKind::SimNormBounds, 2 * t as u64)?;

    let mut tables: BTreeMap<Symbol, SimTable> = BTreeMap::new();
    for i in 0..t {
        let sym = syms[i];
        if sym.index() >= sym_count {
            return Err(malformed("sim-table symbol out of range"));
        }
        let node_span = node_offsets[i] as usize..node_offsets[i + 1] as usize;
        let nodes_run = sim_nodes.slice(node_span.clone());
        if nodes_run.iter().any(|v| v.0 as u64 >= nodes) {
            return Err(malformed("sim-table node id out of range"));
        }
        let table = SimTable::from_parts(
            dims[i],
            nodes_run,
            vec_data.slice(vec_offsets[i] as usize..vec_offsets[i + 1] as usize),
            pivot_data.slice(pivot_offsets[i] as usize..pivot_offsets[i + 1] as usize),
            dist_data.slice(dist_offsets[i] as usize..dist_offsets[i + 1] as usize),
            sorted_head.slice(node_span),
            norm_bounds[2 * i],
            norm_bounds[2 * i + 1],
        )
        .ok_or_else(|| malformed(format!("sim table {i} has incoherent spans")))?;
        if tables.insert(sym, table).is_some() {
            return Err(malformed("duplicate sim-table symbol"));
        }
    }
    Ok(SimCatalog::from_tables(tables))
}

fn decode_value(tag: u8, payload: u64, strings: &[String]) -> Result<AttrValue, SnapshotError> {
    match tag {
        TAG_INT => Ok(AttrValue::Int(payload as i64)),
        TAG_STR => {
            let id = usize::try_from(payload)
                .ok()
                .filter(|&id| id < strings.len())
                .ok_or_else(|| malformed("string payload out of dictionary range"))?;
            Ok(AttrValue::Str(strings[id].clone()))
        }
        other => Err(malformed(format!("unknown attribute value tag {other}"))),
    }
}

fn decode_index(
    l: &Loader,
    sym_count: usize,
    strings: &[String],
) -> Result<AttrIndex, SnapshotError> {
    let c = &l.counts;

    // Value postings: per-slot keys are materialized into the two-level
    // dictionary; offsets and node lists stay mapped.
    let slot_count =
        usize::try_from(c.value_slots).map_err(|_| malformed("slot count overflows usize"))?;
    let val_syms: IntRun<Symbol> = l.run(SectionKind::ValSyms, c.value_slots)?;
    let val_tags: IntRun<u8> = l.run(SectionKind::ValTags, c.value_slots)?;
    let val_payloads: IntRun<u64> = l.run(SectionKind::ValPayloads, c.value_slots)?;
    let value_offsets: IntRun<u32> = l.run(SectionKind::ValOffsets, c.value_slots + 1)?;
    let value_nodes: IntRun<NodeId> = l.run(SectionKind::ValNodes, c.value_nodes)?;
    check_offsets_span(&value_offsets, c.value_nodes, "ValOffsets")?;
    let mut value_slots: HashMap<Symbol, HashMap<AttrValue, u32>> = HashMap::new();
    for slot in 0..slot_count {
        let sym = val_syms[slot];
        if sym.index() >= sym_count {
            return Err(malformed("value-slot symbol out of range"));
        }
        let value = decode_value(val_tags[slot], val_payloads[slot], strings)?;
        let prev = value_slots
            .entry(sym)
            .or_default()
            .insert(value, slot as u32);
        if prev.is_some() {
            return Err(malformed("duplicate value-slot key"));
        }
    }

    // Name postings.
    let name_count =
        usize::try_from(c.name_slots).map_err(|_| malformed("name count overflows usize"))?;
    let name_syms: IntRun<Symbol> = l.run(SectionKind::NameSyms, c.name_slots)?;
    let name_offsets: IntRun<u32> = l.run(SectionKind::NameOffsets, c.name_slots + 1)?;
    let name_nodes: IntRun<NodeId> = l.run(SectionKind::NameNodes, c.name_nodes)?;
    check_offsets_span(&name_offsets, c.name_nodes, "NameOffsets")?;
    let mut name_slots: HashMap<Symbol, u32> = HashMap::with_capacity(name_count);
    for slot in 0..name_count {
        let sym = name_syms[slot];
        if sym.index() >= sym_count {
            return Err(malformed("name-slot symbol out of range"));
        }
        if name_slots.insert(sym, slot as u32).is_some() {
            return Err(malformed("duplicate name-slot symbol"));
        }
    }

    // Integer runs: the two flat halves stay mapped; each per-attribute run
    // is a shared sub-window.
    let int_count =
        usize::try_from(c.int_attrs).map_err(|_| malformed("int-run count overflows usize"))?;
    let int_syms: IntRun<Symbol> = l.run(SectionKind::IntSyms, c.int_attrs)?;
    let int_offsets: IntRun<u32> = l.run(SectionKind::IntOffsets, c.int_attrs + 1)?;
    let int_values: IntRun<i64> = l.run(SectionKind::IntValues, c.int_pairs)?;
    let int_nodes: IntRun<NodeId> = l.run(SectionKind::IntNodes, c.int_pairs)?;
    check_offsets_span(&int_offsets, c.int_pairs, "IntOffsets")?;
    let mut int_runs: HashMap<Symbol, IntPairs> = HashMap::with_capacity(int_count);
    for i in 0..int_count {
        let sym = int_syms[i];
        if sym.index() >= sym_count {
            return Err(malformed("int-run symbol out of range"));
        }
        let lo = int_offsets[i] as usize;
        let hi = int_offsets[i + 1] as usize;
        let pairs = IntPairs {
            values: int_values.slice(lo..hi),
            nodes: int_nodes.slice(lo..hi),
        };
        if int_runs.insert(sym, pairs).is_some() {
            return Err(malformed("duplicate int-run symbol"));
        }
    }

    Ok(AttrIndex {
        value_slots,
        value_offsets,
        value_nodes,
        name_slots,
        name_offsets,
        name_nodes,
        int_runs,
    })
}

fn decode_condensation(l: &Loader) -> Result<Condensation, SnapshotError> {
    let c = &l.counts;
    if c.components > u32::MAX as u64 || c.comp_edges > u32::MAX as u64 {
        return Err(malformed("condensation counts overflow u32 offsets"));
    }
    let comp_of: IntRun<CompId> = l.run(SectionKind::CompOf, c.nodes)?;
    let cyclic: IntRun<u8> = l.run(SectionKind::Cyclic, c.components)?;
    let members: Csr<NodeId> = l.csr(
        SectionKind::MembersOffsets,
        SectionKind::Members,
        c.components,
        c.nodes,
    )?;
    let comp_out: Csr<CompId> = l.csr(
        SectionKind::CompOutOffsets,
        SectionKind::CompOut,
        c.components,
        c.comp_edges,
    )?;
    let comp_in: Csr<CompId> = l.csr(
        SectionKind::CompInOffsets,
        SectionKind::CompIn,
        c.components,
        c.comp_edges,
    )?;
    let topo: IntRun<CompId> = l.run(SectionKind::Topo, c.components)?;
    Ok(Condensation::from_parts(
        comp_of, members, cyclic, comp_out, comp_in, topo,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::LABEL_ATTR;

    fn sample_snapshot() -> GraphSnapshot {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("paper");
        let x = b.add_node_with_label("paper");
        let y = b.add_node_with_label("author");
        b.set_attr(a, "year", AttrValue::int(2001));
        b.set_attr(x, "year", AttrValue::int(2005));
        b.set_attr(y, "name", AttrValue::str("knuth"));
        b.add_edge(a, x);
        b.add_edge(x, y);
        b.add_edge(a, y);
        GraphSnapshot::freeze(Arc::new(b.build()))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gtpq-snap-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_through_all_modes() {
        let snap = sample_snapshot();
        let path = tmp("roundtrip.gtpq");
        snap.save(&path).unwrap();
        for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
            let loaded = GraphSnapshot::open(&path, mode).unwrap();
            assert_eq!(loaded.epoch(), snap.epoch());
            assert_eq!(loaded.graph(), snap.graph());
            assert_eq!(loaded.condensation(), snap.condensation());
            assert_eq!(
                loaded
                    .graph()
                    .nodes_with(LABEL_ATTR, &AttrValue::str("paper")),
                snap.graph()
                    .nodes_with(LABEL_ATTR, &AttrValue::str("paper")),
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vector_attributes_and_sim_tables_round_trip() {
        let mut b = GraphBuilder::new();
        for i in 0..12u32 {
            let v = b.add_node_with_label("doc");
            let emb: Vec<f32> = (0..4).map(|j| (i * 4 + j) as f32 * 0.25 - 1.0).collect();
            b.set_attr(v, "emb", AttrValue::Vec(emb));
        }
        // A shared vector value exercises the dictionary dedup, and an
        // off-dimension one the modal-dim fallback.
        let dup = b.add_node_with_label("doc");
        b.set_attr(dup, "emb", AttrValue::Vec(vec![0.0, 0.25, 0.5, 0.75]));
        let odd = b.add_node_with_label("doc");
        b.set_attr(odd, "emb", AttrValue::Vec(vec![1.0, 2.0]));
        let snap = GraphSnapshot::freeze(Arc::new(b.build()));
        assert_eq!(snap.graph().sim_table("emb").map(|t| t.len()), Some(13));

        let path = tmp("vectors.gtpq");
        snap.save(&path).unwrap();
        for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
            let loaded = GraphSnapshot::open(&path, mode).unwrap();
            assert_eq!(loaded.graph(), snap.graph(), "mode {mode:?}");
            let table = loaded.graph().sim_table("emb").unwrap();
            let q = [0.0f32, 0.25, 0.5, 0.75];
            assert_eq!(
                table.within_l2(&q, 0.3, true),
                snap.graph()
                    .sim_table("emb")
                    .unwrap()
                    .within_l2(&q, 0.3, true),
            );
            assert_eq!(
                loaded.graph().attribute_value(odd, "emb"),
                Some(&AttrValue::Vec(vec![1.0, 2.0]))
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_runs_borrow_the_file() {
        let snap = sample_snapshot();
        let path = tmp("borrowed.gtpq");
        snap.save(&path).unwrap();
        let loaded = GraphSnapshot::open_mmap(&path).unwrap();
        // The CSR target run of a loaded graph is a mapped view, not a copy
        // (on any platform: the heap fallback also shares its buffer).
        assert!(loaded.graph().fwd.targets_raw().len() == 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_and_an_abandoned_writer_cleans_up() {
        let snap = sample_snapshot();
        // A private directory: the leftover scan below must not observe
        // other tests' in-flight temp files.
        let dir = std::env::temp_dir().join("gtpq-snap-unit-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.gtpq");
        snap.save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // A writer that dies mid-save must leave the good file untouched and
        // remove its temp sibling.
        {
            let mut w = SnapshotWriter::create(&path, 7).unwrap();
            w.section(SectionKind::FwdOffsets, &[0u32, 1]).unwrap();
            // dropped without finish()
        }
        assert_eq!(std::fs::read(&path).unwrap(), pristine);
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );

        // A completed save over an existing file replaces it wholesale.
        snap.save(&path).unwrap();
        GraphSnapshot::open_heap(&path).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn refuses_to_save_onto_the_file_backing_its_own_mapping() {
        let snap = sample_snapshot();
        let path = tmp("self-save.gtpq");
        snap.save(&path).unwrap();
        let loaded = GraphSnapshot::open_mmap(&path).unwrap();
        if loaded.graph().backing_file_id().is_none() {
            // Mapping unavailable on this platform: nothing to protect.
            let _ = std::fs::remove_file(&path);
            return;
        }
        assert!(matches!(
            loaded.save(&path),
            Err(SnapshotError::OverwritesMapped { .. })
        ));
        // The refusal leaves the file and the live mapping fully intact.
        assert_eq!(loaded.graph(), snap.graph());
        GraphSnapshot::open_heap(&path).unwrap();
        // A different target is fine, even while the mapping is alive.
        let other = tmp("self-save-other.gtpq");
        loaded.save(&other).unwrap();
        GraphSnapshot::open_heap(&other).unwrap();
        // A heap load borrows nothing, so overwriting its source is allowed.
        let heap = GraphSnapshot::open_heap(&path).unwrap();
        heap.save(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&other);
    }

    /// Locates the file offset of `kind`'s section data by parsing the TOC
    /// the way a reader would.
    fn section_offset(bytes: &[u8], kind: SectionKind) -> usize {
        let section_count = read_u64(bytes, 16) as usize;
        let toc_offset = read_u64(bytes, 24) as usize;
        for i in 0..section_count {
            let at = toc_offset + i * TOC_ENTRY_LEN as usize;
            if read_u32(bytes, at) == kind as u32 {
                return read_u64(bytes, at + 8) as usize;
            }
        }
        panic!("section {kind:?} not found");
    }

    #[test]
    fn corrupt_middle_offset_fails_typed_under_plain_mmap() {
        let snap = sample_snapshot();
        let path = tmp("bad-offsets.gtpq");
        snap.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Stomp a middle FwdOffsets entry (plain Mmap never CRCs this run,
        // so only the load-time monotonicity scan can catch it).
        let at = section_offset(&good, SectionKind::FwdOffsets) + 4;
        let mut bad = good.clone();
        bad[at..at + 4].copy_from_slice(&0xFFFFu32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        for mode in [LoadMode::Mmap, LoadMode::MmapVerified, LoadMode::Heap] {
            assert!(
                GraphSnapshot::open(&path, mode).is_err(),
                "non-monotone FwdOffsets accepted under {mode:?}"
            );
        }

        // Same for a posting offsets run consumed by index probes.
        let at = section_offset(&good, SectionKind::ValOffsets) + 4;
        let mut bad = good.clone();
        bad[at..at + 4].copy_from_slice(&0xFFFFu32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(
            GraphSnapshot::open_mmap(&path).is_err(),
            "non-monotone ValOffsets accepted under plain mmap"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_truncation_bad_magic_and_version() {
        let snap = sample_snapshot();
        let path = tmp("corrupt.gtpq");
        snap.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Truncated header.
        std::fs::write(&path, &good[..32]).unwrap();
        assert!(matches!(
            GraphSnapshot::open_heap(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        // Truncated body.
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(matches!(
            GraphSnapshot::open_heap(&path),
            Err(SnapshotError::Truncated { .. })
        ));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            GraphSnapshot::open_heap(&path),
            Err(SnapshotError::BadMagic)
        ));
        // Unsupported version (header CRC patched so the version check is
        // what fires).
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bad[..52]).to_le_bytes();
        bad[52..56].copy_from_slice(&crc);
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            GraphSnapshot::open_heap(&path),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
        // Flipped data byte -> checksum mismatch under full verification.
        let mut bad = good.clone();
        bad[HEADER_LEN as usize + 1] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            GraphSnapshot::open_heap(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
