//! Graph traversal helpers: BFS/DFS reachability, descendant/ancestor sets.
//!
//! These are the straightforward, index-free operations.  They double as the
//! correctness oracle for the reachability indexes in `gtpq-reach` and are
//! used directly by the semantic (naive) query evaluator.

use std::collections::VecDeque;

use crate::graph::{DataGraph, NodeId};

/// Returns all proper descendants of `start` (nodes reachable by a non-empty
/// path), in BFS discovery order.
pub fn descendants(g: &DataGraph, start: NodeId) -> Vec<NodeId> {
    neighbourhood_closure(g, start, Direction::Forward)
}

/// Returns all proper ancestors of `start` (nodes that reach `start` by a
/// non-empty path), in BFS discovery order.
pub fn ancestors(g: &DataGraph, start: NodeId) -> Vec<NodeId> {
    neighbourhood_closure(g, start, Direction::Backward)
}

/// Whether there is a non-empty directed path from `u` to `v`.
///
/// This is the AD (ancestor-descendant) relationship of the paper.  `u == v`
/// is reachable only when `u` lies on a cycle.
pub fn is_reachable(g: &DataGraph, u: NodeId, v: NodeId) -> bool {
    let mut visited = vec![false; g.node_count()];
    let mut queue: VecDeque<NodeId> = g.children(u).iter().copied().collect();
    for &c in g.children(u) {
        visited[c.index()] = true;
    }
    while let Some(x) = queue.pop_front() {
        if x == v {
            return true;
        }
        for &c in g.children(x) {
            if !visited[c.index()] {
                visited[c.index()] = true;
                queue.push_back(c);
            }
        }
    }
    false
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

fn neighbourhood_closure(g: &DataGraph, start: NodeId, dir: Direction) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let next = |v: NodeId| -> &[NodeId] {
        match dir {
            Direction::Forward => g.children(v),
            Direction::Backward => g.parents(v),
        }
    };
    for &n in next(start) {
        if !visited[n.index()] {
            visited[n.index()] = true;
            queue.push_back(n);
        }
    }
    while let Some(x) = queue.pop_front() {
        order.push(x);
        for &n in next(x) {
            if !visited[n.index()] {
                visited[n.index()] = true;
                queue.push_back(n);
            }
        }
    }
    order
}

/// A topological order of the graph's nodes, if the graph is acyclic.
///
/// Returns `None` when the graph contains a cycle.
pub fn topological_order(g: &DataGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indegree: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: VecDeque<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|v| indegree[v.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &c in g.children(v) {
            indegree[c.index()] -= 1;
            if indegree[c.index()] == 0 {
                queue.push_back(c);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Whether the graph is a DAG.
pub fn is_acyclic(g: &DataGraph) -> bool {
    topological_order(g).is_some()
}

/// Depth of each node when the graph is interpreted as a forest rooted at the
/// in-degree-zero nodes; nodes reachable through multiple paths get the depth
/// of their first discovery (BFS).  Used only for dataset statistics.
pub fn bfs_depths(g: &DataGraph) -> Vec<Option<usize>> {
    let mut depth = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for v in g.nodes() {
        if g.in_degree(v) == 0 {
            depth[v.index()] = Some(0);
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = depth[v.index()].unwrap_or(0);
        for &c in g.children(v) {
            if depth[c.index()].is_none() {
                depth[c.index()] = Some(d + 1);
                queue.push_back(c);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    use super::*;

    fn diamond() -> DataGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        b.add_edge(v[2], v[3]);
        b.build()
    }

    #[test]
    fn descendants_and_ancestors() {
        let g = diamond();
        let mut d = descendants(&g, NodeId(0));
        d.sort_unstable();
        assert_eq!(d, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let mut a = ancestors(&g, NodeId(3));
        a.sort_unstable();
        assert_eq!(a, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn reachability_requires_nonempty_path() {
        let g = diamond();
        assert!(is_reachable(&g, NodeId(0), NodeId(3)));
        assert!(!is_reachable(&g, NodeId(3), NodeId(0)));
        // No self loop: a node does not reach itself.
        assert!(!is_reachable(&g, NodeId(0), NodeId(0)));
    }

    #[test]
    fn cycle_makes_node_reach_itself() {
        let mut b = GraphBuilder::new();
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        b.add_edge(c, a);
        let g = b.build();
        assert!(is_reachable(&g, a, a));
        assert!(!is_acyclic(&g));
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn topological_order_on_dag() {
        let g = diamond();
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|&v| v == NodeId(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn depths() {
        let g = diamond();
        let d = bfs_depths(&g);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(2));
    }
}
