//! Owned-or-lazy per-node attribute tuples.
//!
//! A built [`DataGraph`](crate::DataGraph) owns its attribute tuples as a
//! plain `Vec<Vec<Attribute>>`.  A graph loaded from a `.gtpq` snapshot keeps
//! the four columnar attribute sections (offsets, names, tags, payloads)
//! *mapped* instead and decodes them into tuples only on the first access
//! that actually needs per-node attribute data — cold start never pays the
//! per-node allocations and string clones, and a process that answers purely
//! index-served queries never touches those file pages at all.
//!
//! The decoded form is cached in a [`OnceLock`], so after the first
//! materialization every access is exactly the pre-lazy borrow.  Operations
//! that need the whole table anyway (text serialization, snapshot writing,
//! mutation commits, structural equality) transparently materialize it.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::attr::{AttrValue, Attribute};
use crate::run::IntRun;
use crate::symbol::Symbol;

/// Attribute value tag: the payload is the `i64` value itself.
pub(crate) const TAG_INT: u8 = 0;
/// Attribute value tag: the payload indexes the string dictionary.
pub(crate) const TAG_STR: u8 = 1;
/// Attribute value tag: the payload indexes the vector dictionary.
pub(crate) const TAG_VEC: u8 = 2;

/// The snapshot vector dictionary: every distinct embedding stored once as a
/// window into one flat f32 column, CSR-style.  Like the attribute columns it
/// is owned-or-mapped — a loaded graph keeps the file pages borrowed and only
/// copies a vector out when a tuple materializes.
#[derive(Clone, Default)]
pub(crate) struct VecDict {
    /// `entries + 1` offsets into `data`; empty means "no dictionary".
    pub(crate) offsets: IntRun<u32>,
    /// Concatenated vector payloads.
    pub(crate) data: IntRun<f32>,
}

impl VecDict {
    /// Number of dictionary entries.
    pub(crate) fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The floats of entry `id`; `None` when the id or its span is out of
    /// range (defensive for plain-mmap loads of damaged files).
    pub(crate) fn get(&self, id: usize) -> Option<&[f32]> {
        let lo = *self.offsets.get(id)? as usize;
        let hi = *self.offsets.get(id + 1)? as usize;
        if lo > hi || hi > self.data.len() {
            return None;
        }
        Some(&self.data[lo..hi])
    }

    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.offsets
            .backing_file_id()
            .or_else(|| self.data.backing_file_id())
    }
}

/// The columnar snapshot encoding of every node's attribute tuple:
/// CSR-style offsets plus parallel name/tag/payload runs, and the shared
/// string/vector dictionaries the payloads of string- and vector-valued
/// attributes index into.
#[derive(Clone)]
pub(crate) struct AttrColumns {
    pub(crate) offsets: IntRun<u32>,
    pub(crate) names: IntRun<Symbol>,
    pub(crate) tags: IntRun<u8>,
    pub(crate) payloads: IntRun<u64>,
    pub(crate) strings: Arc<Vec<String>>,
    pub(crate) vectors: Arc<VecDict>,
}

impl AttrColumns {
    /// Decodes every tuple.  Verifying load modes validate each entry up
    /// front, but the decode stays defensive regardless — an entry that no
    /// longer makes sense (plain-mmap load of a file corrupted on disk) is
    /// skipped rather than panicking.
    fn decode(&self) -> Vec<Vec<Attribute>> {
        let n = self.offsets.len().saturating_sub(1);
        // Clamp every span to the shortest column so a corrupt offset (a
        // mapped file damaged on disk after load) degrades to a truncated
        // tuple — it can neither size a multi-GB allocation nor spin through
        // billions of per-entry bounds checks below.
        let entries = self
            .names
            .len()
            .min(self.tags.len())
            .min(self.payloads.len());
        let mut out = Vec::with_capacity(n);
        for v in 0..n {
            let lo = (self.offsets[v] as usize).min(entries);
            let hi = (self.offsets[v + 1] as usize).clamp(lo, entries);
            let mut tuple = Vec::with_capacity(hi - lo);
            for i in lo..hi {
                let (Some(&name), Some(&tag), Some(&payload)) =
                    (self.names.get(i), self.tags.get(i), self.payloads.get(i))
                else {
                    continue;
                };
                let value = match tag {
                    TAG_INT => AttrValue::Int(payload as i64),
                    TAG_STR => match usize::try_from(payload)
                        .ok()
                        .and_then(|id| self.strings.get(id))
                    {
                        Some(s) => AttrValue::Str(s.clone()),
                        None => continue,
                    },
                    TAG_VEC => match usize::try_from(payload)
                        .ok()
                        .and_then(|id| self.vectors.get(id))
                    {
                        Some(v) => AttrValue::Vec(v.to_vec()),
                        None => continue,
                    },
                    _ => continue,
                };
                tuple.push(Attribute::new(name, value));
            }
            out.push(tuple);
        }
        out
    }
}

/// The attribute tuples `f(v)` of a [`DataGraph`](crate::DataGraph):
/// either an owned table (graphs built in memory) or mapped snapshot columns
/// decoded lazily on first access and cached from then on.
///
/// Cloning an undecoded store clones only the column views (refcount bumps
/// for mapped runs); equality and [`tuples`](Self::tuples) go through the
/// materialized table, so an owned store and a lazy store over the same data
/// compare equal.
pub struct AttrTuples {
    /// Node count, known without materializing.
    len: usize,
    /// The mapped columns; `None` for stores built from owned tuples.
    columns: Option<AttrColumns>,
    /// The materialized table; set at construction for owned stores.
    tuples: OnceLock<Vec<Vec<Attribute>>>,
}

impl AttrTuples {
    pub(crate) fn from_columns(len: usize, columns: AttrColumns) -> Self {
        Self {
            len,
            columns: Some(columns),
            tuples: OnceLock::new(),
        }
    }

    /// Number of nodes (O(1), never materializes).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total attribute entries across all nodes (O(1), never materializes).
    pub fn entry_count(&self) -> usize {
        match &self.columns {
            Some(c) => c.names.len(),
            None => self
                .tuples
                .get()
                .map_or(0, |t| t.iter().map(Vec::len).sum()),
        }
    }

    /// The materialized per-node tuples.
    ///
    /// The first call on a snapshot-loaded graph decodes every column into
    /// owned `Attribute`s and caches the result; later calls (and every call
    /// on a built graph) are a plain borrow.
    #[inline]
    pub fn tuples(&self) -> &[Vec<Attribute>] {
        self.tuples.get_or_init(|| {
            self.columns
                .as_ref()
                .map(AttrColumns::decode)
                .unwrap_or_default()
        })
    }

    /// An owned copy of every tuple — the copy-on-write step of the mutation
    /// commit path.
    pub fn to_tuples_vec(&self) -> Vec<Vec<Attribute>> {
        self.tuples().to_vec()
    }

    /// The `(device, inode)` of the snapshot file the columns borrow, when
    /// this store is a mapped view (see [`crate::snap`]).
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        let c = self.columns.as_ref()?;
        c.offsets
            .backing_file_id()
            .or_else(|| c.names.backing_file_id())
            .or_else(|| c.tags.backing_file_id())
            .or_else(|| c.payloads.backing_file_id())
            .or_else(|| c.vectors.backing_file_id())
    }
}

impl From<Vec<Vec<Attribute>>> for AttrTuples {
    fn from(tuples: Vec<Vec<Attribute>>) -> Self {
        let len = tuples.len();
        let cell = OnceLock::new();
        let _ = cell.set(tuples);
        Self {
            len,
            columns: None,
            tuples: cell,
        }
    }
}

impl Clone for AttrTuples {
    fn clone(&self) -> Self {
        match (&self.columns, self.tuples.get()) {
            // Never decoded: clone the cheap column views and stay lazy.
            (Some(c), None) => Self::from_columns(self.len, c.clone()),
            (_, Some(t)) => t.clone().into(),
            (None, None) => Vec::new().into(),
        }
    }
}

impl PartialEq for AttrTuples {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.tuples() == other.tuples()
    }
}

impl fmt::Debug for AttrTuples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tuples.get() {
            Some(t) => t.fmt(f),
            None => f
                .debug_struct("AttrTuples")
                .field("len", &self.len)
                .field("decoded", &false)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_store_round_trips() {
        let raw = vec![
            vec![Attribute::new(Symbol(0), AttrValue::int(7))],
            Vec::new(),
        ];
        let store: AttrTuples = raw.clone().into();
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.entry_count(), 1);
        assert_eq!(store.tuples(), &raw[..]);
        assert_eq!(store.to_tuples_vec(), raw);
        assert_eq!(store.clone(), store);
    }

    fn columns(
        offsets: Vec<u32>,
        names: Vec<Symbol>,
        tags: Vec<u8>,
        payloads: Vec<u64>,
        strings: Vec<&str>,
    ) -> AttrColumns {
        AttrColumns {
            offsets: offsets.into(),
            names: names.into(),
            tags: tags.into(),
            payloads: payloads.into(),
            strings: Arc::new(strings.into_iter().map(str::to_owned).collect()),
            vectors: Arc::new(VecDict::default()),
        }
    }

    #[test]
    fn lazy_store_decodes_on_first_access() {
        let c = columns(
            vec![0, 2, 2, 3],
            vec![Symbol(0), Symbol(1), Symbol(0)],
            vec![TAG_INT, TAG_STR, TAG_INT],
            vec![(-3i64) as u64, 0, 42],
            vec!["hi"],
        );
        let store = AttrTuples::from_columns(3, c);
        assert_eq!(store.len(), 3);
        assert_eq!(store.entry_count(), 3);
        let want = vec![
            vec![
                Attribute::new(Symbol(0), AttrValue::int(-3)),
                Attribute::new(Symbol(1), AttrValue::str("hi")),
            ],
            Vec::new(),
            vec![Attribute::new(Symbol(0), AttrValue::int(42))],
        ];
        assert_eq!(store.tuples(), &want[..]);
        let owned: AttrTuples = want.into();
        assert_eq!(store, owned);
        assert_eq!(store.clone(), owned);
    }

    #[test]
    fn vector_entries_decode_from_the_dictionary() {
        let mut c = columns(
            vec![0, 2, 3],
            vec![Symbol(0), Symbol(1), Symbol(0)],
            vec![TAG_VEC, TAG_INT, TAG_VEC],
            vec![1, 5, 99], // 99 is out of dictionary range: skipped
            vec![],
        );
        c.vectors = Arc::new(VecDict {
            offsets: vec![0u32, 2, 5].into(),
            data: vec![9.0f32, 8.0, 1.0, 2.0, 3.0].into(),
        });
        assert_eq!(c.vectors.len(), 2);
        assert_eq!(c.vectors.get(0), Some(&[9.0f32, 8.0][..]));
        assert_eq!(c.vectors.get(2), None);
        let store = AttrTuples::from_columns(2, c);
        assert_eq!(
            store.tuples(),
            &[
                vec![
                    Attribute::new(Symbol(0), AttrValue::Vec(vec![1.0, 2.0, 3.0])),
                    Attribute::new(Symbol(1), AttrValue::int(5)),
                ],
                Vec::new(),
            ][..]
        );
    }

    #[test]
    fn corrupt_entries_are_skipped_not_panicked_on() {
        // Out-of-range string id, unknown tag, offsets past the runs: every
        // bad entry degrades to an absent attribute.
        let c = columns(
            vec![0, 3, 9],
            vec![Symbol(0), Symbol(1), Symbol(2)],
            vec![TAG_STR, 77, TAG_INT],
            vec![999, 0, 5],
            vec!["only"],
        );
        let store = AttrTuples::from_columns(2, c);
        assert_eq!(
            store.tuples(),
            &[
                vec![Attribute::new(Symbol(2), AttrValue::int(5))],
                Vec::new(),
            ][..]
        );
    }

    #[test]
    fn debug_does_not_force_materialization() {
        let c = columns(vec![0, 1], vec![Symbol(0)], vec![TAG_INT], vec![9], vec![]);
        let store = AttrTuples::from_columns(1, c);
        let undecoded = format!("{store:?}");
        assert!(undecoded.contains("decoded: false"), "{undecoded}");
        let _ = store.tuples();
        assert!(!format!("{store:?}").contains("decoded: false"));
    }
}
