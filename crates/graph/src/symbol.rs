//! String interning for attribute names and frequently repeated string values.
//!
//! Attribute names ("label", "year", "tag", ...) and categorical string values
//! repeat across millions of nodes; interning them keeps the per-node
//! attribute tuples small and makes comparisons integer comparisons.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// An interned string. Cheap to copy and compare.
///
/// `repr(transparent)` over the raw `u32` so symbol runs can live directly
/// inside mapped snapshot sections (see [`crate::run::IntRun`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index into the owning [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only interner mapping strings to dense [`Symbol`] ids.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, Symbol>,
}

/// Two tables are equal when they intern the same strings in the same order
/// (the lookup map is derived state and skipped, mirroring serialization).
impl PartialEq for SymbolTable {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for SymbolTable {}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `name` if it has been interned before.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the lookup map after deserialization (the map is not serialized).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Symbol(i as u32)))
            .collect();
    }

    /// Iterates over `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("label");
        let b = t.intern("label");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("year");
        let b = t.intern("tag");
        assert_eq!(t.resolve(a), "year");
        assert_eq!(t.resolve(b), "tag");
        assert_eq!(t.get("tag"), Some(b));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut t = SymbolTable::new();
        let a = t.intern("x");
        t.lookup.clear();
        assert_eq!(t.get("x"), None);
        t.rebuild_lookup();
        assert_eq!(t.get("x"), Some(a));
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
