//! Dataset statistics (used for Table 1 style reporting).

use crate::graph::{DataGraph, NodeId};
use crate::traversal::bfs_depths;

/// Summary statistics of a data graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Number of distinct values of the `label` attribute.
    pub distinct_labels: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Average BFS depth from the source nodes (in-degree 0), if any node is
    /// reachable from a source.
    pub avg_depth: f64,
    /// Maximum BFS depth from the source nodes.
    pub max_depth: usize,
    /// Approximate in-memory size in bytes (nodes, edges and attributes).
    pub approx_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &DataGraph) -> Self {
        // Distinct label values come straight from the inverted index.
        let distinct_labels = g
            .symbols()
            .get(crate::LABEL_ATTR)
            .map(|sym| g.attr_index().distinct_values(sym))
            .unwrap_or(0);

        let max_out_degree = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
        let max_in_degree = g.nodes().map(|v| g.in_degree(v)).max().unwrap_or(0);

        let depths = bfs_depths(g);
        let reached: Vec<usize> = depths.iter().filter_map(|d| *d).collect();
        let avg_depth = if reached.is_empty() {
            0.0
        } else {
            reached.iter().sum::<usize>() as f64 / reached.len() as f64
        };
        let max_depth = reached.iter().copied().max().unwrap_or(0);

        // CSR layout: two offset arrays plus two flat target arrays, the
        // attribute tuples, and the inverted-index posting entries.
        let approx_bytes = (g.node_count() + 1) * std::mem::size_of::<u32>() * 2
            + g.edge_count() * std::mem::size_of::<NodeId>() * 2
            + g.attribute_count() * 24
            + g.attr_index().entry_count() * std::mem::size_of::<NodeId>();

        Self {
            nodes: g.node_count(),
            edges: g.edge_count(),
            distinct_labels,
            max_out_degree,
            max_in_degree,
            avg_depth,
            max_depth,
            approx_bytes,
        }
    }

    /// Dataset size in megabytes (approximate), mirroring Table 1's "MB" column.
    pub fn approx_megabytes(&self) -> f64 {
        self.approx_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    use super::*;

    #[test]
    fn stats_of_small_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("A");
        let c = b.add_node_with_label("B");
        let d = b.add_node_with_label("B");
        b.add_edge(a, c);
        b.add_edge(a, d);
        b.add_edge(c, d);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.distinct_labels, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        // BFS depth: both children of the root are discovered at depth 1.
        assert_eq!(s.max_depth, 1);
        assert!(s.approx_bytes > 0);
        assert!(s.approx_megabytes() > 0.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_depth, 0.0);
    }
}
