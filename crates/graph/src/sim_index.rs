//! Per-attribute vector similarity tables — the storage half of the
//! pivot-based block-and-verify access path.
//!
//! For every attribute that carries embedding values the catalog keeps one
//! [`SimTable`]: the carrier nodes (sorted by id), their vectors packed into
//! one contiguous `n × dim` f32 run (exact verification walks rows without
//! materializing attribute tuples), the selected pivot vectors, the
//! precomputed `n × k` pivot-distance table consumed by
//! [`gtpq_sim::PivotFilter`], the *sorted* first-pivot distances (two binary
//! searches turn those into the planner's candidate estimate), and the norm
//! bounds that let cosine predicates ride the L2 filter.
//!
//! Every array is an [`IntRun`], so a snapshot-loaded catalog borrows the
//! mapped `.gtpq` sections zero-copy (see [`crate::snap`]); built graphs own
//! plain vectors.  Construction is deterministic — seeded farthest-point
//! pivot selection over node-ordered rows — which keeps the mutation path's
//! rebuild-equals-replay oracle intact.
//!
//! A table indexes the *modal* dimensionality of its attribute (the `dim`
//! carried by the most nodes, ties to the smaller).  That makes the filter
//! complete for queries of that dimensionality: a vector of any other
//! dimensionality can never match them.  Queries of a non-modal
//! dimensionality fall back to the per-name posting plus exact verification.

use std::collections::BTreeMap;

use gtpq_sim::{cosine, cosine_radius, l2, norm, pivot_distances, select_pivots, PivotFilter};

use crate::attr::{AttrValue, Attribute};
use crate::graph::NodeId;
use crate::run::IntRun;
use crate::symbol::Symbol;

/// Number of pivots per table (fewer when the table has fewer entries).
/// Small enough that the per-entry block test is cheap next to a `dim ≥ 32`
/// exact distance, large enough to prune aggressively.
pub const DEFAULT_PIVOT_COUNT: usize = 8;

/// Seed for the farthest-point pivot selection; fixed so rebuilding a graph
/// over the same tuples reproduces the same table bit for bit.
const PIVOT_SEED: u64 = 0x4754_5051; // "GTPQ"

/// The outcome of one block-and-verify similarity selection.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimMatches {
    /// Matching nodes, sorted ascending by id — drops straight into the
    /// galloping posting intersections.
    pub nodes: Vec<NodeId>,
    /// Table entries the pivot tests eliminated without an exact distance.
    pub pruned: u64,
    /// Exact distance computations performed (the filter's survivors).
    pub verified: u64,
}

/// One attribute's similarity index: packed vectors plus the pivot filter
/// precomputation.  See the module docs for the layout.
#[derive(Clone, Debug, PartialEq)]
pub struct SimTable {
    /// Vector dimensionality (> 0).
    pub(crate) dim: u32,
    /// Carrier nodes, sorted by id; row `i` of `vecs`/`dists` belongs to
    /// `nodes[i]`.
    pub(crate) nodes: IntRun<NodeId>,
    /// Row-major `n × dim` packed vectors.
    pub(crate) vecs: IntRun<f32>,
    /// Row-major `k × dim` pivot vectors, `1 ≤ k ≤ DEFAULT_PIVOT_COUNT`.
    pub(crate) pivots: IntRun<f32>,
    /// Row-major `n × k` entry-to-pivot distances.
    pub(crate) dists: IntRun<f32>,
    /// The first-pivot distance of every entry, sorted ascending — the
    /// planner's selectivity statistic.
    pub(crate) sorted_d0: IntRun<f32>,
    /// Smallest vector norm in the table.
    pub(crate) norm_min: f32,
    /// Largest vector norm in the table.
    pub(crate) norm_max: f32,
}

impl SimTable {
    /// Builds the table over `(node, vector)` rows already sorted by node id,
    /// all of dimensionality `dim`.
    fn build(rows: &[(NodeId, &[f32])], dim: usize) -> Self {
        debug_assert!(dim > 0 && !rows.is_empty());
        let n = rows.len();
        let mut nodes = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * dim);
        let mut norm_min = f32::INFINITY;
        let mut norm_max = 0.0f32;
        for &(v, vec) in rows {
            nodes.push(v);
            data.extend_from_slice(vec);
            let nn = norm(vec);
            norm_min = norm_min.min(nn);
            norm_max = norm_max.max(nn);
        }
        let picked = select_pivots(&data, dim, DEFAULT_PIVOT_COUNT.min(n), PIVOT_SEED);
        let mut pivots = Vec::with_capacity(picked.len() * dim);
        for &i in &picked {
            pivots.extend_from_slice(&data[i * dim..(i + 1) * dim]);
        }
        let dists = pivot_distances(&data, dim, &pivots);
        let k = picked.len();
        let mut sorted_d0: Vec<f32> = (0..n).map(|i| dists[i * k]).collect();
        sorted_d0.sort_unstable_by(f32::total_cmp);
        Self {
            dim: dim as u32,
            nodes: nodes.into(),
            vecs: data.into(),
            pivots: pivots.into(),
            dists: dists.into(),
            sorted_d0: sorted_d0.into(),
            norm_min,
            norm_max,
        }
    }

    /// Reassembles a table from (possibly mapped) runs, validating every
    /// cross-array size relation; `None` when they do not cohere (a damaged
    /// snapshot must fail typed, not panic).
    // One parameter per serialized array — a builder would only obscure
    // which section feeds which field.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        dim: u32,
        nodes: IntRun<NodeId>,
        vecs: IntRun<f32>,
        pivots: IntRun<f32>,
        dists: IntRun<f32>,
        sorted_d0: IntRun<f32>,
        norm_min: f32,
        norm_max: f32,
    ) -> Option<Self> {
        let d = dim as usize;
        if d == 0 {
            return None;
        }
        let n = nodes.len();
        if vecs.len() != n.checked_mul(d)? || !pivots.len().is_multiple_of(d) {
            return None;
        }
        let k = pivots.len() / d;
        if k == 0 || k > DEFAULT_PIVOT_COUNT || dists.len() != n.checked_mul(k)? {
            return None;
        }
        if sorted_d0.len() != n {
            return None;
        }
        if !nodes.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(Self {
            dim,
            nodes,
            vecs,
            pivots,
            dists,
            sorted_d0,
            norm_min,
            norm_max,
        })
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Number of indexed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table indexes no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of pivots.
    #[inline]
    pub fn pivot_count(&self) -> usize {
        self.pivots.len() / self.dim()
    }

    /// The indexed nodes, sorted by id.
    #[inline]
    pub fn indexed_nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The packed vector of entry `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[f32] {
        let d = self.dim();
        &self.vecs[i * d..(i + 1) * d]
    }

    /// The packed vector of node `v`, when the table indexes it.
    pub fn vector_of(&self, v: NodeId) -> Option<&[f32]> {
        let i = self.nodes.binary_search(&v).ok()?;
        Some(self.vector(i))
    }

    /// The `(min, max)` vector norms across the table.
    pub fn norm_bounds(&self) -> (f32, f32) {
        (self.norm_min, self.norm_max)
    }

    fn filter(&self) -> PivotFilter<'_> {
        PivotFilter::new(self.dim(), &self.pivots, &self.dists)
    }

    /// Nodes whose vector lies within L2 distance `t` of `query` (strictly
    /// within unless `inclusive`): pivot block, then exact verification of
    /// the survivors.
    ///
    /// # Panics
    /// Panics when `query.len() != dim`.
    pub fn within_l2(&self, query: &[f32], t: f32, inclusive: bool) -> SimMatches {
        let blocked = self.filter().candidates_within(query, t.max(0.0));
        let mut out = SimMatches {
            pruned: blocked.pruned,
            ..SimMatches::default()
        };
        for &row in &blocked.candidates {
            let i = row as usize;
            out.verified += 1;
            let d = l2(self.vector(i), query);
            if d < t || (inclusive && d == t) {
                out.nodes.push(self.nodes[i]);
            }
        }
        out
    }

    /// Nodes whose vector has cosine similarity above `t` with `query`
    /// (strictly above unless `inclusive`): the cosine bound converts to a
    /// conservative L2 radius via the table's norm bounds, the pivot filter
    /// blocks on it, and the survivors verify with exact cosine.
    ///
    /// # Panics
    /// Panics when `query.len() != dim`.
    pub fn above_cosine(&self, query: &[f32], t: f32, inclusive: bool) -> SimMatches {
        let radius = cosine_radius(norm(query), t, self.norm_min, self.norm_max);
        let blocked = self.filter().candidates_within(query, radius);
        let mut out = SimMatches {
            pruned: blocked.pruned,
            ..SimMatches::default()
        };
        for &row in &blocked.candidates {
            let i = row as usize;
            out.verified += 1;
            let c = cosine(self.vector(i), query);
            if c > t || (inclusive && c == t) {
                out.nodes.push(self.nodes[i]);
            }
        }
        out
    }

    /// Upper bound on the entries the pivot filter would pass for an L2
    /// radius — two binary searches over the sorted first-pivot distances, no
    /// materialization.  Always ≥ the filter's candidate count, which itself
    /// is ≥ the exact match count.
    pub fn estimate_within_l2(&self, query: &[f32], radius: f32) -> usize {
        if !radius.is_finite() || radius < 0.0 {
            return 0;
        }
        let d0 = l2(query, &self.pivots[..self.dim()]);
        let start = self.sorted_d0.partition_point(|&d| d < d0 - radius);
        let end = self.sorted_d0.partition_point(|&d| d <= d0 + radius);
        end - start
    }

    /// Upper bound on the entries the pivot filter would pass for a cosine
    /// threshold (the same statistic through [`cosine_radius`]).
    pub fn estimate_above_cosine(&self, query: &[f32], t: f32) -> usize {
        let radius = cosine_radius(norm(query), t, self.norm_min, self.norm_max);
        self.estimate_within_l2(query, radius)
    }

    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.nodes
            .backing_file_id()
            .or_else(|| self.vecs.backing_file_id())
            .or_else(|| self.pivots.backing_file_id())
            .or_else(|| self.dists.backing_file_id())
            .or_else(|| self.sorted_d0.backing_file_id())
    }
}

/// Every [`SimTable`] of a graph, keyed by attribute name.  Ordered so the
/// snapshot writer emits tables deterministically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimCatalog {
    tables: BTreeMap<Symbol, SimTable>,
}

impl SimCatalog {
    /// Builds a table for every attribute carrying non-empty vector values,
    /// over the modal dimensionality of that attribute (ties to the smaller
    /// dim).  Deterministic in the tuples alone.
    pub fn build(attrs: &[Vec<Attribute>]) -> Self {
        let mut groups: BTreeMap<Symbol, Vec<(NodeId, &[f32])>> = BTreeMap::new();
        for (i, tuple) in attrs.iter().enumerate() {
            for attr in tuple {
                if let AttrValue::Vec(v) = &attr.value {
                    if !v.is_empty() {
                        groups
                            .entry(attr.name)
                            .or_default()
                            .push((NodeId(i as u32), v.as_slice()));
                    }
                }
            }
        }
        let mut tables = BTreeMap::new();
        for (sym, mut rows) in groups {
            let mut dim_counts: BTreeMap<usize, usize> = BTreeMap::new();
            for &(_, v) in &rows {
                *dim_counts.entry(v.len()).or_default() += 1;
            }
            let modal = dim_counts
                .iter()
                .max_by_key(|&(&dim, &count)| (count, std::cmp::Reverse(dim)))
                .map(|(&dim, _)| dim)
                .expect("non-empty group");
            rows.retain(|&(_, v)| v.len() == modal);
            // Node order within a group is already ascending (tuples iterate
            // by node id) — the posting comes out sorted for free.
            tables.insert(sym, SimTable::build(&rows, modal));
        }
        Self { tables }
    }

    /// Assembles a catalog from loader-provided tables.
    pub(crate) fn from_tables(tables: BTreeMap<Symbol, SimTable>) -> Self {
        Self { tables }
    }

    /// The table for attribute `attr`, when one exists.
    pub fn get(&self, attr: Symbol) -> Option<&SimTable> {
        self.tables.get(&attr)
    }

    /// Iterates `(attr, table)` in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &SimTable)> + '_ {
        self.tables.iter().map(|(&sym, t)| (sym, t))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no attribute carries vectors.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.tables.values().find_map(SimTable::backing_file_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;

    fn emb(seed: u64, dim: usize) -> Vec<f32> {
        // Small deterministic pseudo-embedding.
        (0..dim)
            .map(|i| {
                let x = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i as u64)
                    .wrapping_mul(1442695040888963407);
                ((x >> 40) as f32 / (1u64 << 23) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn sample(n: usize, dim: usize) -> (Vec<Vec<Attribute>>, Symbol) {
        let sym = Symbol(0);
        let attrs = (0..n)
            .map(|i| vec![Attribute::new(sym, AttrValue::Vec(emb(i as u64, dim)))])
            .collect();
        (attrs, sym)
    }

    #[test]
    fn catalog_build_is_deterministic_and_complete() {
        let (attrs, sym) = sample(40, 8);
        let a = SimCatalog::build(&attrs);
        let b = SimCatalog::build(&attrs);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        let t = a.get(sym).unwrap();
        assert_eq!(t.len(), 40);
        assert_eq!(t.dim(), 8);
        assert_eq!(t.pivot_count(), DEFAULT_PIVOT_COUNT);
        assert!(t.indexed_nodes().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t.vector_of(NodeId(3)), Some(&emb(3, 8)[..]));
        assert_eq!(t.vector_of(NodeId(99)), None);
        let (lo, hi) = t.norm_bounds();
        assert!(0.0 <= lo && lo <= hi);
        assert_eq!(SimCatalog::build(&[]).len(), 0);
    }

    #[test]
    fn modal_dimensionality_wins_with_ties_to_smaller() {
        let sym = Symbol(0);
        let mut attrs = vec![
            vec![Attribute::new(sym, AttrValue::Vec(vec![1.0, 2.0]))],
            vec![Attribute::new(sym, AttrValue::Vec(vec![1.0, 2.0, 3.0]))],
            vec![Attribute::new(sym, AttrValue::Vec(vec![0.0, 0.0]))],
            vec![Attribute::new(sym, AttrValue::Vec(Vec::new()))], // ignored
        ];
        let cat = SimCatalog::build(&attrs);
        assert_eq!(cat.get(sym).unwrap().dim(), 2);
        assert_eq!(cat.get(sym).unwrap().len(), 2);
        // Exact tie: 1 × dim-2 vs 1 × dim-3 → the smaller dim indexes.
        attrs.remove(2);
        assert_eq!(SimCatalog::build(&attrs).get(sym).unwrap().dim(), 2);
    }

    #[test]
    fn within_l2_agrees_with_brute_force() {
        let (attrs, sym) = sample(60, 6);
        let cat = SimCatalog::build(&attrs);
        let t = cat.get(sym).unwrap();
        let query = emb(1000, 6);
        for radius in [0.2f32, 0.8, 1.5, 3.0] {
            for inclusive in [false, true] {
                let got = t.within_l2(&query, radius, inclusive);
                let want: Vec<NodeId> = (0..60)
                    .filter(|&i| {
                        let d = l2(&emb(i as u64, 6), &query);
                        d < radius || (inclusive && d == radius)
                    })
                    .map(|i| NodeId(i as u32))
                    .collect();
                assert_eq!(got.nodes, want, "radius {radius} inclusive {inclusive}");
                assert_eq!(got.pruned + got.verified, 60);
                // The pre-materialization estimate upper-bounds the filter.
                assert!(t.estimate_within_l2(&query, radius) as u64 >= got.verified);
            }
        }
    }

    #[test]
    fn above_cosine_agrees_with_brute_force() {
        let (attrs, sym) = sample(60, 6);
        let cat = SimCatalog::build(&attrs);
        let t = cat.get(sym).unwrap();
        let query = emb(2000, 6);
        for threshold in [-0.5f32, 0.0, 0.4, 0.9] {
            for inclusive in [false, true] {
                let got = t.above_cosine(&query, threshold, inclusive);
                let want: Vec<NodeId> = (0..60)
                    .filter(|&i| {
                        let c = cosine(&emb(i as u64, 6), &query);
                        c > threshold || (inclusive && c == threshold)
                    })
                    .map(|i| NodeId(i as u32))
                    .collect();
                assert_eq!(got.nodes, want, "t {threshold} inclusive {inclusive}");
                assert!(t.estimate_above_cosine(&query, threshold) as u64 >= got.verified);
            }
        }
    }

    #[test]
    fn zero_norm_query_still_answers() {
        let (attrs, sym) = sample(10, 4);
        let cat = SimCatalog::build(&attrs);
        let t = cat.get(sym).unwrap();
        let zero = vec![0.0f32; 4];
        // cosine(x, 0) is defined as 0 — nothing exceeds 0.5.
        assert!(t.above_cosine(&zero, 0.5, false).nodes.is_empty());
        // All entries match "similarity > -1" through the verify path.
        assert_eq!(t.above_cosine(&zero, -1.0, false).nodes.len(), 10);
    }

    #[test]
    fn from_parts_rejects_incoherent_runs() {
        let (attrs, sym) = sample(5, 3);
        let cat = SimCatalog::build(&attrs);
        let t = cat.get(sym).unwrap().clone();
        let ok = SimTable::from_parts(
            t.dim,
            t.nodes.clone(),
            t.vecs.clone(),
            t.pivots.clone(),
            t.dists.clone(),
            t.sorted_d0.clone(),
            t.norm_min,
            t.norm_max,
        );
        assert_eq!(ok.as_ref(), Some(&t));
        let reject = |dim, nodes: &IntRun<NodeId>, vecs: &IntRun<f32>, dists: &IntRun<f32>| {
            SimTable::from_parts(
                dim,
                nodes.clone(),
                vecs.clone(),
                t.pivots.clone(),
                dists.clone(),
                t.sorted_d0.clone(),
                t.norm_min,
                t.norm_max,
            )
            .is_none()
        };
        assert!(reject(0, &t.nodes, &t.vecs, &t.dists)); // zero dim
        assert!(reject(4, &t.nodes, &t.vecs, &t.dists)); // vecs len mismatch
        let short: IntRun<f32> = t.vecs[..6].to_vec().into();
        assert!(reject(3, &t.nodes, &short, &t.dists)); // truncated vecs
        let bad_dists: IntRun<f32> = vec![0.0f32].into();
        assert!(reject(3, &t.nodes, &t.vecs, &bad_dists)); // dists mismatch
        let unsorted: IntRun<NodeId> =
            vec![NodeId(2), NodeId(1), NodeId(0), NodeId(3), NodeId(4)].into();
        assert!(reject(3, &unsorted, &t.vecs, &t.dists)); // unsorted nodes
    }
}
