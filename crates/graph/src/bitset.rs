//! Dense bitsets over [`NodeId`]s and sorted-slice set
//! operations — the per-query scratch structures of the pruning hot path.
//!
//! [`NodeBitSet`] replaces the per-child `HashSet<NodeId>` membership sets of
//! the seed: one bit per node, O(1) insert/contains with no hashing, and an
//! O(touched) [`clear`](NodeBitSet::clear) so one set (or a small pool) can be
//! reused across every step of a query without re-zeroing the whole universe.
//!
//! [`intersect_sorted`] and [`intersect_many`] intersect the sorted,
//! de-duplicated posting lists of the attribute inverted index with a
//! galloping (doubling) search, which is near-linear in the smallest list —
//! the shape worst-case-optimal join layouts exploit.

use crate::graph::NodeId;

/// A fixed-universe bitset over dense node ids with cheap clearing.
///
/// `clear` only zeroes the words that were actually touched since the last
/// clear, so a scratch set reused across many small candidate sets costs
/// O(Σ|set|), not O(queries · |V| / 64).
#[derive(Clone, Debug, Default)]
pub struct NodeBitSet {
    words: Vec<u64>,
    /// Indices of words with at least one bit set (may contain duplicates).
    touched: Vec<u32>,
}

impl NodeBitSet {
    /// Creates an empty set over a universe of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            words: vec![0; n.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    /// Grows the universe to at least `n` nodes.
    pub fn grow(&mut self, n: usize) {
        let need = n.div_ceil(64);
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
    }

    /// Inserts `v`, returning whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let word = v.index() / 64;
        let bit = 1u64 << (v.index() % 64);
        let w = &mut self.words[word];
        if *w == 0 {
            self.touched.push(word as u32);
        }
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Whether `v` is in the set.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.words[v.index() / 64] & (1u64 << (v.index() % 64)) != 0
    }

    /// Inserts every node of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[NodeId]) {
        for &v in slice {
            self.insert(v);
        }
    }

    /// Removes all elements in O(touched words).
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Galloping search: the index of the first element of `slice` that is
/// `>= needle`, starting the probe at `hint`.
#[inline]
fn gallop(slice: &[NodeId], needle: NodeId, hint: usize) -> usize {
    let mut lo = hint;
    if lo >= slice.len() || slice[lo] >= needle {
        return lo;
    }
    // Double the step until we overshoot, then binary-search the bracket.
    let mut step = 1;
    let mut hi = lo + 1;
    while hi < slice.len() && slice[hi] < needle {
        lo = hi;
        step *= 2;
        hi = (hi + step).min(slice.len());
    }
    lo + slice[lo..hi.min(slice.len())].partition_point(|&x| x < needle)
}

/// Intersects two sorted, de-duplicated slices with galloping search,
/// appending the result to `out`.
pub fn intersect_sorted_into(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    // Gallop through the longer list, driven by the shorter one.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut cursor = 0usize;
    for &v in small {
        cursor = gallop(large, v, cursor);
        if cursor >= large.len() {
            break;
        }
        if large[cursor] == v {
            out.push(v);
            cursor += 1;
        }
    }
}

/// Intersects two sorted, de-duplicated slices, returning the sorted result.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_sorted_into(a, b, &mut out);
    out
}

/// Intersects any number of sorted, de-duplicated slices, smallest first.
///
/// Returns all nodes when `lists` is empty (the empty conjunction).
pub fn intersect_many(lists: &[&[NodeId]], universe: usize) -> Vec<NodeId> {
    match lists {
        [] => (0..universe as u32).map(NodeId).collect(),
        [only] => only.to_vec(),
        _ => {
            let mut order: Vec<&[NodeId]> = lists.to_vec();
            order.sort_unstable_by_key(|l| l.len());
            let mut acc = intersect_sorted(order[0], order[1]);
            let mut scratch = Vec::new();
            for rest in &order[2..] {
                if acc.is_empty() {
                    break;
                }
                scratch.clear();
                intersect_sorted_into(&acc, rest, &mut scratch);
                std::mem::swap(&mut acc, &mut scratch);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[u32]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn insert_contains_clear() {
        let mut s = NodeBitSet::new(200);
        assert!(s.is_empty());
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)));
        s.insert(NodeId(130));
        assert!(s.contains(NodeId(3)));
        assert!(s.contains(NodeId(130)));
        assert!(!s.contains(NodeId(4)));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(3)));
        // Reuse after clear works.
        s.extend_from_slice(&ids(&[1, 2, 199]));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn grow_extends_the_universe() {
        let mut s = NodeBitSet::new(10);
        s.grow(500);
        s.insert(NodeId(499));
        assert!(s.contains(NodeId(499)));
    }

    #[test]
    fn galloping_intersection_matches_naive() {
        let a = ids(&[1, 4, 5, 9, 100, 250, 251]);
        let b = ids(&[0, 4, 9, 10, 250, 400]);
        assert_eq!(intersect_sorted(&a, &b), ids(&[4, 9, 250]));
        assert_eq!(intersect_sorted(&b, &a), ids(&[4, 9, 250]));
        assert_eq!(intersect_sorted(&a, &[]), ids(&[]));
        assert_eq!(intersect_sorted(&[], &b), ids(&[]));
    }

    #[test]
    fn intersect_many_smallest_first() {
        let a = ids(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = ids(&[2, 4, 6, 8]);
        let c = ids(&[4, 8, 12]);
        assert_eq!(intersect_many(&[&a, &b, &c], 20), ids(&[4, 8]));
        assert_eq!(intersect_many(&[], 3), ids(&[0, 1, 2]));
        assert_eq!(intersect_many(&[&b], 20), b);
    }

    #[test]
    fn gallop_skips_long_runs() {
        let large: Vec<NodeId> = (0..10_000).map(NodeId).collect();
        let small = ids(&[0, 9_999]);
        assert_eq!(intersect_sorted(&small, &large), small);
    }
}
