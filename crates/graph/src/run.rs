//! Owned-or-mapped integer run storage.
//!
//! Every large flat array in the storage layer — CSR offsets and targets,
//! posting lists, condensation arrays — is an [`IntRun`]: either an owned
//! `Vec<T>` (graphs built in memory) or a borrowed window into a shared
//! snapshot buffer (graphs loaded from a `.gtpq` file, see [`crate::snap`]).
//! `IntRun` derefs to `&[T]`, so the bitset/galloping intersection paths and
//! the reachability backends' slice borrows consume both representations
//! unchanged; nothing outside this module and the snapshot loader knows which
//! one it is holding.
//!
//! The shared buffer (`SnapshotBytes`, crate-internal) is either an
//! `mmap`'d read-only file
//! (zero-copy, pages fault in on demand) or a 64-byte-aligned heap buffer (the
//! portable fallback, also used when full checksum verification is requested).
//! Mapped runs reinterpret the little-endian file bytes in place, so the
//! zero-copy path is only taken on little-endian targets; big-endian hosts
//! decode into owned vectors instead.

use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::condensation::CompId;
use crate::graph::NodeId;
use crate::symbol::Symbol;

/// Marker for plain-old-data element types that may live inside a mapped
/// [`IntRun`].
///
/// # Safety
///
/// Implementors must be primitive integers or `#[repr(transparent)]` wrappers
/// around one: no padding, no niches, every bit pattern a valid value, and an
/// alignment of at most 8 (snapshot sections are 64-byte aligned and the heap
/// fallback buffer guarantees 8-byte alignment).
pub unsafe trait RunElem: Copy + Send + Sync + 'static {}

// SAFETY: primitive integers satisfy every requirement above.
unsafe impl RunElem for u8 {}
// SAFETY: as above.
unsafe impl RunElem for u32 {}
// SAFETY: as above.
unsafe impl RunElem for u64 {}
// SAFETY: as above.
unsafe impl RunElem for i64 {}
// SAFETY: `f32` is 4 bytes with no padding or niches; every bit pattern is a
// valid (possibly NaN) float, and its alignment is 4.
unsafe impl RunElem for f32 {}
// SAFETY: `NodeId` is `#[repr(transparent)]` over `u32`.
unsafe impl RunElem for NodeId {}
// SAFETY: `Symbol` is `#[repr(transparent)]` over `u32`.
unsafe impl RunElem for Symbol {}
// SAFETY: `CompId` is `#[repr(transparent)]` over `u32`.
unsafe impl RunElem for CompId {}

/// A flat run of integers, either owned or borrowed from a snapshot buffer.
///
/// Cloning an owned run copies the data (exactly as the former `Vec` fields
/// did); cloning a mapped run bumps one refcount.  Equality, hashing and
/// `Debug` all go through the slice view, so an owned run and a mapped run
/// over the same values compare equal.
pub struct IntRun<T: RunElem> {
    repr: Repr<T>,
}

enum Repr<T: RunElem> {
    Owned(Vec<T>),
    Mapped {
        bytes: Arc<SnapshotBytes>,
        /// Byte offset into `bytes`; always a multiple of `align_of::<T>()`.
        offset: usize,
        /// Element count.
        len: usize,
        _marker: PhantomData<T>,
    },
}

impl<T: RunElem> IntRun<T> {
    /// An empty owned run.
    pub const fn new() -> Self {
        Self {
            repr: Repr::Owned(Vec::new()),
        }
    }

    /// Wraps an owned vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        Self {
            repr: Repr::Owned(v),
        }
    }

    /// Borrows `len` elements starting at byte `offset` of `bytes`.
    ///
    /// Returns `None` when the window is out of bounds, misaligned for `T`,
    /// or the host is big-endian (snapshot bytes are little-endian and cannot
    /// be reinterpreted in place there).
    pub(crate) fn from_bytes(
        bytes: &Arc<SnapshotBytes>,
        offset: usize,
        len: usize,
    ) -> Option<Self> {
        if !cfg!(target_endian = "little") {
            return None;
        }
        let size = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(size)?;
        let end = offset.checked_add(byte_len)?;
        if end > bytes.as_slice().len() {
            return None;
        }
        let base = bytes.as_slice().as_ptr() as usize;
        if !(base + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Self {
            repr: Repr::Mapped {
                bytes: Arc::clone(bytes),
                offset,
                len,
                _marker: PhantomData,
            },
        })
    }

    /// The run as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v.as_slice(),
            Repr::Mapped {
                bytes, offset, len, ..
            } => {
                // SAFETY: the constructor checked bounds and alignment, `T`
                // is plain-old-data (`RunElem`), and the buffer lives for as
                // long as the `Arc` we hold.
                unsafe {
                    std::slice::from_raw_parts(
                        bytes.as_slice().as_ptr().add(*offset) as *const T,
                        *len,
                    )
                }
            }
        }
    }

    /// Whether the run borrows a snapshot buffer (as opposed to owning a
    /// heap vector).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }

    /// Copies the run into a fresh owned vector — the copy-on-write step
    /// every mutation path takes before building a successor epoch, so a
    /// commit on a mapped graph never writes through to the file.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The `(device, inode)` of the file a mapped run borrows, when known.
    /// `None` for owned runs and heap-fallback loads.
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        match &self.repr {
            Repr::Owned(_) => None,
            Repr::Mapped { bytes, .. } => bytes.mmap_file_id(),
        }
    }

    /// A sub-run over `range` (element indices).  Mapped runs share the
    /// buffer; owned runs copy the window.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        match &self.repr {
            Repr::Owned(v) => Self::from_vec(v[range].to_vec()),
            Repr::Mapped { bytes, offset, .. } => Self {
                repr: Repr::Mapped {
                    bytes: Arc::clone(bytes),
                    offset: offset + range.start * std::mem::size_of::<T>(),
                    len: range.end - range.start,
                    _marker: PhantomData,
                },
            },
        }
    }
}

impl<T: RunElem> std::ops::Deref for IntRun<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: RunElem> Default for IntRun<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: RunElem> From<Vec<T>> for IntRun<T> {
    fn from(v: Vec<T>) -> Self {
        Self::from_vec(v)
    }
}

impl<T: RunElem> Clone for IntRun<T> {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Owned(v) => Self::from_vec(v.clone()),
            Repr::Mapped {
                bytes, offset, len, ..
            } => Self {
                repr: Repr::Mapped {
                    bytes: Arc::clone(bytes),
                    offset: *offset,
                    len: *len,
                    _marker: PhantomData,
                },
            },
        }
    }
}

impl<T: RunElem + fmt::Debug> fmt::Debug for IntRun<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: RunElem + PartialEq> PartialEq for IntRun<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: RunElem + Eq> Eq for IntRun<T> {}

/// The shared buffer a mapped [`IntRun`] borrows from: either an `mmap`'d
/// read-only file or an aligned heap copy of one.
pub(crate) enum SnapshotBytes {
    /// Zero-copy file mapping (unix, 64-bit).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap(MmapFile),
    /// Portable fallback: the whole file read into an aligned heap buffer.
    Heap(AlignedBytes),
}

impl SnapshotBytes {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotBytes::Mmap(m) => m.as_slice(),
            SnapshotBytes::Heap(h) => h.as_slice(),
        }
    }

    /// Whether this buffer is a live file mapping.
    pub(crate) fn is_mmap(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotBytes::Mmap(_) => true,
            SnapshotBytes::Heap(_) => false,
        }
    }

    /// The `(device, inode)` identity of the file backing a live mapping;
    /// `None` for heap buffers (nothing on disk is borrowed).  Used by the
    /// snapshot writer to refuse saving onto the very file it would be
    /// streaming the mapped runs out of.
    pub(crate) fn mmap_file_id(&self) -> Option<(u64, u64)> {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotBytes::Mmap(m) => m.file_id,
            SnapshotBytes::Heap(_) => None,
        }
    }
}

/// A heap buffer whose base pointer is 8-byte aligned (backed by `u64`
/// storage), so snapshot sections keep the same alignment guarantees as the
/// page-aligned mmap path.
pub(crate) struct AlignedBytes {
    storage: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `data` into a fresh aligned buffer.
    pub(crate) fn copy_from(data: &[u8]) -> Self {
        let words = data.len().div_ceil(8);
        let mut storage = vec![0u64; words];
        // SAFETY: the destination is `words * 8 >= data.len()` bytes of
        // initialized `u64` storage; `u8` writes cannot violate alignment.
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                storage.as_mut_ptr() as *mut u8,
                data.len(),
            );
        }
        Self {
            storage,
            len: data.len(),
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: `storage` holds at least `len` initialized bytes and `u64`
        // storage is valid to view as bytes.
        unsafe { std::slice::from_raw_parts(self.storage.as_ptr() as *const u8, self.len) }
    }
}

/// A read-only private file mapping, unmapped on drop.
///
/// The wrapper declares the two libc entry points itself (the build
/// environment vendors no `libc` crate); it is only compiled on 64-bit unix
/// where `off_t` is `i64` and the process already links the C runtime.
#[cfg(all(unix, target_pointer_width = "64"))]
pub(crate) struct MmapFile {
    ptr: std::ptr::NonNull<std::ffi::c_void>,
    len: usize,
    /// `(device, inode)` of the mapped file, when the fstat at map time
    /// succeeded — identifies the on-disk object independently of its path.
    file_id: Option<(u64, u64)>,
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::{c_int, c_void};

    pub(super) const PROT_READ: c_int = 1;
    pub(super) const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl MmapFile {
    /// Maps `len` bytes of `file` read-only.  Fails (returns `None`) when the
    /// kernel refuses the mapping; zero-length files are never mapped.
    pub(crate) fn map(file: &std::fs::File, len: usize) -> Option<Self> {
        use std::os::unix::fs::MetadataExt;
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        let file_id = file.metadata().ok().map(|m| (m.dev(), m.ino()));
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we hold
        // open; the kernel validates the fd and length and returns MAP_FAILED
        // on error, which we check for.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return None;
        }
        Some(Self {
            ptr: std::ptr::NonNull::new(ptr)?,
            len,
            file_id,
        })
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        // SAFETY: the mapping covers `len` readable bytes and stays valid
        // until `munmap` in `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr() as *const u8, self.len) }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for MmapFile {
    fn drop(&mut self) {
        // SAFETY: exactly the pointer/length pair returned by mmap.
        unsafe {
            sys::munmap(self.ptr.as_ptr(), self.len);
        }
    }
}

// SAFETY: the mapping is read-only (PROT_READ) and never remapped, so shared
// references across threads are sound.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for MmapFile {}
// SAFETY: as above.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for MmapFile {}

/// IEEE CRC-32 (the zlib polynomial), table-driven.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_run_behaves_like_a_vec() {
        let run: IntRun<u32> = vec![3, 1, 4].into();
        assert_eq!(run.as_slice(), &[3, 1, 4]);
        assert_eq!(run.len(), 3);
        assert!(!run.is_mapped());
        assert_eq!(run.to_vec(), vec![3, 1, 4]);
        assert_eq!(run.slice(1..3).as_slice(), &[1, 4]);
        let clone = run.clone();
        assert_eq!(run, clone);
    }

    #[test]
    fn mapped_run_reads_little_endian_bytes_in_place() {
        let mut bytes = Vec::new();
        for v in [7u32, 11, u32::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let shared = Arc::new(SnapshotBytes::Heap(AlignedBytes::copy_from(&bytes)));
        let run = IntRun::<u32>::from_bytes(&shared, 0, 3).expect("aligned in-bounds window");
        assert!(run.is_mapped());
        assert_eq!(run.as_slice(), &[7, 11, u32::MAX]);
        let owned: IntRun<u32> = vec![7, 11, u32::MAX].into();
        assert_eq!(run, owned);
        // Sub-slicing a mapped run shares the buffer.
        let sub = run.slice(1..3);
        assert!(sub.is_mapped());
        assert_eq!(sub.as_slice(), &[11, u32::MAX]);
    }

    #[test]
    fn mapped_run_rejects_bad_windows() {
        let shared = Arc::new(SnapshotBytes::Heap(AlignedBytes::copy_from(&[0u8; 16])));
        assert!(IntRun::<u32>::from_bytes(&shared, 0, 5).is_none()); // out of bounds
        assert!(IntRun::<u32>::from_bytes(&shared, 2, 1).is_none()); // misaligned
        assert!(IntRun::<i64>::from_bytes(&shared, 12, 1).is_none()); // misaligned for i64
        assert!(IntRun::<u32>::from_bytes(&shared, usize::MAX, 2).is_none()); // overflow
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    #[test]
    fn mmap_maps_a_real_file() {
        let dir = std::env::temp_dir().join("gtpq-run-mmap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = MmapFile::map(&file, 5).expect("mmap");
        assert_eq!(map.as_slice(), &[1, 2, 3, 4, 5]);
        let _ = std::fs::remove_file(&path);
    }
}
