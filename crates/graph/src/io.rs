//! Plain-text serialization of data graphs.
//!
//! The format is line oriented and meant for examples, debugging and moving
//! small fixtures around — not for bulk storage:
//!
//! ```text
//! # comment
//! node 0 label=person name=Alice age:int=42
//! node 1 label=inproceedings
//! edge 1 0
//! ```
//!
//! Attribute values are strings by default; an `:int` suffix on the name
//! parses the value as an integer.  The format is whitespace separated, so
//! string values must not contain spaces.

use std::fmt::Write as _;

use crate::attr::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};

/// Errors produced while parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not start with `node`, `edge` or `#`.
    UnknownDirective { line: usize, found: String },
    /// A node/edge id could not be parsed or referenced an undeclared node.
    BadId { line: usize, token: String },
    /// An attribute was not of the form `name=value`.
    BadAttribute { line: usize, token: String },
    /// Node ids must be declared densely, in order, starting from zero.
    NonDenseNode {
        line: usize,
        expected: u32,
        found: u32,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownDirective { line, found } => {
                write!(f, "line {line}: unknown directive `{found}`")
            }
            ParseError::BadId { line, token } => write!(f, "line {line}: bad id `{token}`"),
            ParseError::BadAttribute { line, token } => {
                write!(f, "line {line}: bad attribute `{token}`")
            }
            ParseError::NonDenseNode {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: node ids must be dense, expected {expected} found {found}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes `g` to the text format.
pub fn to_text(g: &DataGraph) -> String {
    let mut out = String::new();
    for v in g.nodes() {
        let _ = write!(out, "node {}", v.0);
        for attr in g.attributes(v) {
            let name = g.resolve(attr.name);
            match &attr.value {
                AttrValue::Int(i) => {
                    let _ = write!(out, " {name}:int={i}");
                }
                AttrValue::Str(s) => {
                    let _ = write!(out, " {name}={s}");
                }
            }
        }
        out.push('\n');
    }
    for u in g.nodes() {
        for &v in g.children(u) {
            let _ = writeln!(out, "edge {} {}", u.0, v.0);
        }
    }
    out
}

/// Parses the text format back into a [`DataGraph`].
pub fn from_text(text: &str) -> Result<DataGraph, ParseError> {
    let mut builder = GraphBuilder::new();
    let mut edges: Vec<(u32, u32, usize)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("node") => {
                let id_tok = parts.next().unwrap_or("");
                let id: u32 = id_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: id_tok.to_owned(),
                })?;
                let expected = builder.node_count() as u32;
                if id != expected {
                    return Err(ParseError::NonDenseNode {
                        line,
                        expected,
                        found: id,
                    });
                }
                let v = builder.add_node();
                for tok in parts {
                    let (name, value) = tok.split_once('=').ok_or(ParseError::BadAttribute {
                        line,
                        token: tok.to_owned(),
                    })?;
                    if let Some(stripped) = name.strip_suffix(":int") {
                        let i: i64 = value.parse().map_err(|_| ParseError::BadAttribute {
                            line,
                            token: tok.to_owned(),
                        })?;
                        builder.set_attr(v, stripped, AttrValue::Int(i));
                    } else {
                        builder.set_attr(v, name, AttrValue::str(value));
                    }
                }
            }
            Some("edge") => {
                let u_tok = parts.next().unwrap_or("");
                let v_tok = parts.next().unwrap_or("");
                let u: u32 = u_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: u_tok.to_owned(),
                })?;
                let v: u32 = v_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: v_tok.to_owned(),
                })?;
                edges.push((u, v, line));
            }
            Some(other) => {
                return Err(ParseError::UnknownDirective {
                    line,
                    found: other.to_owned(),
                })
            }
            None => {}
        }
    }
    let n = builder.node_count() as u32;
    for (u, v, line) in edges {
        if u >= n || v >= n {
            return Err(ParseError::BadId {
                line,
                token: format!("{u}->{v}"),
            });
        }
        builder.add_edge(NodeId(u), NodeId(v));
    }
    Ok(builder.build())
}

/// Serializes `g` to Graphviz DOT, labelling nodes with their `label` attribute.
pub fn to_dot(g: &DataGraph) -> String {
    let mut out = String::from("digraph data {\n");
    for v in g.nodes() {
        let label = g
            .attribute_value(v, crate::LABEL_ATTR)
            .map(|l| l.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "  n{} [label=\"{} {}\"];", v.0, v, label);
    }
    for u in g.nodes() {
        for &v in g.children(u) {
            let _ = writeln!(out, "  n{} -> n{};", u.0, v.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::LABEL_ATTR;

    use super::*;

    #[test]
    fn round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("person");
        b.set_attr(a, "age", AttrValue::int(42));
        let c = b.add_node_with_label("paper");
        b.add_edge(a, c);
        let g = b.build();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        assert_eq!(g2.attribute_value(a, "age"), Some(&AttrValue::int(42)));
        assert_eq!(
            g2.attribute_value(NodeId(1), LABEL_ATTR),
            Some(&AttrValue::str("paper"))
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = from_text("# hello\n\nnode 0 label=a\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn bad_directive_is_reported() {
        let err = from_text("vertex 0\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownDirective { line: 1, .. }));
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn non_dense_node_ids_are_rejected() {
        let err = from_text("node 1 label=a\n").unwrap_err();
        assert!(matches!(err, ParseError::NonDenseNode { .. }));
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let err = from_text("node 0\nedge 0 3\n").unwrap_err();
        assert!(matches!(err, ParseError::BadId { line: 2, .. }));
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("x");
        let c = b.add_node_with_label("y");
        b.add_edge(a, c);
        let dot = to_dot(&b.build());
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
    }
}
