//! Plain-text serialization of data graphs.
//!
//! The format is line oriented and meant for examples, debugging and moving
//! small fixtures around — not for bulk storage:
//!
//! ```text
//! # comment
//! node 0 label=person name=Alice age:int=42
//! node 1 label=inproceedings
//! edge 1 0
//! ```
//!
//! Attribute values are strings by default; an `:int` suffix on the name
//! parses the value as an integer, and a `:vec` suffix parses it as a
//! comma-separated f32 embedding (`emb:vec=0.5,1,-2.25`).  The format is
//! whitespace separated, so string values must not contain spaces.
//!
//! Live graphs serialize through [`handle_to_text`] / [`handle_from_text`],
//! which extend the format with the mutation state a [`GraphHandle`] carries
//! beyond its build-time image: an `epoch N` directive recording the
//! committed generation, and `pending …` directives recording the staged,
//! not-yet-compacted delta overlay:
//!
//! ```text
//! epoch 3
//! node 0 label=person
//! edge 0 0
//! pending node
//! pending attr 1 label=person
//! pending attr 0 age:int=43
//! pending edge 0 1
//! ```

use std::fmt::Write as _;

use crate::attr::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};
use crate::mutate::{GraphHandle, MutationConfig, PendingOp};

/// Errors produced while parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line did not start with `node`, `edge` or `#`.
    UnknownDirective { line: usize, found: String },
    /// A node/edge id could not be parsed or referenced an undeclared node.
    BadId { line: usize, token: String },
    /// An attribute was not of the form `name=value`.
    BadAttribute { line: usize, token: String },
    /// Node ids must be declared densely, in order, starting from zero.
    NonDenseNode {
        line: usize,
        expected: u32,
        found: u32,
    },
    /// An `epoch` / `pending` directive was malformed or misplaced.
    BadDirective { line: usize, token: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownDirective { line, found } => {
                write!(f, "line {line}: unknown directive `{found}`")
            }
            ParseError::BadId { line, token } => write!(f, "line {line}: bad id `{token}`"),
            ParseError::BadAttribute { line, token } => {
                write!(f, "line {line}: bad attribute `{token}`")
            }
            ParseError::NonDenseNode {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: node ids must be dense, expected {expected} found {found}"
            ),
            ParseError::BadDirective { line, token } => {
                write!(f, "line {line}: bad directive `{token}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes `g` to the text format.
pub fn to_text(g: &DataGraph) -> String {
    let mut out = String::new();
    for v in g.nodes() {
        let _ = write!(out, "node {}", v.0);
        for attr in g.attributes(v) {
            write_attr_token(&mut out, g.resolve(attr.name), &attr.value);
        }
        out.push('\n');
    }
    for u in g.nodes() {
        for &v in g.children(u) {
            let _ = writeln!(out, "edge {} {}", u.0, v.0);
        }
    }
    out
}

/// Parses the text format back into a [`DataGraph`].
pub fn from_text(text: &str) -> Result<DataGraph, ParseError> {
    let mut builder = GraphBuilder::new();
    let mut edges: Vec<(u32, u32, usize)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("node") => {
                let id_tok = parts.next().unwrap_or("");
                let id: u32 = id_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: id_tok.to_owned(),
                })?;
                let expected = builder.node_count() as u32;
                if id != expected {
                    return Err(ParseError::NonDenseNode {
                        line,
                        expected,
                        found: id,
                    });
                }
                let v = builder.add_node();
                for tok in parts {
                    let (name, value) = parse_attr_token(line, tok)?;
                    builder.set_attr(v, &name, value);
                }
            }
            Some("edge") => {
                let u_tok = parts.next().unwrap_or("");
                let v_tok = parts.next().unwrap_or("");
                let u: u32 = u_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: u_tok.to_owned(),
                })?;
                let v: u32 = v_tok.parse().map_err(|_| ParseError::BadId {
                    line,
                    token: v_tok.to_owned(),
                })?;
                edges.push((u, v, line));
            }
            Some(other) => {
                return Err(ParseError::UnknownDirective {
                    line,
                    found: other.to_owned(),
                })
            }
            None => {}
        }
    }
    let n = builder.node_count() as u32;
    for (u, v, line) in edges {
        if u >= n || v >= n {
            return Err(ParseError::BadId {
                line,
                token: format!("{u}->{v}"),
            });
        }
        builder.add_edge(NodeId(u), NodeId(v));
    }
    Ok(builder.build())
}

fn write_attr_token(out: &mut String, name: &str, value: &AttrValue) {
    match value {
        AttrValue::Int(i) => {
            let _ = write!(out, " {name}:int={i}");
        }
        AttrValue::Str(s) => {
            let _ = write!(out, " {name}={s}");
        }
        AttrValue::Vec(v) => {
            let _ = write!(out, " {name}:vec=");
            for (i, x) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                // `{}` prints the shortest digits that round-trip the f32.
                let _ = write!(out, "{x}");
            }
        }
    }
}

fn parse_attr_token(line: usize, tok: &str) -> Result<(String, AttrValue), ParseError> {
    let (name, value) = tok.split_once('=').ok_or(ParseError::BadAttribute {
        line,
        token: tok.to_owned(),
    })?;
    if let Some(stripped) = name.strip_suffix(":int") {
        let i: i64 = value.parse().map_err(|_| ParseError::BadAttribute {
            line,
            token: tok.to_owned(),
        })?;
        Ok((stripped.to_owned(), AttrValue::Int(i)))
    } else if let Some(stripped) = name.strip_suffix(":vec") {
        let mut floats = Vec::new();
        if !value.is_empty() {
            for part in value.split(',') {
                let x: f32 = part.parse().map_err(|_| ParseError::BadAttribute {
                    line,
                    token: tok.to_owned(),
                })?;
                floats.push(x);
            }
        }
        Ok((stripped.to_owned(), AttrValue::Vec(floats)))
    } else {
        Ok((name.to_owned(), AttrValue::str(value)))
    }
}

/// Serializes a live [`GraphHandle`] to the text format: the committed
/// (post-compaction) graph image under an `epoch` directive, followed by the
/// staged delta overlay as `pending` directives.  [`handle_from_text`]
/// restores the full mutation state — epoch number, compacted arrays and
/// pending operations alike.
pub fn handle_to_text(h: &GraphHandle) -> String {
    let snapshot = h.snapshot();
    let mut out = format!("epoch {}\n", snapshot.epoch());
    out.push_str(&to_text(snapshot.graph()));
    for op in h.pending_ops() {
        match op {
            PendingOp::AddNode => out.push_str("pending node\n"),
            PendingOp::SetAttr { node, name, value } => {
                let _ = write!(out, "pending attr {}", node.0);
                write_attr_token(&mut out, &name, &value);
                out.push('\n');
            }
            PendingOp::AddEdge { from, to } => {
                let _ = writeln!(out, "pending edge {} {}", from.0, to.0);
            }
        }
    }
    out
}

/// Parses a live-graph image produced by [`handle_to_text`] back into a
/// [`GraphHandle`] (with [`MutationConfig::default`] tuning): committed
/// epoch, compacted graph, and the pending delta overlay.  Plain graph text
/// (no `epoch` / `pending` directives) restores as an epoch-0 handle with
/// nothing staged.
pub fn handle_from_text(text: &str) -> Result<GraphHandle, ParseError> {
    let mut epoch = 0u64;
    let mut base = String::new();
    let mut ops: Vec<PendingOp> = Vec::new();
    // Pending directives may only reference nodes already declared above
    // them (committed `node` lines or earlier `pending node` lines), so ids
    // are bounds-checked against the running counts with a useful line
    // number.
    let mut base_nodes = 0usize;
    let mut staged_nodes = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("epoch") => {
                let tok = parts.next().unwrap_or("");
                epoch = tok.parse().map_err(|_| ParseError::BadDirective {
                    line,
                    token: tok.to_owned(),
                })?;
            }
            Some("node") => {
                base_nodes += 1;
                base.push_str(trimmed);
                base.push('\n');
            }
            Some("pending") => {
                let bound = (base_nodes + staged_nodes) as u32;
                match parts.next() {
                    Some("node") => {
                        staged_nodes += 1;
                        ops.push(PendingOp::AddNode);
                    }
                    Some("attr") => {
                        let id_tok = parts.next().unwrap_or("");
                        let id: u32 = id_tok.parse().map_err(|_| ParseError::BadId {
                            line,
                            token: id_tok.to_owned(),
                        })?;
                        if id >= bound {
                            return Err(ParseError::BadId {
                                line,
                                token: id_tok.to_owned(),
                            });
                        }
                        let tok = parts.next().ok_or(ParseError::BadAttribute {
                            line,
                            token: trimmed.to_owned(),
                        })?;
                        let (name, value) = parse_attr_token(line, tok)?;
                        ops.push(PendingOp::SetAttr {
                            node: NodeId(id),
                            name,
                            value,
                        });
                    }
                    Some("edge") => {
                        let u_tok = parts.next().unwrap_or("");
                        let v_tok = parts.next().unwrap_or("");
                        let u: u32 = u_tok.parse().map_err(|_| ParseError::BadId {
                            line,
                            token: u_tok.to_owned(),
                        })?;
                        let v: u32 = v_tok.parse().map_err(|_| ParseError::BadId {
                            line,
                            token: v_tok.to_owned(),
                        })?;
                        if u >= bound || v >= bound {
                            return Err(ParseError::BadId {
                                line,
                                token: format!("{u}->{v}"),
                            });
                        }
                        ops.push(PendingOp::AddEdge {
                            from: NodeId(u),
                            to: NodeId(v),
                        });
                    }
                    other => {
                        return Err(ParseError::BadDirective {
                            line,
                            token: other.unwrap_or("").to_owned(),
                        })
                    }
                }
            }
            _ => {
                // `edge`, comments, blanks and anything unknown go to the
                // base parser, which owns those diagnostics.
                base.push_str(trimmed);
                base.push('\n');
            }
        }
    }
    let graph = from_text(&base)?;
    Ok(GraphHandle::restore(
        graph,
        epoch,
        ops,
        MutationConfig::default(),
    ))
}

/// Serializes `g` to Graphviz DOT, labelling nodes with their `label` attribute.
pub fn to_dot(g: &DataGraph) -> String {
    let mut out = String::from("digraph data {\n");
    for v in g.nodes() {
        let label = g
            .attribute_value(v, crate::LABEL_ATTR)
            .map(|l| l.to_string())
            .unwrap_or_default();
        let _ = writeln!(out, "  n{} [label=\"{} {}\"];", v.0, v, label);
    }
    for u in g.nodes() {
        for &v in g.children(u) {
            let _ = writeln!(out, "  n{} -> n{};", u.0, v.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::LABEL_ATTR;

    use super::*;

    #[test]
    fn round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("person");
        b.set_attr(a, "age", AttrValue::int(42));
        let c = b.add_node_with_label("paper");
        b.add_edge(a, c);
        let g = b.build();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        assert_eq!(g2.attribute_value(a, "age"), Some(&AttrValue::int(42)));
        assert_eq!(
            g2.attribute_value(NodeId(1), LABEL_ATTR),
            Some(&AttrValue::str("paper"))
        );
    }

    #[test]
    fn vector_attributes_round_trip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("doc");
        b.set_attr(a, "emb", AttrValue::Vec(vec![0.5, -1.0, 2.25]));
        let g = b.build();
        let text = to_text(&g);
        assert!(text.contains("emb:vec=0.5,-1,2.25"), "{text}");
        let g2 = from_text(&text).unwrap();
        assert_eq!(
            g2.attribute_value(a, "emb"),
            Some(&AttrValue::Vec(vec![0.5, -1.0, 2.25]))
        );
        assert!(from_text("node 0 emb:vec=1.0,oops\n").is_err());
        assert_eq!(
            from_text("node 0 emb:vec=\n")
                .unwrap()
                .attribute_value(NodeId(0), "emb"),
            Some(&AttrValue::Vec(Vec::new()))
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let g = from_text("# hello\n\nnode 0 label=a\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn bad_directive_is_reported() {
        let err = from_text("vertex 0\n").unwrap_err();
        assert!(matches!(err, ParseError::UnknownDirective { line: 1, .. }));
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn non_dense_node_ids_are_rejected() {
        let err = from_text("node 1 label=a\n").unwrap_err();
        assert!(matches!(err, ParseError::NonDenseNode { .. }));
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let err = from_text("node 0\nedge 0 3\n").unwrap_err();
        assert!(matches!(err, ParseError::BadId { line: 2, .. }));
    }

    #[test]
    fn mutated_handle_round_trips_post_compaction_state() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("person");
        let c = b.add_node_with_label("paper");
        b.add_edge(a, c);
        let handle = crate::mutate::GraphHandle::new(b.build());
        let d = handle.insert_node_with_label("paper");
        handle.insert_edge(a, d);
        handle.set_attr(a, "age", AttrValue::int(42));
        handle.commit(); // epoch 1, compacted

        let text = handle_to_text(&handle);
        assert!(text.starts_with("epoch 1\n"));
        let restored = handle_from_text(&text).unwrap();
        assert_eq!(restored.epoch(), 1);
        assert_eq!(restored.pending_op_count(), 0);
        let orig = handle.snapshot();
        let back = restored.snapshot();
        assert_eq!(back.graph().node_count(), 3);
        assert_eq!(back.graph().edge_count(), 2);
        assert_eq!(
            back.graph().attribute_value(a, "age"),
            Some(&AttrValue::int(42))
        );
        assert_eq!(**back.condensation(), **orig.condensation());
        // Serializing the restored handle reproduces the same image.
        assert_eq!(handle_to_text(&restored), text);
    }

    #[test]
    fn pending_delta_overlay_round_trips() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("x");
        b.add_edge(a, a);
        let handle = crate::mutate::GraphHandle::new(b.build());
        handle.commit(); // nothing staged: still epoch 0
        let n = handle.insert_node_with_label("y");
        handle.insert_edge(a, n);
        handle.set_attr(a, "age", AttrValue::int(7));

        let text = handle_to_text(&handle);
        assert!(text.contains("pending node"));
        assert!(text.contains("pending edge 0 1"));
        assert!(text.contains("pending attr 0 age:int=7"));
        let restored = handle_from_text(&text).unwrap();
        assert_eq!(restored.pending_ops(), handle.pending_ops());
        // Committing both overlays lands on the same epoch-1 graph.
        let g1 = handle.commit();
        let g2 = restored.commit();
        assert_eq!(**g1.graph(), **g2.graph());
        assert_eq!(g1.epoch(), g2.epoch());
    }

    #[test]
    fn plain_graph_text_restores_as_epoch_zero_handle() {
        let handle = handle_from_text("node 0 label=a\nnode 1 label=b\nedge 0 1\n").unwrap();
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.pending_op_count(), 0);
        assert_eq!(handle.snapshot().graph().node_count(), 2);
    }

    #[test]
    fn pending_directive_errors_are_reported() {
        assert!(matches!(
            handle_from_text("node 0\npending frobnicate\n").unwrap_err(),
            ParseError::BadDirective { line: 2, .. }
        ));
        assert!(matches!(
            handle_from_text("node 0\npending edge 0 9\n").unwrap_err(),
            ParseError::BadId { line: 2, .. }
        ));
        assert!(matches!(
            handle_from_text("node 0\npending attr 5 x=y\n").unwrap_err(),
            ParseError::BadId { line: 2, .. }
        ));
        assert!(matches!(
            handle_from_text("epoch banana\n").unwrap_err(),
            ParseError::BadDirective { line: 1, .. }
        ));
        let err = ParseError::BadDirective {
            line: 3,
            token: "x".into(),
        };
        assert!(err.to_string().contains("bad directive"));
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("x");
        let c = b.add_node_with_label("y");
        b.add_edge(a, c);
        let dot = to_dot(&b.build());
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("digraph"));
    }
}
