//! Flat compressed-sparse-row adjacency.
//!
//! One `u32` offset array plus one flat target array replace the seed's
//! `Vec<Vec<NodeId>>`: the neighbourhood of node `v` is the contiguous slice
//! `targets[offsets[v] .. offsets[v + 1]]`, sorted by id.  Scanning a
//! neighbourhood touches one cache line stream instead of chasing a per-node
//! heap pointer, and the whole structure is two allocations regardless of the
//! node count.

use serde::{Deserialize, Serialize};

use crate::run::{IntRun, RunElem};

/// CSR adjacency from dense `u32`-indexed sources to targets of type `T`.
///
/// Used with `T = NodeId` for the data graph (forward and reverse) and with
/// `T = CompId` for the SCC condensation DAG, so reachability backends can
/// borrow the very same slices during index construction.
///
/// Both arrays are [`IntRun`]s: owned vectors for graphs built in memory,
/// borrowed windows into the file mapping for graphs loaded from a `.gtpq`
/// snapshot.  Every accessor goes through the slice view, so the two
/// representations are indistinguishable to callers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr<T: RunElem> {
    /// `offsets[v] .. offsets[v + 1]` delimits the neighbour run of `v`.
    offsets: IntRun<u32>,
    /// All neighbour runs, concatenated in source order; each run is sorted.
    targets: IntRun<T>,
}

impl<T: RunElem> Csr<T> {
    /// Assembles a CSR from already-validated runs — the snapshot loader's
    /// entry point ([`crate::snap`]); `offsets` must be monotone with a
    /// leading `0` and a final value equal to `targets.len()`.
    pub(crate) fn from_parts(offsets: IntRun<u32>, targets: IntRun<T>) -> Self {
        Self { offsets, targets }
    }

    /// The raw offset array (length `len() + 1`), as snapshot writers store
    /// it (see [`crate::snap`]).
    pub fn offsets_raw(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw concatenated target array, as snapshot writers store it.
    pub fn targets_raw(&self) -> &[T] {
        &self.targets
    }

    /// The `(device, inode)` of the snapshot file either run borrows, when
    /// this CSR is a mapped view (see [`crate::snap`]).
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.offsets
            .backing_file_id()
            .or_else(|| self.targets.backing_file_id())
    }
}

impl<T: RunElem> Default for Csr<T> {
    fn default() -> Self {
        Self {
            offsets: IntRun::new(),
            targets: IntRun::new(),
        }
    }
}

impl<T: RunElem + Ord> Csr<T> {
    /// Builds the CSR from `(source, target)` pairs.
    ///
    /// Pairs are sorted and de-duplicated here, so callers can hand over the
    /// raw insertion-order edge list.  `n` is the number of source nodes.
    pub fn from_pairs(n: usize, mut pairs: Vec<(u32, T)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self::from_sorted_pairs(n, &pairs)
    }

    /// Builds the CSR from pairs already sorted by `(source, target)` with no
    /// duplicates.
    ///
    /// # Panics
    /// Panics when a pair's source is `>= n` or when the target count
    /// overflows the `u32` offsets — both would otherwise corrupt the
    /// structure silently.
    pub fn from_sorted_pairs(n: usize, pairs: &[(u32, T)]) -> Self {
        assert!(
            pairs.len() <= u32::MAX as usize,
            "CSR target count overflows u32 offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(pairs.len());
        let mut cursor = 0usize;
        offsets.push(0);
        for v in 0..n as u32 {
            while cursor < pairs.len() && pairs[cursor].0 == v {
                targets.push(pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(targets.len() as u32);
        }
        assert_eq!(cursor, pairs.len(), "pair source out of range");
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
        }
    }

    /// Builds a CSR with `n` sources by flattening per-source runs produced in
    /// source order.  `runs` yields `(source, sorted run)`; sources must be
    /// visited in increasing order and every source exactly once.
    pub fn from_runs<I, R>(n: usize, runs: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = T>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for run in runs {
            targets.extend(run);
            assert!(
                targets.len() <= u32::MAX as usize,
                "CSR target count overflows u32 offsets"
            );
            offsets.push(targets.len() as u32);
        }
        assert_eq!(offsets.len(), n + 1, "one run per source expected");
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
        }
    }

    /// Number of source nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the CSR has no source nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted neighbour slice of source `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[T] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of source `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Total number of stored targets.
    #[inline]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Whether `(v, t)` is stored (binary search on the sorted run).
    #[inline]
    pub fn contains(&self, v: usize, t: T) -> bool {
        self.neighbors(v).binary_search(&t).is_ok()
    }

    /// Builds a new CSR with `n >= self.len()` sources by merging sorted
    /// `additions` into the existing runs — a single linear pass, no global
    /// re-sort.  Additions must be sorted by `(source, target)` and free of
    /// internal duplicates; targets already present in the base run are
    /// skipped, so the result equals [`Csr::from_pairs`] over the union of
    /// the old pairs and the additions.
    ///
    /// # Panics
    /// Panics when `n` shrinks the CSR, when an addition's source is `>= n`,
    /// or when the merged target count overflows the `u32` offsets.
    pub fn merge_additions(&self, n: usize, additions: &[(u32, T)]) -> Self {
        assert!(n >= self.len(), "CSR merge cannot drop sources");
        debug_assert!(additions.windows(2).all(|w| w[0] < w[1]));
        assert!(
            self.targets.len() + additions.len() <= u32::MAX as usize,
            "CSR target count overflows u32 offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len() + additions.len());
        offsets.push(0);
        let mut cursor = 0usize;
        for v in 0..n {
            let base: &[T] = if v < self.len() {
                self.neighbors(v)
            } else {
                &[]
            };
            let mut bi = 0usize;
            while cursor < additions.len() && additions[cursor].0 as usize == v {
                let t = additions[cursor].1;
                while bi < base.len() && base[bi] < t {
                    targets.push(base[bi]);
                    bi += 1;
                }
                if bi < base.len() && base[bi] == t {
                    // Already present in the base run: the addition is a
                    // duplicate edge and is dropped, exactly as `from_pairs`
                    // de-duplication would.
                } else {
                    targets.push(t);
                }
                cursor += 1;
            }
            targets.extend_from_slice(&base[bi..]);
            offsets.push(targets.len() as u32);
        }
        assert_eq!(cursor, additions.len(), "addition source out of range");
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
        }
    }

    /// Clones the CSR and appends one run per new source, in order.  The
    /// existing runs are untouched; each appended run must be sorted.
    pub fn with_appended_runs<I, R>(&self, runs: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = T>,
    {
        // `to_vec` is the copy-on-write step: when the base CSR is a mapped
        // snapshot view, the new epoch gets fresh owned arrays and the file
        // bytes are never written through.
        let mut offsets = self.offsets.to_vec();
        let mut targets = self.targets.to_vec();
        for run in runs {
            targets.extend(run);
            assert!(
                targets.len() <= u32::MAX as usize,
                "CSR target count overflows u32 offsets"
            );
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets: offsets.into(),
            targets: targets.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let csr = Csr::from_pairs(3, vec![(1u32, 2u32), (0, 2), (0, 1), (0, 2)]);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[] as &[u32]);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.target_count(), 3);
        assert!(csr.contains(0, 2));
        assert!(!csr.contains(2, 0));
    }

    #[test]
    fn from_runs_flattens_in_order() {
        let csr = Csr::from_runs(3, vec![vec![5u32, 7], vec![], vec![1]]);
        assert_eq!(csr.neighbors(0), &[5, 7]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[1]);
    }

    #[test]
    fn empty_csr() {
        let csr: Csr<u32> = Csr::from_pairs(0, Vec::new());
        assert!(csr.is_empty());
        assert_eq!(csr.target_count(), 0);
    }

    #[test]
    fn merge_additions_equals_full_rebuild() {
        let base = Csr::from_pairs(3, vec![(0u32, 1u32), (0, 5), (2, 0)]);
        // New source 3, duplicate (0, 5), fresh targets interleaved.
        let adds = vec![(0u32, 0u32), (0, 5), (0, 9), (3, 2)];
        let merged = base.merge_additions(4, &adds);
        let full = Csr::from_pairs(
            4,
            vec![(0, 1), (0, 5), (2, 0), (0, 0), (0, 5), (0, 9), (3, 2)],
        );
        assert_eq!(merged, full);
        assert_eq!(merged.neighbors(0), &[0, 1, 5, 9]);
        assert_eq!(merged.neighbors(3), &[2]);
    }

    #[test]
    fn with_appended_runs_keeps_existing() {
        let base = Csr::from_pairs(2, vec![(0u32, 3u32)]);
        let grown = base.with_appended_runs(vec![vec![1u32], vec![]]);
        assert_eq!(grown.len(), 4);
        assert_eq!(grown.neighbors(0), &[3]);
        assert_eq!(grown.neighbors(2), &[1]);
        assert_eq!(grown.neighbors(3), &[] as &[u32]);
    }
}
