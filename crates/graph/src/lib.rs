//! Attributed directed data-graph model used throughout the GTPQ system.
//!
//! A *data graph* (paper §2) is a directed graph `G = (V, E, f)` where every
//! node carries a tuple of attribute/value pairs.  Two nodes are in a
//! *parent-child* (PC) relationship when connected by an edge and in an
//! *ancestor-descendant* (AD) relationship when connected by a non-empty
//! directed path.
//!
//! The crate provides:
//! * [`DataGraph`] — an immutable, adjacency-list graph with interned
//!   attribute names and per-node attribute tuples,
//! * [`GraphBuilder`] — the only way to construct a [`DataGraph`],
//! * [`Condensation`] — Tarjan SCC condensation producing the DAG on which
//!   reachability indexes are built,
//! * traversal helpers (BFS descendants/ancestors, naive reachability used as
//!   a test oracle), and
//! * simple statistics and a text serialization format used by the examples.

pub mod attr;
pub mod builder;
pub mod condensation;
pub mod graph;
pub mod io;
pub mod stats;
pub mod symbol;
pub mod traversal;

pub use attr::{AttrValue, Attribute};
pub use builder::GraphBuilder;
pub use condensation::Condensation;
pub use graph::{DataGraph, NodeId};
pub use stats::GraphStats;
pub use symbol::{Symbol, SymbolTable};

/// Attribute name conventionally used for the single "label" of a node in the
/// synthetic datasets (XMark tags, arXiv label groups, ...).
pub const LABEL_ATTR: &str = "label";

/// Attribute name conventionally used for free-text values (author names,
/// titles, ...) in the DBLP-style examples.
pub const VALUE_ATTR: &str = "value";
