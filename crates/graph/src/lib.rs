//! Attributed directed data-graph model used throughout the GTPQ system.
//!
//! A *data graph* (paper §2) is a directed graph `G = (V, E, f)` where every
//! node carries a tuple of attribute/value pairs.  Two nodes are in a
//! *parent-child* (PC) relationship when connected by an edge and in an
//! *ancestor-descendant* (AD) relationship when connected by a non-empty
//! directed path.
//!
//! The crate provides:
//! * [`DataGraph`] — an immutable graph with flat CSR adjacency, interned
//!   attribute names, per-node attribute tuples and a build-time attribute
//!   inverted index ([`AttrIndex`]),
//! * [`GraphBuilder`] — batch construction of a [`DataGraph`],
//! * [`GraphHandle`] — the live-graph mutation path: staged inserts and
//!   attribute upserts compact into immutable epochs with incrementally
//!   maintained CSR/index/condensation, read through copy-on-write
//!   [`GraphSnapshot`]s,
//! * [`Condensation`] — Tarjan SCC condensation producing the DAG on which
//!   reachability indexes are built (also CSR-packed),
//! * [`NodeBitSet`] and galloping sorted-slice intersection — the scratch
//!   structures of the pruning hot path,
//! * traversal helpers (BFS descendants/ancestors, naive reachability used as
//!   a test oracle), and
//! * simple statistics and a text serialization format used by the examples.
//!
//! # Memory layout
//!
//! Adjacency is *compressed sparse row*: a `u32` offset array of length
//! `|V| + 1` plus one flat `NodeId` array of length `|E|`, stored twice
//! (forward and reverse).  The neighbourhood of `v` is the contiguous sorted
//! slice `targets[offsets[v] .. offsets[v+1]]`; there are exactly four
//! adjacency allocations per graph, independent of `|V|`.  The attribute
//! inverted index uses the same offsets-plus-flat-array shape for its posting
//! lists, keyed by interned `(attribute, value)` pairs, with a per-attribute
//! sorted `(int value, node)` run for integer range predicates.
//!
//! | operation | seed (`Vec<Vec<NodeId>>` + scans) | CSR + inverted index |
//! |-----------|-----------------------------------|----------------------|
//! | `children(v)` / `parents(v)` | pointer chase into a per-node heap `Vec` | slice into one flat array |
//! | `has_edge(u, v)` | `O(log deg u)` | `O(log deg u)` (same, better locality) |
//! | nodes with `attr = value` | `O(\|V\| · \|f(v)\|)` scan | `O(1)` probe + `O(k)` posting slice |
//! | nodes with `attr` in `[lo, hi]` (int) | `O(\|V\| · \|f(v)\|)` scan | `O(log \|run\| + k)` |
//! | conjunction of predicates | full scan testing each node | galloping posting intersection, `O(k_min · log k_max)` |
//! | build | `O(\|V\|)` allocations | `O(\|E\| log \|E\|)` sort, `O(1)` allocations |

pub mod attr;
pub mod bitset;
pub mod builder;
pub mod condensation;
pub mod csr;
pub mod graph;
pub mod index;
pub mod io;
pub mod mutate;
pub mod run;
pub mod sim_index;
pub mod snap;
pub mod stats;
pub mod symbol;
pub mod traversal;
pub mod tuples;

pub use attr::{AttrValue, Attribute};
pub use bitset::{intersect_many, intersect_sorted, intersect_sorted_into, NodeBitSet};
pub use builder::GraphBuilder;
pub use condensation::Condensation;
pub use graph::{DataGraph, NodeId};
pub use index::AttrIndex;
pub use mutate::{GraphHandle, GraphSnapshot, MutationConfig, MutationStats, PendingOp};
pub use run::{IntRun, RunElem};
pub use sim_index::{SimCatalog, SimMatches, SimTable};
pub use snap::{LoadMode, MetaCounts, SectionElem, SectionKind, SnapshotError, SnapshotWriter};
pub use stats::GraphStats;
pub use symbol::{Symbol, SymbolTable};
pub use tuples::AttrTuples;

/// Attribute name conventionally used for the single "label" of a node in the
/// synthetic datasets (XMark tags, arXiv label groups, ...).
pub const LABEL_ATTR: &str = "label";

/// Attribute name conventionally used for free-text values (author names,
/// titles, ...) in the DBLP-style examples.
pub const VALUE_ATTR: &str = "value";
