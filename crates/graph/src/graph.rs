//! The immutable attributed data graph.

use serde::{Deserialize, Serialize};

use crate::attr::{AttrValue, Attribute};
use crate::symbol::{Symbol, SymbolTable};

/// Identifier of a node in a [`DataGraph`]. Dense, starting at zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable directed graph whose nodes carry attribute tuples.
///
/// Built through [`GraphBuilder`](crate::GraphBuilder); adjacency lists are
/// sorted and de-duplicated at build time so neighbourhood scans are cache
/// friendly and membership tests can binary-search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataGraph {
    pub(crate) symbols: SymbolTable,
    pub(crate) out_edges: Vec<Vec<NodeId>>,
    pub(crate) in_edges: Vec<Vec<NodeId>>,
    pub(crate) attrs: Vec<Vec<Attribute>>,
    pub(crate) edge_count: usize,
}

impl DataGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Children (direct successors) of `v`, sorted by id.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.out_edges[v.index()]
    }

    /// Parents (direct predecessors) of `v`, sorted by id.
    #[inline]
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        &self.in_edges[v.index()]
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_edges[u.index()].binary_search(&v).is_ok()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges[v.index()].len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges[v.index()].len()
    }

    /// The attribute tuple `f(v)` of node `v`.
    #[inline]
    pub fn attributes(&self, v: NodeId) -> &[Attribute] {
        &self.attrs[v.index()]
    }

    /// Looks up the value of the attribute named `name` on node `v`.
    pub fn attribute_value(&self, v: NodeId, name: &str) -> Option<&AttrValue> {
        let sym = self.symbols.get(name)?;
        self.attribute_value_sym(v, sym)
    }

    /// Looks up the value of the attribute with interned name `name` on `v`.
    pub fn attribute_value_sym(&self, v: NodeId, name: Symbol) -> Option<&AttrValue> {
        self.attrs[v.index()]
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
    }

    /// The symbol table interning attribute names.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Resolves an attribute-name symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// Returns the nodes whose attribute `name` equals `value`.
    ///
    /// Linear scan; used by tests and small examples. Candidate selection in
    /// the engines goes through the query crate's predicate evaluation.
    pub fn nodes_with_attr(&self, name: &str, value: &AttrValue) -> Vec<NodeId> {
        let Some(sym) = self.symbols.get(name) else {
            return Vec::new();
        };
        self.nodes()
            .filter(|&v| self.attribute_value_sym(v, sym) == Some(value))
            .collect()
    }

    /// Total number of attribute entries across all nodes.
    pub fn attribute_count(&self) -> usize {
        self.attrs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::LABEL_ATTR;

    use super::*;

    fn sample() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("A");
        let c = b.add_node_with_label("B");
        let d = b.add_node_with_label("B");
        b.add_edge(a, c);
        b.add_edge(a, d);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(2)), 2);
    }

    #[test]
    fn adjacency_is_sorted_and_queried() {
        let g = sample();
        assert_eq!(g.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn attribute_lookup() {
        let g = sample();
        assert_eq!(
            g.attribute_value(NodeId(0), LABEL_ATTR),
            Some(&AttrValue::str("A"))
        );
        assert_eq!(g.attribute_value(NodeId(0), "missing"), None);
        assert_eq!(
            g.nodes_with_attr(LABEL_ATTR, &AttrValue::str("B")),
            vec![NodeId(1), NodeId(2)]
        );
    }
}
