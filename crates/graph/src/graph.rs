//! The immutable attributed data graph.

use serde::{Deserialize, Serialize};

use crate::attr::{AttrValue, Attribute};
use crate::csr::Csr;
use crate::index::AttrIndex;
use crate::sim_index::{SimCatalog, SimTable};
use crate::symbol::{Symbol, SymbolTable};
use crate::tuples::AttrTuples;

/// Identifier of a node in a [`DataGraph`]. Dense, starting at zero.
///
/// `repr(transparent)` over the raw `u32` so node-id runs can live directly
/// inside mapped snapshot sections (see [`crate::run::IntRun`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable directed graph whose nodes carry attribute tuples.
///
/// Built through [`GraphBuilder`](crate::GraphBuilder).  Adjacency is stored
/// as two flat CSR arrays (forward and reverse), so [`children`](Self::children)
/// and [`parents`](Self::parents) hand out contiguous sorted slices of one
/// shared allocation — neighbourhood scans are cache friendly, membership
/// tests binary-search, and reachability backends borrow the slices directly
/// during index construction.  A build-time [`AttrIndex`] maps every
/// `(attribute, value)` pair to its sorted posting list, which is how the
/// engines select candidates without scanning all nodes (see
/// [`nodes_with`](Self::nodes_with)).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataGraph {
    pub(crate) symbols: SymbolTable,
    /// Forward CSR: `fwd.neighbors(v)` = children of `v`, sorted.
    pub(crate) fwd: Csr<NodeId>,
    /// Reverse CSR: `rev.neighbors(v)` = parents of `v`, sorted.
    pub(crate) rev: Csr<NodeId>,
    pub(crate) attrs: AttrTuples,
    pub(crate) index: AttrIndex,
    pub(crate) sims: SimCatalog,
    pub(crate) edge_count: usize,
}

impl DataGraph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The `(device, inode)` of the `.gtpq` file any of this graph's runs
    /// borrow, when the graph is a mapped snapshot view (see
    /// [`crate::snap`]); `None` for graphs built in memory or loaded into a
    /// heap buffer.
    pub(crate) fn backing_file_id(&self) -> Option<(u64, u64)> {
        self.fwd
            .backing_file_id()
            .or_else(|| self.rev.backing_file_id())
            .or_else(|| self.attrs.backing_file_id())
            .or_else(|| self.index.backing_file_id())
            .or_else(|| self.sims.backing_file_id())
    }

    /// Children (direct successors) of `v`, sorted by id.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.fwd.neighbors(v.index())
    }

    /// Parents (direct predecessors) of `v`, sorted by id.
    #[inline]
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        self.rev.neighbors(v.index())
    }

    /// Whether the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.fwd.contains(u.index(), v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.fwd.degree(v.index())
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.rev.degree(v.index())
    }

    /// The attribute tuple `f(v)` of node `v`.
    ///
    /// On a snapshot-loaded graph the first per-node attribute access
    /// materializes the whole tuple table from the mapped columns (see
    /// [`AttrTuples`]); index-served predicate evaluation never needs it.
    #[inline]
    pub fn attributes(&self, v: NodeId) -> &[Attribute] {
        &self.attrs.tuples()[v.index()]
    }

    /// Looks up the value of the attribute named `name` on node `v`.
    pub fn attribute_value(&self, v: NodeId, name: &str) -> Option<&AttrValue> {
        let sym = self.symbols.get(name)?;
        self.attribute_value_sym(v, sym)
    }

    /// Looks up the value of the attribute with interned name `name` on `v`.
    pub fn attribute_value_sym(&self, v: NodeId, name: Symbol) -> Option<&AttrValue> {
        self.attrs.tuples()[v.index()]
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
    }

    /// The symbol table interning attribute names.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Resolves an attribute-name symbol to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// The attribute inverted index built alongside the graph.
    #[inline]
    pub fn attr_index(&self) -> &AttrIndex {
        &self.index
    }

    /// The sorted posting list of nodes whose attribute `name` equals `value`
    /// — an O(1) dictionary probe plus a borrowed slice, no node scan.
    pub fn nodes_with(&self, name: &str, value: &AttrValue) -> &[NodeId] {
        match self.symbols.get(name) {
            Some(sym) => self.index.nodes_eq(sym, value),
            None => &[],
        }
    }

    /// The sorted posting list of nodes carrying attribute `name` at all.
    pub fn nodes_with_attr_name(&self, name: &str) -> &[NodeId] {
        match self.symbols.get(name) {
            Some(sym) => self.index.nodes_with_name(sym),
            None => &[],
        }
    }

    /// Nodes whose integer attribute `name` lies in `[lo, hi]`, sorted by id.
    pub fn nodes_with_int_range(&self, name: &str, lo: i64, hi: i64) -> Vec<NodeId> {
        match self.symbols.get(name) {
            Some(sym) => self.index.nodes_int_range(sym, lo, hi),
            None => Vec::new(),
        }
    }

    /// Length of the `name = value` posting list (O(1), no materialization).
    ///
    /// This is the selectivity statistic the query planner feeds its cost
    /// model: posting length ≈ number of candidates an `IndexScan` on that
    /// comparison would produce.
    pub fn posting_len(&self, name: &str, value: &AttrValue) -> usize {
        match self.symbols.get(name) {
            Some(sym) => self.index.count_eq(sym, value),
            None => 0,
        }
    }

    /// Number of nodes carrying attribute `name` at all (O(1)).
    pub fn posting_len_attr_name(&self, name: &str) -> usize {
        match self.symbols.get(name) {
            Some(sym) => self.index.count_with_name(sym),
            None => 0,
        }
    }

    /// Number of nodes whose integer attribute `name` lies in `[lo, hi]`
    /// (two binary searches, no materialization).
    pub fn posting_len_int_range(&self, name: &str, lo: i64, hi: i64) -> usize {
        match self.symbols.get(name) {
            Some(sym) => self.index.count_int_range(sym, lo, hi),
            None => 0,
        }
    }

    /// The similarity tables built alongside the graph (one per attribute
    /// carrying embedding values).
    #[inline]
    pub fn sim_catalog(&self) -> &SimCatalog {
        &self.sims
    }

    /// The similarity table for attribute `name`, when one exists.  The
    /// pivot-filter access path is complete only for query vectors of the
    /// table's [`dim`](SimTable::dim); callers with another dimensionality
    /// fall back to [`nodes_with_attr_name`](Self::nodes_with_attr_name) plus
    /// exact verification.
    pub fn sim_table(&self, name: &str) -> Option<&SimTable> {
        self.sims.get(self.symbols.get(name)?)
    }

    /// Returns the nodes whose attribute `name` equals `value`, as an owned
    /// vector (answered by the inverted index; kept for API compatibility —
    /// prefer [`nodes_with`](Self::nodes_with) to avoid the allocation).
    pub fn nodes_with_attr(&self, name: &str, value: &AttrValue) -> Vec<NodeId> {
        self.nodes_with(name, value).to_vec()
    }

    /// Total number of attribute entries across all nodes (O(1)).
    pub fn attribute_count(&self) -> usize {
        self.attrs.entry_count()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::LABEL_ATTR;

    use super::*;

    fn sample() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("A");
        let c = b.add_node_with_label("B");
        let d = b.add_node_with_label("B");
        b.add_edge(a, c);
        b.add_edge(a, d);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(2)), 2);
    }

    #[test]
    fn adjacency_is_sorted_and_queried() {
        let g = sample();
        assert_eq!(g.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn attribute_lookup() {
        let g = sample();
        assert_eq!(
            g.attribute_value(NodeId(0), LABEL_ATTR),
            Some(&AttrValue::str("A"))
        );
        assert_eq!(g.attribute_value(NodeId(0), "missing"), None);
        assert_eq!(
            g.nodes_with_attr(LABEL_ATTR, &AttrValue::str("B")),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn posting_lists_answer_without_scanning() {
        let g = sample();
        assert_eq!(
            g.nodes_with(LABEL_ATTR, &AttrValue::str("B")),
            &[NodeId(1), NodeId(2)]
        );
        assert_eq!(g.nodes_with(LABEL_ATTR, &AttrValue::str("Z")), &[]);
        assert_eq!(g.nodes_with("missing", &AttrValue::str("B")), &[]);
        assert_eq!(g.nodes_with_attr_name(LABEL_ATTR).len(), 3);
        assert_eq!(g.nodes_with_attr_name("missing"), &[]);
        assert!(g.attr_index().entry_count() > 0);
    }

    #[test]
    fn posting_lengths_match_posting_lists() {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("A");
        b.set_attr(a, "year", AttrValue::int(2000));
        let c = b.add_node_with_label("B");
        b.set_attr(c, "year", AttrValue::int(2005));
        let g = b.build();
        assert_eq!(g.posting_len(LABEL_ATTR, &AttrValue::str("A")), 1);
        assert_eq!(g.posting_len(LABEL_ATTR, &AttrValue::str("Z")), 0);
        assert_eq!(g.posting_len("missing", &AttrValue::str("A")), 0);
        assert_eq!(g.posting_len_attr_name("year"), 2);
        assert_eq!(g.posting_len_attr_name("missing"), 0);
        assert_eq!(
            g.posting_len_int_range("year", 2000, 2004),
            g.nodes_with_int_range("year", 2000, 2004).len()
        );
        assert_eq!(g.posting_len_int_range("missing", 0, 10), 0);
    }
}
