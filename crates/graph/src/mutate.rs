//! Live graphs: a mutation path over the immutable [`DataGraph`].
//!
//! A [`GraphHandle`] stages inserts and attribute upserts (the *delta
//! overlay*) and compacts them into a fresh, fully flat [`DataGraph`] at each
//! [`commit`](GraphHandle::commit) — one epoch per commit.  Compaction is
//! *incremental*: the CSR adjacency and the attribute inverted index are
//! extended by linear sorted-run merges, and the SCC condensation is patched
//! in place whenever every new edge goes forward in the topological order
//! ([`Condensation::apply_insertions`]); a configurable threshold
//! ([`MutationConfig::full_rebuild_ratio`]) falls back to a full re-sort /
//! re-condense when the delta is large.  Either way the result is
//! **bit-identical** to rebuilding the graph from scratch over the same
//! logical operation sequence — the `mutation_oracle` test suite compares the
//! two with `==` after every epoch.
//!
//! Reads are snapshot isolated for free: committed graphs are never mutated,
//! so a [`GraphSnapshot`] (an `Arc` pair pinning one epoch's graph and
//! condensation) keeps serving a consistent view to in-flight match streams
//! and morsel workers while writers race ahead.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::attr::{AttrValue, Attribute};
use crate::condensation::Condensation;
use crate::csr::Csr;
use crate::graph::{DataGraph, NodeId};
use crate::index::AttrIndex;
use crate::symbol::Symbol;
use crate::LABEL_ATTR;

/// One immutable epoch of a live graph: the compacted [`DataGraph`] plus its
/// SCC condensation, pinned together under one epoch number.
///
/// Snapshots are handed out as `Arc<GraphSnapshot>` — cloning is two
/// refcounts, and the underlying arrays are shared with every other reader of
/// the same epoch.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    epoch: u64,
    graph: Arc<DataGraph>,
    condensation: Arc<Condensation>,
}

impl GraphSnapshot {
    /// Wraps an already-built immutable graph as epoch 0 (computing its
    /// condensation once).  This is how static, never-mutated deployments
    /// enter the snapshot world.
    pub fn freeze(graph: Arc<DataGraph>) -> Self {
        let condensation = Arc::new(Condensation::new(&graph));
        Self {
            epoch: 0,
            graph,
            condensation,
        }
    }

    /// Assembles a snapshot from parts that are already consistent — the
    /// snapshot loader's entry point ([`crate::snap`]), where the stored
    /// condensation makes re-running Tarjan unnecessary.  `condensation`
    /// must be the canonical condensation of `graph`.
    pub(crate) fn from_raw_parts(
        epoch: u64,
        graph: Arc<DataGraph>,
        condensation: Arc<Condensation>,
    ) -> Self {
        Self {
            epoch,
            graph,
            condensation,
        }
    }

    /// The epoch this snapshot pins.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The compacted data graph of this epoch.
    #[inline]
    pub fn graph(&self) -> &Arc<DataGraph> {
        &self.graph
    }

    /// The maintained SCC condensation of this epoch's graph.
    #[inline]
    pub fn condensation(&self) -> &Arc<Condensation> {
        &self.condensation
    }
}

/// A staged mutation, recorded in operation order so a replay through
/// [`GraphBuilder`](crate::GraphBuilder) interns symbols identically.
#[derive(Clone, Debug, PartialEq)]
pub enum PendingOp {
    /// Append a fresh node (ids are dense, continuing the committed range).
    AddNode,
    /// Set (or overwrite) one attribute on a committed or staged node.
    SetAttr {
        /// The node receiving the attribute.
        node: NodeId,
        /// Attribute name (interned at commit time).
        name: String,
        /// New attribute value.
        value: AttrValue,
    },
    /// Insert a directed edge between committed or staged nodes.
    AddEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
}

/// Tuning knobs for the mutation path.
#[derive(Clone, Copy, Debug)]
pub struct MutationConfig {
    /// When set, any staging call that brings the pending-operation count to
    /// this threshold triggers an automatic commit — bounding how large the
    /// delta overlay can grow between explicit epochs.
    pub auto_commit_ops: Option<usize>,
    /// Delta-size fraction above which commit abandons the incremental
    /// sorted-run merges for a full rebuild of the affected structure: the
    /// CSR re-sorts all pairs when `new edges > ratio * old edges`, the
    /// inverted index rebuilds when `touched nodes > ratio * old nodes`.
    pub full_rebuild_ratio: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        Self {
            auto_commit_ops: None,
            full_rebuild_ratio: 0.25,
        }
    }
}

/// Counters describing the work the mutation path has done — which commits
/// took the incremental fast paths and which fell back to full rebuilds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationStats {
    /// Committed epochs (commits with at least one staged operation).
    pub epochs: u64,
    /// Nodes inserted across all epochs.
    pub nodes_inserted: u64,
    /// Distinct new edges committed (duplicates are dropped at commit).
    pub edges_inserted: u64,
    /// `set_attr` operations committed.
    pub attrs_upserted: u64,
    /// Commits that extended the CSR by linear sorted-run merge.
    pub csr_merges: u64,
    /// Commits that re-sorted the full edge list (delta over threshold).
    pub csr_rebuilds: u64,
    /// Commits that merged the inverted index incrementally.
    pub index_merges: u64,
    /// Commits that rebuilt the inverted index from the node tuples.
    pub index_rebuilds: u64,
    /// Commits where the condensation took the topological fast path.
    pub condensation_fast: u64,
    /// Commits that re-ran Tarjan (an edge went backward in topo order).
    pub condensation_rebuilds: u64,
    /// Wall-clock microseconds spent in the most recent commit.
    pub last_commit_micros: u64,
}

struct Pending {
    ops: Vec<PendingOp>,
    /// Committed node count the staged ids are relative to.
    base_nodes: usize,
    /// Nodes staged since the last commit.
    staged_nodes: usize,
}

/// A mutable handle over a live graph: stage inserts/upserts, then
/// [`commit`](Self::commit) them as one epoch.
///
/// Staging calls and commits serialize on an internal lock (writers are
/// single-file); [`snapshot`](Self::snapshot) never blocks behind a commit's
/// heavy phase and readers always observe a fully-built epoch — there are no
/// torn reads by construction, because epochs are immutable once published.
pub struct GraphHandle {
    pending: Mutex<Pending>,
    current: RwLock<Arc<GraphSnapshot>>,
    epoch: AtomicU64,
    config: MutationConfig,
    stats: Mutex<MutationStats>,
}

impl std::fmt::Debug for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHandle")
            .field("epoch", &self.epoch())
            .field("pending_ops", &self.pending_op_count())
            .finish_non_exhaustive()
    }
}

impl GraphHandle {
    /// Wraps `graph` as the epoch-0 image of a live graph.
    pub fn new(graph: DataGraph) -> Self {
        Self::with_config(graph, MutationConfig::default())
    }

    /// Wraps `graph` with explicit mutation tuning.
    pub fn with_config(graph: DataGraph, config: MutationConfig) -> Self {
        Self::restore(graph, 0, Vec::new(), config)
    }

    /// Reconstructs a handle from a serialized image: the compacted `graph`
    /// at `epoch`, plus a still-pending delta overlay (see
    /// [`crate::io::handle_to_text`]).
    ///
    /// # Panics
    /// Panics when a pending operation references a node id that neither the
    /// committed graph nor an earlier staged `AddNode` declares.
    pub fn restore(
        graph: DataGraph,
        epoch: u64,
        ops: Vec<PendingOp>,
        config: MutationConfig,
    ) -> Self {
        let base_nodes = graph.node_count();
        let mut staged_nodes = 0usize;
        for op in &ops {
            let bound = base_nodes + staged_nodes;
            match op {
                PendingOp::AddNode => staged_nodes += 1,
                PendingOp::SetAttr { node, .. } => {
                    assert!(node.index() < bound, "pending attr on unknown node {node}");
                }
                PendingOp::AddEdge { from, to } => {
                    assert!(
                        from.index() < bound && to.index() < bound,
                        "pending edge endpoints must be existing nodes"
                    );
                }
            }
        }
        let graph = Arc::new(graph);
        let condensation = Arc::new(Condensation::new(&graph));
        let snapshot = Arc::new(GraphSnapshot {
            epoch,
            graph,
            condensation,
        });
        Self {
            pending: Mutex::new(Pending {
                ops,
                base_nodes,
                staged_nodes,
            }),
            current: RwLock::new(snapshot),
            epoch: AtomicU64::new(epoch),
            config,
            stats: Mutex::new(MutationStats::default()),
        }
    }

    /// Wraps a loaded snapshot as a live graph *without* recomputing the
    /// condensation (the snapshot already pins the canonical one) — the
    /// `.gtpq` fast path.  Commits on the returned handle copy-on-write the
    /// mapped runs into owned storage; the backing file is never modified.
    pub fn from_snapshot(snapshot: GraphSnapshot, config: MutationConfig) -> Self {
        let epoch = snapshot.epoch();
        let base_nodes = snapshot.graph().node_count();
        Self {
            pending: Mutex::new(Pending {
                ops: Vec::new(),
                base_nodes,
                staged_nodes: 0,
            }),
            current: RwLock::new(Arc::new(snapshot)),
            epoch: AtomicU64::new(epoch),
            config,
            stats: Mutex::new(MutationStats::default()),
        }
    }

    /// The committed epoch number (0 before the first commit).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the current epoch: the returned snapshot keeps serving exactly
    /// this graph no matter how many commits land afterwards.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// The mutation tuning in effect.
    pub fn config(&self) -> MutationConfig {
        self.config
    }

    /// Work counters accumulated across all commits.
    pub fn stats(&self) -> MutationStats {
        self.stats.lock().expect("stats lock poisoned").clone()
    }

    /// Number of staged, not-yet-committed operations.
    pub fn pending_op_count(&self) -> usize {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .ops
            .len()
    }

    /// A copy of the staged operations, in staging order (what
    /// [`crate::io::handle_to_text`] serializes as the delta overlay).
    pub fn pending_ops(&self) -> Vec<PendingOp> {
        self.pending
            .lock()
            .expect("pending lock poisoned")
            .ops
            .clone()
    }

    /// Stages a fresh attribute-less node and returns its id (dense,
    /// continuing the committed range).
    pub fn insert_node(&self) -> NodeId {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let id = NodeId((pending.base_nodes + pending.staged_nodes) as u32);
        pending.ops.push(PendingOp::AddNode);
        pending.staged_nodes += 1;
        self.maybe_auto_commit(pending);
        id
    }

    /// Stages a node carrying only a `label` attribute.
    pub fn insert_node_with_label(&self, label: &str) -> NodeId {
        self.insert_node_with_attrs([(LABEL_ATTR, AttrValue::str(label))])
    }

    /// Stages a node with the given `(name, value)` attribute pairs.
    pub fn insert_node_with_attrs<'a, I>(&self, attrs: I) -> NodeId
    where
        I: IntoIterator<Item = (&'a str, AttrValue)>,
    {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let id = NodeId((pending.base_nodes + pending.staged_nodes) as u32);
        pending.ops.push(PendingOp::AddNode);
        pending.staged_nodes += 1;
        for (name, value) in attrs {
            pending.ops.push(PendingOp::SetAttr {
                node: id,
                name: name.to_owned(),
                value,
            });
        }
        self.maybe_auto_commit(pending);
        id
    }

    /// Stages an attribute upsert on a committed or staged node: sets `name`
    /// to `value`, overwriting any existing value.
    ///
    /// # Panics
    /// Panics when `v` is neither committed nor staged.
    pub fn set_attr(&self, v: NodeId, name: &str, value: AttrValue) {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        assert!(
            v.index() < pending.base_nodes + pending.staged_nodes,
            "set_attr on unknown node {v}"
        );
        pending.ops.push(PendingOp::SetAttr {
            node: v,
            name: name.to_owned(),
            value,
        });
        self.maybe_auto_commit(pending);
    }

    /// Stages a directed edge.  Duplicates of existing edges are tolerated
    /// and dropped at commit, mirroring [`GraphBuilder`](crate::GraphBuilder)
    /// de-duplication.
    ///
    /// # Panics
    /// Panics when either endpoint is neither committed nor staged.
    pub fn insert_edge(&self, u: NodeId, v: NodeId) {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        let bound = pending.base_nodes + pending.staged_nodes;
        assert!(
            u.index() < bound && v.index() < bound,
            "edge endpoints must be existing nodes"
        );
        pending.ops.push(PendingOp::AddEdge { from: u, to: v });
        self.maybe_auto_commit(pending);
    }

    fn maybe_auto_commit(&self, pending: std::sync::MutexGuard<'_, Pending>) {
        if let Some(limit) = self.config.auto_commit_ops {
            let mut pending = pending;
            if pending.ops.len() >= limit {
                self.commit_locked(&mut pending);
            }
        }
    }

    /// Compacts every staged operation into a new epoch and publishes it.
    /// With nothing staged this is a no-op returning the current snapshot —
    /// the epoch number only advances when the graph actually changes.
    pub fn commit(&self) -> Arc<GraphSnapshot> {
        let mut pending = self.pending.lock().expect("pending lock poisoned");
        self.commit_locked(&mut pending)
    }

    fn commit_locked(&self, pending: &mut Pending) -> Arc<GraphSnapshot> {
        if pending.ops.is_empty() {
            return self.snapshot();
        }
        let started = Instant::now();
        let base = self.snapshot();
        let bg: &DataGraph = base.graph();
        let old_n = bg.node_count();
        debug_assert_eq!(pending.base_nodes, old_n, "pending desynced from epoch");
        let ops = std::mem::take(&mut pending.ops);
        let staged_nodes = std::mem::replace(&mut pending.staged_nodes, 0);

        // Replay the staged operations over clones of the committed state, in
        // staging order — symbol interning order therefore matches a from-
        // scratch replay through `GraphBuilder`, which is what keeps the
        // result bit-comparable to the rebuild oracle.
        let mut symbols = bg.symbols.clone();
        let mut attrs = bg.attrs.to_tuples_vec();
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        let mut raw_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut upserts = 0u64;
        for op in &ops {
            match op {
                PendingOp::AddNode => attrs.push(Vec::new()),
                PendingOp::SetAttr { node, name, value } => {
                    let sym = symbols.intern(name);
                    if node.index() < old_n {
                        touched.insert(node.0);
                    }
                    let tuple = &mut attrs[node.index()];
                    if let Some(existing) = tuple.iter_mut().find(|a| a.name == sym) {
                        existing.value = value.clone();
                    } else {
                        tuple.push(Attribute::new(sym, value.clone()));
                    }
                    upserts += 1;
                }
                PendingOp::AddEdge { from, to } => raw_edges.push((*from, *to)),
            }
        }
        let n_total = attrs.len();
        debug_assert_eq!(n_total, old_n + staged_nodes);

        // The true edge delta: staged edges, de-duplicated against each other
        // and against the committed adjacency.
        raw_edges.sort_unstable();
        raw_edges.dedup();
        raw_edges.retain(|&(u, v)| u.index() >= old_n || !bg.has_edge(u, v));
        let added_edges = raw_edges;
        let edge_count = bg.edge_count + added_edges.len();

        // CSR adjacency: linear sorted-run merge of the delta, or a full
        // re-sort once the delta crosses the compaction threshold.
        let ratio = self.config.full_rebuild_ratio;
        let csr_full = (added_edges.len() as f64) > ratio * (bg.edge_count.max(1) as f64);
        let (fwd, rev) = if csr_full {
            let mut fwd_pairs: Vec<(u32, NodeId)> = Vec::with_capacity(edge_count);
            for u in bg.nodes() {
                for &v in bg.children(u) {
                    fwd_pairs.push((u.0, v));
                }
            }
            fwd_pairs.extend(added_edges.iter().map(|&(u, v)| (u.0, v)));
            fwd_pairs.sort_unstable();
            let mut rev_pairs: Vec<(u32, NodeId)> =
                fwd_pairs.iter().map(|&(u, v)| (v.0, NodeId(u))).collect();
            rev_pairs.sort_unstable();
            (
                Csr::from_sorted_pairs(n_total, &fwd_pairs),
                Csr::from_sorted_pairs(n_total, &rev_pairs),
            )
        } else {
            let fwd_adds: Vec<(u32, NodeId)> = added_edges.iter().map(|&(u, v)| (u.0, v)).collect();
            let mut rev_adds: Vec<(u32, NodeId)> = added_edges
                .iter()
                .map(|&(u, v)| (v.0, NodeId(u.0)))
                .collect();
            rev_adds.sort_unstable();
            (
                bg.fwd.merge_additions(n_total, &fwd_adds),
                bg.rev.merge_additions(n_total, &rev_adds),
            )
        };

        // Inverted index: sorted-run merge of the per-epoch posting deltas,
        // or a rebuild when too many tuples changed.
        let index_full = ((touched.len() + staged_nodes) as f64) > ratio * (old_n.max(1) as f64);
        let index = if index_full {
            AttrIndex::build(&attrs)
        } else {
            let mut removed: Vec<(Symbol, AttrValue, NodeId)> = Vec::new();
            let mut added: Vec<(Symbol, AttrValue, NodeId)> = Vec::new();
            let mut name_added: Vec<(Symbol, NodeId)> = Vec::new();
            for &t in &touched {
                let v = NodeId(t);
                let old_tuple = &bg.attrs.tuples()[t as usize];
                let new_tuple = &attrs[t as usize];
                for a in old_tuple {
                    if !new_tuple
                        .iter()
                        .any(|b| b.name == a.name && b.value == a.value)
                    {
                        removed.push((a.name, a.value.clone(), v));
                    }
                }
                for b in new_tuple {
                    if !old_tuple
                        .iter()
                        .any(|a| a.name == b.name && a.value == b.value)
                    {
                        added.push((b.name, b.value.clone(), v));
                    }
                    if !old_tuple.iter().any(|a| a.name == b.name) {
                        name_added.push((b.name, v));
                    }
                }
            }
            for (i, tuple) in attrs.iter().enumerate().take(n_total).skip(old_n) {
                let v = NodeId(i as u32);
                for a in tuple {
                    added.push((a.name, a.value.clone(), v));
                    name_added.push((a.name, v));
                }
            }
            bg.index.merge_updates(removed, added, name_added)
        };

        // The sim catalog rebuilds from the tuples every epoch: pivot
        // selection is global (farthest-point over all rows), so there is no
        // incremental merge that stays bit-identical to a from-scratch build.
        // Vector attributes are rare in mutation-heavy workloads; with none
        // present this is a no-op scan.
        let sims = crate::sim_index::SimCatalog::build(&attrs);

        let graph = DataGraph {
            symbols,
            fwd,
            rev,
            attrs: attrs.into(),
            index,
            sims,
            edge_count,
        };

        // SCC condensation: patch in place while every new edge goes forward
        // in the topological order; re-run Tarjan otherwise.
        let (condensation, cond_fast) =
            match base.condensation().apply_insertions(n_total, &added_edges) {
                Some(c) => (c, true),
                None => (Condensation::new(&graph), false),
            };

        let epoch = base.epoch + 1;
        let snapshot = Arc::new(GraphSnapshot {
            epoch,
            graph: Arc::new(graph),
            condensation: Arc::new(condensation),
        });
        *self.current.write().expect("snapshot lock poisoned") = snapshot.clone();
        self.epoch.store(epoch, Ordering::Release);
        pending.base_nodes = n_total;

        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.epochs += 1;
        stats.nodes_inserted += staged_nodes as u64;
        stats.edges_inserted += added_edges.len() as u64;
        stats.attrs_upserted += upserts;
        if csr_full {
            stats.csr_rebuilds += 1;
        } else {
            stats.csr_merges += 1;
        }
        if index_full {
            stats.index_rebuilds += 1;
        } else {
            stats.index_merges += 1;
        }
        if cond_fast {
            stats.condensation_fast += 1;
        } else {
            stats.condensation_rebuilds += 1;
        }
        stats.last_commit_micros = started.elapsed().as_micros() as u64;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    use super::*;

    fn base() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let c = b.add_node_with_label("b");
        let d = b.add_node_with_label("b");
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn commit_is_bit_identical_to_replay() {
        let handle = GraphHandle::new(base());
        let x = handle.insert_node_with_label("c");
        handle.insert_edge(NodeId(2), x);
        handle.set_attr(NodeId(0), "year", AttrValue::int(2001));
        let snap = handle.commit();

        let mut b = GraphBuilder::new();
        let a = b.add_node_with_label("a");
        let c = b.add_node_with_label("b");
        let d = b.add_node_with_label("b");
        b.add_edge(a, c);
        b.add_edge(c, d);
        let x2 = b.add_node();
        b.set_attr(x2, crate::LABEL_ATTR, AttrValue::str("c"));
        b.add_edge(d, x2);
        b.set_attr(a, "year", AttrValue::int(2001));
        let oracle = b.build();

        assert_eq!(**snap.graph(), oracle);
        assert_eq!(**snap.condensation(), Condensation::new(&oracle));
        assert_eq!(snap.epoch(), 1);
        assert_eq!(handle.epoch(), 1);
    }

    #[test]
    fn snapshots_pin_their_epoch() {
        let handle = GraphHandle::new(base());
        let before = handle.snapshot();
        let x = handle.insert_node_with_label("z");
        handle.insert_edge(NodeId(0), x);
        handle.commit();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.graph().node_count(), 3);
        assert_eq!(handle.snapshot().epoch(), 1);
        assert_eq!(handle.snapshot().graph().node_count(), 4);
    }

    #[test]
    fn empty_commit_does_not_advance_the_epoch() {
        let handle = GraphHandle::new(base());
        let snap = handle.commit();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.stats().epochs, 0);
    }

    #[test]
    fn duplicate_edges_are_dropped_at_commit() {
        let handle = GraphHandle::new(base());
        handle.insert_edge(NodeId(0), NodeId(1)); // already committed
        handle.insert_edge(NodeId(0), NodeId(2));
        handle.insert_edge(NodeId(0), NodeId(2)); // staged twice
        let snap = handle.commit();
        assert_eq!(snap.graph().edge_count(), 3);
        assert_eq!(handle.stats().edges_inserted, 1);
    }

    #[test]
    fn backward_edge_falls_back_to_recondense() {
        let handle = GraphHandle::new(base());
        handle.insert_edge(NodeId(2), NodeId(0)); // closes the 0->1->2 chain
        let snap = handle.commit();
        let stats = handle.stats();
        assert_eq!(stats.condensation_rebuilds, 1);
        assert_eq!(stats.condensation_fast, 0);
        assert_eq!(snap.condensation().component_count(), 1);
        assert_eq!(**snap.condensation(), Condensation::new(snap.graph()));
    }

    #[test]
    fn auto_commit_triggers_on_threshold() {
        let config = MutationConfig {
            auto_commit_ops: Some(2),
            ..MutationConfig::default()
        };
        let handle = GraphHandle::with_config(base(), config);
        handle.insert_node(); // 1 op
        assert_eq!(handle.epoch(), 0);
        handle.insert_node(); // 2 ops: auto-commit
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.pending_op_count(), 0);
        assert_eq!(handle.snapshot().graph().node_count(), 5);
    }

    #[test]
    fn large_delta_takes_the_rebuild_paths() {
        let config = MutationConfig {
            full_rebuild_ratio: 0.0,
            ..MutationConfig::default()
        };
        let handle = GraphHandle::with_config(base(), config);
        let x = handle.insert_node_with_label("x");
        handle.insert_edge(NodeId(0), x);
        handle.commit();
        let stats = handle.stats();
        assert_eq!(stats.csr_rebuilds, 1);
        assert_eq!(stats.index_rebuilds, 1);
    }
}
