//! The textual GTPQ query language: tokenizer, parser and printer.
//!
//! Until now a [`Gtpq`] could only be constructed through
//! [`GtpqBuilder`] calls, so expressing a workload
//! meant recompiling.  This module gives every query a concrete textual form
//! (grammar below, full reference in `docs/QUERY_LANGUAGE.md`) together with:
//!
//! * [`parse_query`] — a recursive-descent parser producing a validated
//!   [`Gtpq`], with precise span-carrying [`ParseError`]s,
//! * a canonical [`Display`](std::fmt::Display) implementation (plus the
//!   indented [`Gtpq::to_pretty_string`]) such that parsing the printed text
//!   reproduces the query,
//! * [`FromStr`](std::str::FromStr) for `Gtpq`, so `text.parse::<Gtpq>()`
//!   works wherever strings arrive.
//!
//! # Syntax
//!
//! ```text
//! query      = node
//! node       = pattern [ "as" name ] [ "*" ] [ "{" clause* "}" ]
//! pattern    = label | string | "*" | "[" [ item { "," item } ] "]"
//! item       = cmp | sim
//! cmp        = (ident | string) op value      op = "=" "!=" "<" "<=" ">" ">="
//! sim        = "sim" "(" (ident | string) ","
//!              "[" num { "," num } "]" ")" simop num
//!                                          simop = "<" "<=" ">" ">="
//! value      = integer | string | ident
//! num        = integer | float
//! clause     = ("/" | "//") node              backbone child
//!            | "where" formula                structural predicate fs (≤ 1)
//! formula    = conj { "|" conj }
//! conj       = unary { "&" unary }
//! unary      = "!" unary | atom
//! atom       = "(" formula ")" | "1" | "0" | "true" | "false"
//!            | ("/" | "//") node              declares a predicate child
//!            | name                           back-reference to an `as` name
//! ```
//!
//! `/` is the parent-child axis (one edge), `//` the ancestor-descendant axis
//! (non-empty path).  A bare identifier pattern `paper` is shorthand for
//! `[label = paper]`; `*` matches every node.  A trailing `*` marks an output
//! node.  Children written as clauses are backbone nodes; nodes introduced
//! inside a `where` formula are predicate nodes, and the formula over them is
//! the node's structural predicate.  `#` starts a comment until end of line.
//!
//! A `sim` item is a similarity conjunct over an embedding-valued attribute:
//! `sim(emb, [0.5, -1, 2.25]) < 0.75` keeps nodes whose `emb` vector lies
//! within L2 distance `0.75` of the query vector, `... > 0.9` keeps nodes
//! whose cosine similarity exceeds `0.9`.  Floating-point literals are only
//! meaningful inside `sim(...)`; integers are accepted there as floats.
//!
//! ```
//! use gtpq_query::Gtpq;
//! let q: Gtpq = r#"
//!     inproceedings {                       # papers ...
//!         / [label = title]*                # ... returning their title child
//!         where (/[label = author, value = Alice]) & !(/[label = author, value = Bob])
//!     }
//! "#.parse().unwrap();
//! assert_eq!(q.size(), 4);
//! assert_eq!(q.to_string().parse::<Gtpq>().unwrap(), q);
//! ```
//!
//! # Canonical form
//!
//! `parse(display(q)) == q` holds for every query the parser itself produces
//! — node ids, names and output order included — with one corner-case
//! exception: a `where` formula whose constant folding dropped a pattern
//! (the `(pattern | 1)` orphan encoding) ahead of other patterns, which
//! reorders those children on re-parse.  The round-trip property test in
//! `tests/query_text.rs` checks the identity on random queries.  For
//! queries built by hand through [`GtpqBuilder`] the printed text is always
//! *semantically* faithful, but re-parsing may renumber nodes: the text
//! lists each node's backbone children before its predicate children, so a
//! builder insertion order that interleaves them comes back in canonical
//! order (an equivalent query under `gtpq_analysis::equivalent`).  In every
//! case the printed text re-parses, and one `parse ∘ display` application
//! reaches a fixed point.

use std::collections::HashMap;
use std::fmt::{self, Write as _};

use gtpq_graph::AttrValue;
use gtpq_logic::BoolExpr;

use crate::builder::{GtpqBuilder, QueryError};
use crate::node::{EdgeKind, NodeKind, QueryNodeId};
use crate::predicate::{AttrComparison, AttrPredicate, CmpOp, SimComparison};
use crate::query::Gtpq;

/// Identifiers with grammatical meaning; they cannot be used bare as node
/// labels (quote them instead) or as `as` names.  Attribute names and values
/// inside `[...]` are positionally unambiguous, so they accept any word.
const RESERVED: [&str; 4] = ["where", "as", "true", "false"];

/// A byte range into the query source, identifying where an error was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TextSpan {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character (`end >= start`).
    pub end: usize,
}

impl TextSpan {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }
}

impl fmt::Display for TextSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse error with the byte span of the offending input.
///
/// [`render`](ParseError::render) produces a caret diagnostic against the
/// original source (the REPL uses it); the plain [`Display`](fmt::Display)
/// form reports the byte span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the input the error was detected.
    pub span: TextSpan,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    fn new(span: TextSpan, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
        }
    }

    /// Renders a caret diagnostic pointing at the error inside `source`
    /// (which must be the string that was parsed):
    ///
    /// ```text
    /// parse error at line 2, column 11: expected `)`
    ///   |     where (//e2
    ///   |           ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let start = self.span.start.min(source.len());
        let line_start = source[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_end = source[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(source.len());
        let line_no = source[..start].matches('\n').count() + 1;
        let column = source[line_start..start].chars().count() + 1;
        // Tabs are echoed as single spaces so the caret line (which counts
        // one column per character) stays aligned with the source line.
        let line = source[line_start..line_end].replace('\t', " ");
        let width = source[start..self.span.end.clamp(start, line_end)]
            .chars()
            .count()
            .max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "parse error at line {line_no}, column {column}: {}",
            self.message
        );
        let _ = writeln!(out, "  | {line}");
        let _ = write!(out, "  | {}{}", " ".repeat(column - 1), "^".repeat(width));
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum TokKind {
    Ident(String),
    Int(i64),
    Float(f32),
    Str(String),
    Slash,
    DSlash,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Star,
    Amp,
    Pipe,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Eof,
}

impl TokKind {
    fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Int(i) => format!("integer `{i}`"),
            TokKind::Float(v) => format!("floating-point literal `{v}`"),
            TokKind::Str(_) => "string literal".to_owned(),
            TokKind::Slash => "`/`".to_owned(),
            TokKind::DSlash => "`//`".to_owned(),
            TokKind::LBrace => "`{`".to_owned(),
            TokKind::RBrace => "`}`".to_owned(),
            TokKind::LBracket => "`[`".to_owned(),
            TokKind::RBracket => "`]`".to_owned(),
            TokKind::LParen => "`(`".to_owned(),
            TokKind::RParen => "`)`".to_owned(),
            TokKind::Comma => "`,`".to_owned(),
            TokKind::Star => "`*`".to_owned(),
            TokKind::Amp => "`&`".to_owned(),
            TokKind::Pipe => "`|`".to_owned(),
            TokKind::Bang => "`!`".to_owned(),
            TokKind::Lt => "`<`".to_owned(),
            TokKind::Le => "`<=`".to_owned(),
            TokKind::Gt => "`>`".to_owned(),
            TokKind::Ge => "`>=`".to_owned(),
            TokKind::Eq => "`=`".to_owned(),
            TokKind::Ne => "`!=`".to_owned(),
            TokKind::Eof => "end of input".to_owned(),
        }
    }
}

#[derive(Clone, Debug)]
struct Tok {
    kind: TokKind,
    span: TextSpan,
}

fn tokenize(input: &str) -> Result<Vec<Tok>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let simple = |kind: TokKind, len: usize| Tok {
            kind,
            span: TextSpan::new(start, start + len),
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    toks.push(simple(TokKind::DSlash, 2));
                    i += 2;
                } else {
                    toks.push(simple(TokKind::Slash, 1));
                    i += 1;
                }
            }
            b'{' => {
                toks.push(simple(TokKind::LBrace, 1));
                i += 1;
            }
            b'}' => {
                toks.push(simple(TokKind::RBrace, 1));
                i += 1;
            }
            b'[' => {
                toks.push(simple(TokKind::LBracket, 1));
                i += 1;
            }
            b']' => {
                toks.push(simple(TokKind::RBracket, 1));
                i += 1;
            }
            b'(' => {
                toks.push(simple(TokKind::LParen, 1));
                i += 1;
            }
            b')' => {
                toks.push(simple(TokKind::RParen, 1));
                i += 1;
            }
            b',' => {
                toks.push(simple(TokKind::Comma, 1));
                i += 1;
            }
            b'*' => {
                toks.push(simple(TokKind::Star, 1));
                i += 1;
            }
            b'&' => {
                toks.push(simple(TokKind::Amp, 1));
                i += 1;
            }
            b'|' => {
                toks.push(simple(TokKind::Pipe, 1));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(simple(TokKind::Ne, 2));
                    i += 2;
                } else {
                    toks.push(simple(TokKind::Bang, 1));
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(simple(TokKind::Le, 2));
                    i += 2;
                } else {
                    toks.push(simple(TokKind::Lt, 1));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(simple(TokKind::Ge, 2));
                    i += 2;
                } else {
                    toks.push(simple(TokKind::Gt, 1));
                    i += 1;
                }
            }
            b'=' => {
                toks.push(simple(TokKind::Eq, 1));
                i += 1;
            }
            b'"' => {
                let (s, end) = lex_string(input, i)?;
                toks.push(Tok {
                    kind: TokKind::Str(s),
                    span: TextSpan::new(start, end),
                });
                i = end;
            }
            b'-' | b'0'..=b'9' => {
                let (kind, end) = lex_number(input, i)?;
                toks.push(Tok {
                    kind,
                    span: TextSpan::new(start, end),
                });
                i = end;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident(input[i..j].to_owned()),
                    span: TextSpan::new(i, j),
                });
                i = j;
            }
            _ => {
                let ch = input[i..]
                    .chars()
                    .next()
                    .expect("offset is a char boundary");
                return Err(ParseError::new(
                    TextSpan::new(i, i + ch.len_utf8()),
                    format!("unexpected character `{ch}`"),
                ));
            }
        }
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        span: TextSpan::new(input.len(), input.len()),
    });
    Ok(toks)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1; // past the opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).copied();
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    _ => {
                        return Err(ParseError::new(
                            TextSpan::new(i, (i + 2).min(input.len())),
                            "unknown escape sequence (supported: \\\" \\\\ \\n \\t \\r)",
                        ))
                    }
                }
                i += 2;
            }
            b'\n' => {
                return Err(ParseError::new(
                    TextSpan::new(start, i),
                    "unterminated string literal",
                ))
            }
            _ => {
                let ch = input[i..]
                    .chars()
                    .next()
                    .expect("offset is a char boundary");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(ParseError::new(
        TextSpan::new(start, input.len()),
        "unterminated string literal",
    ))
}

fn lex_number(input: &str, start: usize) -> Result<(TokKind, usize), ParseError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
        if !bytes.get(i).is_some_and(u8::is_ascii_digit) {
            return Err(ParseError::new(
                TextSpan::new(start, i),
                "expected digits after `-`",
            ));
        }
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    // A decimal point makes this a float token.  Floats are only valid
    // inside `sim(...)`; the parser rejects them at scalar value positions
    // with a dedicated message.
    if bytes.get(i) == Some(&b'.') {
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_digit() {
            j += 1;
        }
        let text = &input[start..j];
        let value: f32 = text.parse().map_err(|_| {
            ParseError::new(
                TextSpan::new(start, j),
                format!("invalid floating-point literal `{text}`"),
            )
        })?;
        return Ok((TokKind::Float(value), j));
    }
    let text = &input[start..i];
    let value: i64 = text.parse().map_err(|_| {
        ParseError::new(
            TextSpan::new(start, i),
            format!("integer `{text}` out of range for i64"),
        )
    })?;
    Ok((TokKind::Int(value), i))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses the textual form of a query into a validated [`Gtpq`].
///
/// See the [module documentation](self) for the grammar.  All structural
/// restrictions of the GTPQ definition are enforced, most of them with a
/// targeted message and span (output marker on a predicate node, backbone
/// child under a predicate node, unknown name in a `where` formula, missing
/// output nodes, ...).
pub fn parse_query(input: &str) -> Result<Gtpq, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        builder: None,
    };
    p.parse_root(input.len())
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    builder: Option<GtpqBuilder>,
}

/// A named predicate child visible to back-references inside one node's
/// `where` formula.
type NameScope = Vec<(String, QueryNodeId)>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.peek().span, message)
    }

    fn builder(&mut self) -> &mut GtpqBuilder {
        self.builder.as_mut().expect("root node created first")
    }

    fn parse_root(&mut self, input_len: usize) -> Result<Gtpq, ParseError> {
        if matches!(self.peek().kind, TokKind::Eof) {
            return Err(self.error_here("empty query: expected a node pattern"));
        }
        self.parse_node(None, NodeKind::Backbone)?;
        if !matches!(self.peek().kind, TokKind::Eof) {
            return Err(self.error_here(format!(
                "unexpected trailing input: found {} after the root node",
                self.peek().kind.describe()
            )));
        }
        let builder = self.builder.take().expect("root node created");
        builder.build().map_err(|e| {
            let message = match e {
                QueryError::NoOutputNodes => {
                    "the query marks no output node; append `*` to at least one backbone node"
                        .to_owned()
                }
                other => format!("invalid query: {other}"),
            };
            ParseError::new(TextSpan::new(0, input_len), message)
        })
    }

    /// Parses one node (pattern, optional `as` name, optional `*` output
    /// marker, optional `{}` body) and registers it with the builder.
    /// Returns the node id and its `as` name (with the name's span), which
    /// formula atoms use to populate the reference scope.
    fn parse_node(
        &mut self,
        parent: Option<(QueryNodeId, EdgeKind)>,
        kind: NodeKind,
    ) -> Result<(QueryNodeId, Option<(String, TextSpan)>), ParseError> {
        let attrs = self.parse_pattern()?;
        let id = match parent {
            None => {
                self.builder = Some(GtpqBuilder::new(attrs));
                self.builder().root_id()
            }
            Some((parent_id, edge)) => match kind {
                NodeKind::Backbone => self.builder().backbone_child(parent_id, edge, attrs),
                NodeKind::Predicate => self.builder().predicate_child(parent_id, edge, attrs),
            },
        };
        let mut name = None;
        if matches!(&self.peek().kind, TokKind::Ident(w) if w == "as") {
            self.bump();
            let tok = self.bump();
            let TokKind::Ident(n) = tok.kind else {
                return Err(ParseError::new(
                    tok.span,
                    format!("expected a name after `as`, found {}", tok.kind.describe()),
                ));
            };
            if RESERVED.contains(&n.as_str()) {
                return Err(ParseError::new(
                    tok.span,
                    format!("`{n}` is a reserved word and cannot be used as a name"),
                ));
            }
            self.builder().set_name(id, &n);
            name = Some((n, tok.span));
        }
        if matches!(self.peek().kind, TokKind::Star) {
            if kind == NodeKind::Predicate {
                return Err(self.error_here(
                    "a predicate node cannot be an output node; only backbone nodes \
                     (children written as `/`-clauses) produce output",
                ));
            }
            self.bump();
            self.builder().mark_output(id);
        }
        if matches!(self.peek().kind, TokKind::LBrace) {
            self.parse_body(id, kind)?;
        }
        Ok((id, name))
    }

    fn parse_body(&mut self, node: QueryNodeId, kind: NodeKind) -> Result<(), ParseError> {
        let open = self.bump(); // the `{`
        let mut where_seen = false;
        loop {
            match &self.peek().kind {
                TokKind::RBrace => {
                    self.bump();
                    return Ok(());
                }
                TokKind::Eof => {
                    return Err(ParseError::new(
                        open.span,
                        "unbalanced `{`: this body is never closed",
                    ));
                }
                TokKind::Slash | TokKind::DSlash => {
                    if kind == NodeKind::Predicate {
                        return Err(self.error_here(
                            "a predicate node cannot have backbone children; conditions \
                             below it belong in its `where` formula",
                        ));
                    }
                    if where_seen {
                        // Canonical clause order (backbone children first) is
                        // what makes `parse(display(q)) == q` hold; enforcing
                        // it keeps the text the unique spelling of the tree.
                        return Err(self.error_here(
                            "backbone children must be declared before the `where` clause",
                        ));
                    }
                    let edge = self.parse_edge();
                    self.parse_node(Some((node, edge)), NodeKind::Backbone)?;
                }
                TokKind::Ident(w) if w == "where" => {
                    let tok = self.bump();
                    if where_seen {
                        return Err(ParseError::new(
                            tok.span,
                            "duplicate `where` clause: a node has exactly one structural predicate",
                        ));
                    }
                    where_seen = true;
                    let mut scope = NameScope::new();
                    let fs = self.parse_formula(node, &mut scope)?;
                    self.builder().set_structural(node, fs);
                }
                _ => {
                    return Err(self.error_here(format!(
                        "expected `/`, `//`, `where` or `}}` in a node body, found {}",
                        self.peek().kind.describe()
                    )));
                }
            }
        }
    }

    fn parse_edge(&mut self) -> EdgeKind {
        match self.bump().kind {
            TokKind::Slash => EdgeKind::Child,
            TokKind::DSlash => EdgeKind::Descendant,
            _ => unreachable!("parse_edge called on a `/` or `//` token"),
        }
    }

    /// `formula = conj { "|" conj }` — same precedence ladder as
    /// `gtpq_logic::parser`, with patterns as an extra kind of atom.
    fn parse_formula(
        &mut self,
        node: QueryNodeId,
        scope: &mut NameScope,
    ) -> Result<BoolExpr, ParseError> {
        let mut items = vec![self.parse_conj(node, scope)?];
        while matches!(self.peek().kind, TokKind::Pipe) {
            self.bump();
            items.push(self.parse_conj(node, scope)?);
        }
        Ok(BoolExpr::or(items))
    }

    fn parse_conj(
        &mut self,
        node: QueryNodeId,
        scope: &mut NameScope,
    ) -> Result<BoolExpr, ParseError> {
        let mut items = vec![self.parse_unary(node, scope)?];
        while matches!(self.peek().kind, TokKind::Amp) {
            self.bump();
            items.push(self.parse_unary(node, scope)?);
        }
        Ok(BoolExpr::and(items))
    }

    fn parse_unary(
        &mut self,
        node: QueryNodeId,
        scope: &mut NameScope,
    ) -> Result<BoolExpr, ParseError> {
        if matches!(self.peek().kind, TokKind::Bang) {
            self.bump();
            return Ok(BoolExpr::not(self.parse_unary(node, scope)?));
        }
        self.parse_atom(node, scope)
    }

    fn parse_atom(
        &mut self,
        node: QueryNodeId,
        scope: &mut NameScope,
    ) -> Result<BoolExpr, ParseError> {
        match &self.peek().kind {
            TokKind::LParen => {
                let open = self.bump();
                let inner = self.parse_formula(node, scope)?;
                if !matches!(self.peek().kind, TokKind::RParen) {
                    return Err(ParseError::new(
                        open.span,
                        "unbalanced `(` in `where` formula: expected a closing `)`",
                    ));
                }
                self.bump();
                Ok(inner)
            }
            TokKind::Int(1) => {
                self.bump();
                Ok(BoolExpr::True)
            }
            TokKind::Int(0) => {
                self.bump();
                Ok(BoolExpr::False)
            }
            TokKind::Ident(w) if w == "true" => {
                self.bump();
                Ok(BoolExpr::True)
            }
            TokKind::Ident(w) if w == "false" => {
                self.bump();
                Ok(BoolExpr::False)
            }
            TokKind::Slash | TokKind::DSlash => {
                let edge = self.parse_edge();
                let (child, name) = self.parse_node(Some((node, edge)), NodeKind::Predicate)?;
                if let Some((n, span)) = name {
                    if scope.iter().any(|(existing, _)| existing == &n) {
                        return Err(ParseError::new(
                            span,
                            format!("duplicate name `{n}` in this `where` formula"),
                        ));
                    }
                    scope.push((n, child));
                }
                Ok(BoolExpr::Var(child.var()))
            }
            TokKind::Ident(name) => {
                let name = name.clone();
                let tok = self.bump();
                match scope.iter().find(|(n, _)| n == &name) {
                    Some(&(_, child)) => Ok(BoolExpr::Var(child.var())),
                    None => Err(ParseError::new(
                        tok.span,
                        format!(
                            "unknown predicate-child name `{name}`; declare it earlier in \
                             this `where` formula with `... as {name}`"
                        ),
                    )),
                }
            }
            _ => Err(self.error_here(format!(
                "expected a condition (`(`, `!`, `/`, `//`, a declared name, or a \
                 0/1 constant), found {}",
                self.peek().kind.describe()
            ))),
        }
    }

    fn parse_pattern(&mut self) -> Result<AttrPredicate, ParseError> {
        match &self.peek().kind {
            TokKind::Star => {
                self.bump();
                Ok(AttrPredicate::any())
            }
            TokKind::Ident(label) => {
                let label = label.clone();
                if RESERVED.contains(&label.as_str()) {
                    return Err(self.error_here(format!(
                        "`{label}` is a reserved word; quote it as \"{label}\" to use it as a label"
                    )));
                }
                self.bump();
                Ok(AttrPredicate::label(&label))
            }
            TokKind::Str(label) => {
                let label = label.clone();
                self.bump();
                Ok(AttrPredicate::label(&label))
            }
            TokKind::LBracket => {
                let open = self.bump();
                let mut comparisons = Vec::new();
                let mut sims = Vec::new();
                if !matches!(self.peek().kind, TokKind::RBracket) {
                    loop {
                        // `sim(` starts a similarity conjunct; a bare `sim`
                        // followed by anything else is an attribute name.
                        let is_sim = matches!(&self.peek().kind, TokKind::Ident(w) if w == "sim")
                            && matches!(
                                self.toks.get(self.pos + 1).map(|t| &t.kind),
                                Some(TokKind::LParen)
                            );
                        if is_sim {
                            sims.push(self.parse_sim()?);
                        } else {
                            comparisons.push(self.parse_comparison()?);
                        }
                        match &self.peek().kind {
                            TokKind::Comma => {
                                self.bump();
                            }
                            TokKind::RBracket => break,
                            TokKind::Eof => {
                                return Err(ParseError::new(
                                    open.span,
                                    "unbalanced `[`: expected a closing `]`",
                                ))
                            }
                            other => {
                                return Err(self.error_here(format!(
                                    "expected `,` or `]` in an attribute pattern, found {}",
                                    other.describe()
                                )))
                            }
                        }
                    }
                }
                self.bump(); // the `]`
                Ok(AttrPredicate { comparisons, sims })
            }
            other => Err(self.error_here(format!(
                "expected a node pattern (a label, a quoted string, `*`, or \
                 `[attr op value, ...]`), found {}",
                other.describe()
            ))),
        }
    }

    fn parse_comparison(&mut self) -> Result<AttrComparison, ParseError> {
        let tok = self.bump();
        let attr = match tok.kind {
            TokKind::Ident(s) | TokKind::Str(s) => s,
            other => {
                return Err(ParseError::new(
                    tok.span,
                    format!("expected an attribute name, found {}", other.describe()),
                ))
            }
        };
        let tok = self.bump();
        let op = match tok.kind {
            TokKind::Eq => CmpOp::Eq,
            TokKind::Ne => CmpOp::Ne,
            TokKind::Lt => CmpOp::Lt,
            TokKind::Le => CmpOp::Le,
            TokKind::Gt => CmpOp::Gt,
            TokKind::Ge => CmpOp::Ge,
            other => {
                return Err(ParseError::new(
                    tok.span,
                    format!(
                        "expected a comparison operator (`=`, `!=`, `<`, `<=`, `>`, `>=`), \
                         found {}",
                        other.describe()
                    ),
                ))
            }
        };
        let tok = self.bump();
        let value = match tok.kind {
            TokKind::Int(i) => AttrValue::Int(i),
            TokKind::Str(s) | TokKind::Ident(s) => AttrValue::Str(s),
            // A decimal point is the one scalar value kind the data model
            // does not have; give it a dedicated message instead of the
            // generic one (floats belong inside `sim(...)`).
            TokKind::Float(_) => {
                return Err(ParseError::new(
                    tok.span,
                    "unknown attribute value type: floating-point literals are not supported \
                     (attribute values are integers or strings)",
                ))
            }
            other => {
                return Err(ParseError::new(
                    tok.span,
                    format!(
                        "expected an attribute value (integer, string, or bare word), found {}",
                        other.describe()
                    ),
                ))
            }
        };
        Ok(AttrComparison { attr, op, value })
    }

    /// `sim ( attr , [ num { , num } ] ) op num` — the caller has already
    /// checked that the next two tokens are `sim` and `(`.
    fn parse_sim(&mut self) -> Result<SimComparison, ParseError> {
        self.bump(); // `sim`
        self.bump(); // `(`
        let tok = self.bump();
        let attr = match tok.kind {
            TokKind::Ident(s) | TokKind::Str(s) => s,
            other => {
                return Err(ParseError::new(
                    tok.span,
                    format!(
                        "expected an attribute name in `sim(...)`, found {}",
                        other.describe()
                    ),
                ))
            }
        };
        let tok = self.bump();
        if !matches!(tok.kind, TokKind::Comma) {
            return Err(ParseError::new(
                tok.span,
                format!(
                    "expected `,` after the attribute name in `sim(...)`, found {}",
                    tok.kind.describe()
                ),
            ));
        }
        let open = self.bump();
        if !matches!(open.kind, TokKind::LBracket) {
            return Err(ParseError::new(
                open.span,
                format!(
                    "expected `[` starting the query vector in `sim(...)`, found {}",
                    open.kind.describe()
                ),
            ));
        }
        if matches!(self.peek().kind, TokKind::RBracket) {
            return Err(self.error_here("the query vector in `sim(...)` must not be empty"));
        }
        let mut query = Vec::new();
        loop {
            query.push(self.parse_number()?);
            match &self.peek().kind {
                TokKind::Comma => {
                    self.bump();
                }
                TokKind::RBracket => break,
                TokKind::Eof => {
                    return Err(ParseError::new(
                        open.span,
                        "unbalanced `[`: expected a closing `]` after the query vector",
                    ))
                }
                other => {
                    return Err(self.error_here(format!(
                        "expected `,` or `]` in a query vector, found {}",
                        other.describe()
                    )))
                }
            }
        }
        self.bump(); // the `]`
        let tok = self.bump();
        if !matches!(tok.kind, TokKind::RParen) {
            return Err(ParseError::new(
                tok.span,
                format!(
                    "expected `)` closing `sim(...)`, found {}",
                    tok.kind.describe()
                ),
            ));
        }
        let tok = self.bump();
        let op = match tok.kind {
            TokKind::Lt => CmpOp::Lt,
            TokKind::Le => CmpOp::Le,
            TokKind::Gt => CmpOp::Gt,
            TokKind::Ge => CmpOp::Ge,
            TokKind::Eq | TokKind::Ne => {
                return Err(ParseError::new(
                    tok.span,
                    "`sim(...)` supports only ordering operators (`<`/`<=` bound the L2 \
                     distance, `>`/`>=` bound the cosine similarity), not `=`/`!=`",
                ))
            }
            other => {
                return Err(ParseError::new(
                    tok.span,
                    format!(
                        "expected a comparison operator (`<`, `<=`, `>`, `>=`) after \
                         `sim(...)`, found {}",
                        other.describe()
                    ),
                ))
            }
        };
        let threshold = self.parse_number()?;
        Ok(SimComparison {
            attr,
            query,
            op,
            threshold,
        })
    }

    /// A numeric literal inside `sim(...)`: floats, with integers accepted
    /// and widened to `f32`.
    fn parse_number(&mut self) -> Result<f32, ParseError> {
        let tok = self.bump();
        match tok.kind {
            TokKind::Float(v) => Ok(v),
            TokKind::Int(i) => Ok(i as f32),
            other => Err(ParseError::new(
                tok.span,
                format!("expected a number, found {}", other.describe()),
            )),
        }
    }
}

impl std::str::FromStr for Gtpq {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse_query(s)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

/// A node name as it may appear in the text: only identifier-shaped,
/// non-reserved names are spellable.
fn printable_name(name: Option<&str>) -> Option<&str> {
    name.filter(|n| ident_like(n))
}

fn ident_like(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !RESERVED.contains(&s)
}

fn write_quoted(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            _ => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

fn write_word(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    if ident_like(s) {
        f.write_str(s)
    } else {
        write_quoted(f, s)
    }
}

fn write_pattern(f: &mut fmt::Formatter<'_>, attr: &AttrPredicate) -> fmt::Result {
    if attr.comparisons.is_empty() && attr.sims.is_empty() {
        return f.write_str("*");
    }
    if attr.sims.is_empty() {
        if let [cmp] = attr.comparisons.as_slice() {
            if cmp.attr == gtpq_graph::LABEL_ATTR && cmp.op == CmpOp::Eq {
                if let AttrValue::Str(label) = &cmp.value {
                    return write_word(f, label);
                }
            }
        }
    }
    f.write_str("[")?;
    let mut first = true;
    for cmp in &attr.comparisons {
        if !first {
            f.write_str(", ")?;
        }
        first = false;
        write_word(f, &cmp.attr)?;
        write!(f, " {} ", cmp.op)?;
        match &cmp.value {
            AttrValue::Int(v) => write!(f, "{v}")?,
            AttrValue::Str(s) => write_word(f, s)?,
            // Unreachable from the parser (vector values only arise in
            // `sim(...)` conjuncts); printed as a bracketed list so the
            // output is at least readable, though it does not re-parse.
            AttrValue::Vec(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")?;
            }
        }
    }
    for sim in &attr.sims {
        if !first {
            f.write_str(", ")?;
        }
        first = false;
        f.write_str("sim(")?;
        write_word(f, &sim.attr)?;
        f.write_str(", [")?;
        for (i, x) in sim.query.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]) {} {}", sim.op, sim.threshold)?;
    }
    f.write_str("]")
}

/// How many spaces one indentation level is in
/// [`Gtpq::to_pretty_string`] output.
const INDENT: usize = 4;

/// How a node's `as` name is spelled when the node is printed.
#[derive(Clone, Copy)]
enum NameSpelling<'a> {
    /// Print the node's own name when it is spellable — backbone children
    /// and the root, whose names live outside any `where` scope.
    Own,
    /// Print exactly this name (`None` = omit) — predicate children inside a
    /// `where` clause, whose names share one scope that the caller
    /// de-duplicates so the printed formula always re-parses.
    Exactly(Option<&'a str>),
}

fn write_node(
    f: &mut fmt::Formatter<'_>,
    q: &Gtpq,
    u: QueryNodeId,
    name: NameSpelling<'_>,
    indent: Option<usize>,
) -> fmt::Result {
    let node = q.node(u);
    write_pattern(f, &node.attr)?;
    // Names that are not valid identifiers (or are reserved words) cannot be
    // spelled in the language; omit them so the output always parses.
    let spelled = match name {
        NameSpelling::Own => printable_name(node.name.as_deref()),
        NameSpelling::Exactly(n) => n,
    };
    if let Some(name) = spelled {
        write!(f, " as {name}")?;
    }
    if q.is_output(u) {
        f.write_str("*")?;
    }

    let backbone: Vec<QueryNodeId> = q.backbone_children(u);
    let predicates: Vec<QueryNodeId> = q.predicate_children(u);
    let fs = q.fs(u);
    let orphans: Vec<QueryNodeId> = predicates
        .iter()
        .copied()
        .filter(|c| !fs.contains_var(c.var()))
        .collect();
    let has_where = *fs != BoolExpr::True || !orphans.is_empty();
    if backbone.is_empty() && !has_where {
        return Ok(());
    }

    let child_indent = indent.map(|level| level + 1);
    let open_clause = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
        match child_indent {
            Some(level) => write!(f, "\n{}", " ".repeat(level * INDENT)),
            None => f.write_str(" "),
        }
    };
    f.write_str(" {")?;
    for &c in &backbone {
        open_clause(f)?;
        write!(
            f,
            "{}",
            q.incoming_edge(c).expect("child has an incoming edge")
        )?;
        write_node(f, q, c, NameSpelling::Own, child_indent)?;
    }
    if has_where {
        open_clause(f)?;
        f.write_str("where ")?;
        write_where(f, q, u, fs, &orphans)?;
    }
    match indent {
        Some(level) => write!(f, "\n{}}}", " ".repeat(level * INDENT)),
        None => f.write_str(" }"),
    }
}

/// Writes the `where` formula of `u`: `fs` with every variable expanded into
/// the pattern of its predicate child (first occurrence inline, later
/// occurrences as a name back-reference), followed by `(pattern | 1)` terms
/// for predicate children `fs` never mentions (semantically inert, but kept
/// so the printed text reproduces the full tree).
fn write_where(
    f: &mut fmt::Formatter<'_>,
    q: &Gtpq,
    u: QueryNodeId,
    fs: &BoolExpr,
    orphans: &[QueryNodeId],
) -> fmt::Result {
    let mut counts: HashMap<gtpq_logic::VarId, usize> = HashMap::new();
    count_vars(fs, &mut counts);
    // All `as` names of one `where` clause share a single parser scope, so
    // decide up front what each predicate child prints as — in render order
    // (fs first occurrences, then orphans), first come first served.  A name
    // already used by an earlier sibling is re-spelled (when a back-reference
    // needs it) or omitted (when it is only cosmetic), so the printed formula
    // can never trip the parser's duplicate-name check.
    let mut order: Vec<QueryNodeId> = Vec::new();
    first_occurrences(fs, &mut order);
    order.extend_from_slice(orphans);
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut emitted: HashMap<QueryNodeId, Option<String>> = HashMap::new();
    for &c in &order {
        let own = printable_name(q.node(c).name.as_deref());
        let needs_back_reference = counts.get(&c.var()).copied().unwrap_or(0) > 1;
        let name = match own {
            Some(n) if !used.contains(n) => Some(n.to_owned()),
            _ if needs_back_reference => {
                let mut candidate = c.to_string();
                while used.contains(&candidate) {
                    candidate.push('_');
                }
                Some(candidate)
            }
            _ => None,
        };
        if let Some(n) = &name {
            used.insert(n.clone());
        }
        emitted.insert(c, name);
    }
    let seen = std::cell::RefCell::new(std::collections::HashSet::new());
    let rendered = fs.display_with(|v, f| {
        let c = QueryNodeId::from_var(v);
        debug_assert_eq!(q.parent(c), Some(u), "fs vars are predicate children");
        if seen.borrow_mut().insert(v) {
            // First occurrence: the pattern itself, parenthesized so the
            // surrounding connectives never capture parts of the node.
            f.write_str("(")?;
            write!(
                f,
                "{}",
                q.incoming_edge(c).expect("child has an incoming edge")
            )?;
            write_node(f, q, c, NameSpelling::Exactly(emitted[&c].as_deref()), None)?;
            f.write_str(")")
        } else {
            f.write_str(
                emitted[&c]
                    .as_deref()
                    .expect("repeated vars are always given a name"),
            )
        }
    });
    let mut first = true;
    if *fs != BoolExpr::True {
        if matches!(fs, BoolExpr::Or(_)) && !orphans.is_empty() {
            write!(f, "({rendered})")?;
        } else {
            write!(f, "{rendered}")?;
        }
        first = false;
    }
    for &c in orphans {
        if !first {
            f.write_str(" & ")?;
        }
        first = false;
        f.write_str("((")?;
        write!(
            f,
            "{}",
            q.incoming_edge(c).expect("child has an incoming edge")
        )?;
        write_node(f, q, c, NameSpelling::Exactly(emitted[&c].as_deref()), None)?;
        f.write_str(") | 1)")?;
    }
    Ok(())
}

/// Collects the predicate children of a formula in the order their variables
/// first occur left-to-right — the order `display_with` renders them in.
fn first_occurrences(e: &BoolExpr, order: &mut Vec<QueryNodeId>) {
    match e {
        BoolExpr::True | BoolExpr::False => {}
        BoolExpr::Var(v) => {
            let c = QueryNodeId::from_var(*v);
            if !order.contains(&c) {
                order.push(c);
            }
        }
        BoolExpr::Not(inner) => first_occurrences(inner, order),
        BoolExpr::And(items) | BoolExpr::Or(items) => {
            for item in items {
                first_occurrences(item, order);
            }
        }
    }
}

fn count_vars(e: &BoolExpr, counts: &mut HashMap<gtpq_logic::VarId, usize>) {
    match e {
        BoolExpr::True | BoolExpr::False => {}
        BoolExpr::Var(v) => *counts.entry(*v).or_insert(0) += 1,
        BoolExpr::Not(inner) => count_vars(inner, counts),
        BoolExpr::And(items) | BoolExpr::Or(items) => {
            for item in items {
                count_vars(item, counts);
            }
        }
    }
}

/// Canonical single-line textual form of the query.
///
/// Per node: the pattern, `as` name, `*` output marker, then a `{ ... }`
/// body listing the backbone children (in order) followed by the `where`
/// formula with inline predicate-child patterns.  The output of `Display`
/// always parses back ([`parse_query`]); see the
/// [module documentation](self) on when the round trip is the identity.
impl fmt::Display for Gtpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(f, self, self.root(), NameSpelling::Own, None)
    }
}

impl Gtpq {
    /// The textual form of the query with one clause per line and
    /// four-space indentation — same language as [`Display`](fmt::Display)
    /// (the two parse to the same query), but readable for large trees.
    pub fn to_pretty_string(&self) -> String {
        struct Pretty<'a>(&'a Gtpq);
        impl fmt::Display for Pretty<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write_node(f, self.0, self.0.root(), NameSpelling::Own, Some(0))
            }
        }
        Pretty(self).to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::fixtures::{example_graph, example_query};
    use crate::naive;

    use super::*;

    fn parse(s: &str) -> Gtpq {
        parse_query(s).unwrap_or_else(|e| panic!("{}", e.render(s)))
    }

    fn err(s: &str) -> ParseError {
        parse_query(s).expect_err("expected a parse error")
    }

    #[test]
    fn parses_a_minimal_query() {
        let q = parse("a1*");
        assert_eq!(q.size(), 1);
        assert!(q.is_output(q.root()));
        assert_eq!(q.node(q.root()).attr, AttrPredicate::label("a1"));
    }

    #[test]
    fn parses_axes_and_brackets() {
        let q = parse("a { /b* //[year >= 2000, label != x]* }");
        assert_eq!(q.size(), 3);
        let kids = q.backbone_children(q.root());
        assert_eq!(q.incoming_edge(kids[0]), Some(EdgeKind::Child));
        assert_eq!(q.incoming_edge(kids[1]), Some(EdgeKind::Descendant));
        let attr = &q.node(kids[1]).attr;
        assert_eq!(attr.comparisons.len(), 2);
        assert_eq!(attr.comparisons[0].op, CmpOp::Ge);
        assert_eq!(attr.comparisons[0].value, AttrValue::Int(2000));
    }

    #[test]
    fn wildcard_and_output_stars_coexist() {
        let q = parse("** { //**  /*  }");
        assert_eq!(q.size(), 3);
        assert!(q.is_output(q.root()));
        let kids = q.backbone_children(q.root());
        assert!(q.is_output(kids[0]));
        assert!(!q.is_output(kids[1]));
        assert_eq!(q.node(kids[1]).attr, AttrPredicate::any());
    }

    #[test]
    fn where_formula_declares_predicate_children() {
        let q = parse("a* { where !(//g) | (//b as b0) & (/d) & b0 }");
        assert_eq!(q.size(), 4);
        let preds = q.predicate_children(q.root());
        assert_eq!(preds.len(), 3);
        let fs = q.fs(q.root());
        // !g | (b & d & b)
        assert_eq!(
            *fs,
            BoolExpr::or2(
                BoolExpr::not(BoolExpr::Var(preds[0].var())),
                BoolExpr::and([
                    BoolExpr::Var(preds[1].var()),
                    BoolExpr::Var(preds[2].var()),
                    BoolExpr::Var(preds[1].var()),
                ]),
            )
        );
        assert_eq!(q.display_name(preds[1]), "b0");
    }

    #[test]
    fn nested_predicate_children_parse() {
        let q = parse("a* { where //b { where (//e) | (//[value = x]) } }");
        assert_eq!(q.size(), 4);
        let b = q.predicate_children(q.root())[0];
        assert_eq!(q.predicate_children(b).len(), 2);
    }

    #[test]
    fn quoted_labels_and_escapes() {
        let q = parse(r#""open auction" { /"quo\"te\\"* }"#);
        let child = q.backbone_children(q.root())[0];
        assert_eq!(q.node(child).attr, AttrPredicate::label("quo\"te\\"));
        assert_eq!(q.node(q.root()).attr, AttrPredicate::label("open auction"));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let q = parse("a* # root\n{ //b # child\n }");
        assert_eq!(q.size(), 2);
    }

    #[test]
    fn reserved_words_need_quotes() {
        let e = err("where*");
        assert!(e.message.contains("reserved"));
        assert_eq!(e.span, TextSpan::new(0, 5));
        let q = parse(r#""where"*"#);
        assert_eq!(q.node(q.root()).attr, AttrPredicate::label("where"));
    }

    #[test]
    fn error_spans_point_at_the_problem() {
        // Unbalanced paren in a formula: span of the opening `(`.
        let e = err("a* { where (//b }");
        assert!(e.message.contains("unbalanced `(`"));
        assert_eq!(e.span, TextSpan::new(11, 12));
        // Unbalanced body brace: span of the `{`.
        let e = err("a* { //b");
        assert!(e.message.contains("unbalanced `{`"));
        assert_eq!(e.span, TextSpan::new(3, 4));
        // Bad axis (`///` lexes as `//` `/`): the stray slash.
        let e = err("a* { ///b }");
        assert!(e.message.contains("expected a node pattern"));
        assert_eq!(e.span, TextSpan::new(7, 8));
        // Float attribute value.
        let e = err("[price = 1.5]*");
        assert!(e.message.contains("floating-point"));
        assert_eq!(e.span, TextSpan::new(9, 12));
        // Unknown name reference.
        let e = err("a* { where missing }");
        assert!(e.message.contains("unknown predicate-child name `missing`"));
        assert_eq!(e.span, TextSpan::new(11, 18));
    }

    #[test]
    fn parses_sim_predicates() {
        let q = parse("[label = doc, sim(emb, [0.5, -1, 2.25]) > 0.9]*");
        let attr = &q.node(q.root()).attr;
        assert_eq!(attr.comparisons.len(), 1);
        assert_eq!(attr.sims.len(), 1);
        let sim = &attr.sims[0];
        assert_eq!(sim.attr, "emb");
        assert_eq!(sim.query, vec![0.5, -1.0, 2.25]);
        assert_eq!(sim.op, CmpOp::Gt);
        assert_eq!(sim.threshold, 0.9);
        // Distance form; integers widen to floats inside `sim(...)`.
        let q = parse("[sim(emb, [1, 2]) <= 3]*");
        let sim = &q.node(q.root()).attr.sims[0];
        assert_eq!(sim.query, vec![1.0, 2.0]);
        assert_eq!(sim.op, CmpOp::Le);
        assert_eq!(sim.threshold, 3.0);
        // `sim` without `(` stays an ordinary attribute name or label.
        let q = parse("[sim = 3]*");
        assert_eq!(q.node(q.root()).attr.sims.len(), 0);
        assert_eq!(q.node(q.root()).attr.comparisons[0].attr, "sim");
        let q = parse("sim*");
        assert_eq!(q.node(q.root()).attr, AttrPredicate::label("sim"));
    }

    #[test]
    fn sim_parse_errors() {
        let e = err("[sim(emb, [1, 2]) = 5]*");
        assert!(e.message.contains("ordering operators"), "{e}");
        assert_eq!(e.span, TextSpan::new(18, 19));
        let e = err("[sim(emb, []) > 0.5]*");
        assert!(e.message.contains("must not be empty"), "{e}");
        let e = err("[sim(emb, [0.5, ]) > 0.9]*");
        assert!(e.message.contains("expected a number"), "{e}");
        let e = err("[sim(emb, [0.5) > 0.9]*");
        assert!(e.message.contains("`,` or `]` in a query vector"), "{e}");
        let e = err("[sim(emb [0.5]) > 0.9]*");
        assert!(
            e.message.contains("expected `,` after the attribute name"),
            "{e}"
        );
        // Floats stay rejected outside `sim(...)`, with the dedicated
        // message and the span of the literal.
        let e = err("a* { where 1.5 }");
        assert!(e.message.contains("floating-point literal `1.5`"), "{e}");
    }

    #[test]
    fn structural_restrictions_error_early() {
        let e = err("a* { where //b { /c } }");
        assert!(e.message.contains("cannot have backbone children"));
        let e = err("a* { where //b* }");
        assert!(e.message.contains("cannot be an output node"));
        let e = err("a { //b }");
        assert!(e.message.contains("no output node"));
        assert_eq!(e.span, TextSpan::new(0, 9));
        let e = err("a* { where (//b) where (//c) }");
        assert!(e.message.contains("duplicate `where`"));
    }

    #[test]
    fn trailing_input_is_rejected() {
        let e = err("a* b");
        assert!(e.message.contains("trailing"));
        assert_eq!(e.span, TextSpan::new(3, 4));
        let e = err("");
        assert!(e.message.contains("empty query"));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let e = err("a* { where (//b as x) & (//c as x) }");
        assert!(e.message.contains("duplicate name `x`"));
        assert_eq!(e.span, TextSpan::new(32, 33));
    }

    #[test]
    fn render_produces_a_caret_diagnostic() {
        let src = "a* {\n  where (//e2\n}";
        let e = err(src);
        let rendered = e.render(src);
        assert!(rendered.contains("line 2, column 9"), "{rendered}");
        assert!(rendered.contains("^"), "{rendered}");
    }

    #[test]
    fn display_round_trips_simple_queries() {
        for text in [
            "a1*",
            "**",
            "a { /b* }",
            "a as root* { //b //c as x { /d* } }",
            "[year >= 1995, year <= 2005, label != x]*",
            r#""open auction"* { /[value = "x y"] }"#,
            "a* { //b where (//e) | !(//g) }",
            "a* { where ((//b as x) | (//c)) & (x | (//d { where (//e) })) }",
            "a* { where ((//e) | 1) }",
            "a* { where 0 }",
            "[sim(emb, [0.5, -1, 2.25]) > 0.9]*",
            "[label = doc, year >= 2000, sim(emb, [1, 0, 0.25, -0.125]) < 0.75]*",
            r#"[sim("embedding space", [0.1, 0.2]) >= 0.5]*"#,
            "doc* { //[sim(emb, [1, 2]) <= 3] where (/[sim(emb, [0.5]) > 0]) }",
        ] {
            let q = parse(text);
            let printed = q.to_string();
            let reparsed = parse(&printed);
            assert_eq!(reparsed, q, "canonical text `{printed}` of `{text}`");
            // Pretty form parses to the same query.
            assert_eq!(parse(&q.to_pretty_string()), q, "pretty of `{text}`");
        }
    }

    #[test]
    fn display_of_builder_queries_is_equivalent() {
        // The Fig. 2 fixture interleaves backbone and predicate children in
        // builder insertion order, so re-parsing renumbers the nodes — but
        // the answer on the running example is identical.
        let q = example_query();
        let g = example_graph();
        let printed = q.to_string();
        let reparsed = parse(&printed);
        // Output *ids* are renumbered, but the text preserves the output
        // nodes' tree order, so the tuple sets must coincide coordinate-wise.
        assert_eq!(
            naive::evaluate(&reparsed, &g).tuples,
            naive::evaluate(&q, &g).tuples
        );
        // The canonical form is a fixed point of display ∘ parse.
        assert_eq!(parse(&reparsed.to_string()), reparsed);
    }

    #[test]
    fn orphan_predicate_children_survive_printing() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let _orphan = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("o"));
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        assert!(printed.contains("| 1"), "{printed}");
        let reparsed = parse(&printed);
        assert_eq!(reparsed, q);
    }

    #[test]
    fn repeated_variables_print_as_back_references() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("e"));
        b.set_structural(
            root,
            BoolExpr::and2(
                BoolExpr::Var(p.var()),
                BoolExpr::or2(BoolExpr::Var(p.var()), BoolExpr::False),
            ),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        let reparsed = parse(&printed);
        // The synthesized back-reference name is the only difference.
        assert_eq!(reparsed.size(), q.size());
        assert_eq!(reparsed.fs(root), q.fs(root));
        assert_eq!(parse(&reparsed.to_string()), reparsed);
    }

    #[test]
    fn backbone_clauses_after_where_are_rejected() {
        let e = err("a* { where (//b) /c }");
        assert!(e.message.contains("before the `where` clause"), "{e}");
        assert_eq!(e.span, TextSpan::new(17, 18));
    }

    #[test]
    fn synthesized_back_references_avoid_user_names() {
        // A sibling is explicitly named `u2` — exactly the name the printer
        // would otherwise synthesize for the unnamed repeated child (id 2).
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let named = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_name(named, "u2");
        let repeated = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(
            root,
            BoolExpr::and([
                BoolExpr::Var(named.var()),
                BoolExpr::Var(repeated.var()),
                BoolExpr::Var(repeated.var()),
            ]),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        let reparsed = parse(&printed);
        assert_eq!(reparsed.size(), q.size(), "{printed}");
        assert_eq!(reparsed.fs(root).variables().len(), 2, "{printed}");
    }

    #[test]
    fn duplicate_sibling_names_still_print_parseably() {
        // Two predicate children of one node both named `x`, both referenced
        // twice — the printed formula must not redeclare `x`.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_name(p1, "x");
        b.set_name(p2, "x");
        b.set_structural(
            root,
            BoolExpr::and([
                BoolExpr::Var(p1.var()),
                BoolExpr::Var(p2.var()),
                BoolExpr::or2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
            ]),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        let reparsed = parse(&printed);
        assert_eq!(reparsed.size(), q.size(), "{printed}");
        assert_eq!(reparsed.fs(root).variables().len(), 2, "{printed}");
        // A named orphan colliding with a formula name must also re-parse.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let orphan = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_name(p1, "x");
        b.set_name(orphan, "x");
        b.set_structural(root, BoolExpr::Var(p1.var()));
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        assert_eq!(parse(&printed).size(), q.size(), "{printed}");
    }

    #[test]
    fn unspellable_names_are_omitted_from_the_text() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        b.set_name(root, "two words"); // not an identifier
        let p = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_name(p, "where"); // reserved
        b.set_structural(
            root,
            BoolExpr::and2(BoolExpr::Var(p.var()), BoolExpr::Var(p.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let printed = q.to_string();
        let reparsed = parse(&printed);
        assert_eq!(reparsed.size(), q.size(), "{printed}");
        assert!(!printed.contains("two words as"), "{printed}");
    }

    #[test]
    fn from_str_works() {
        let q: Gtpq = "a* { //b }".parse().unwrap();
        assert_eq!(q.size(), 2);
        assert!("a* { //b".parse::<Gtpq>().is_err());
    }

    #[test]
    fn pretty_printing_indents_bodies() {
        let q = parse("a* { //b { /c* } where (//e) }");
        let pretty = q.to_pretty_string();
        assert!(pretty.contains("\n    //b {"), "{pretty}");
        assert!(pretty.contains("\n        /c*"), "{pretty}");
        assert!(pretty.contains("\n    where (//e)"), "{pretty}");
    }

    #[test]
    fn parse_evaluates_like_the_builder() {
        // The Fig. 2 example query, written textually in canonical order,
        // answers exactly like the builder-built fixture.
        let g = example_graph();
        let text = r#"
            a1 {
                //[label >= c, label < "c~"]* {
                    where //e2
                }
                //[label >= c, label < "c~"] {
                    //d1*
                    where !(//g1)
                        | (//[label >= b, label < "b~"] {
                               where (//[label >= e, label < "e~"])
                                   | (//[label >= e, label < "e~"])
                           })
                        & (//d1)
                }
            }
        "#;
        let q = parse(text);
        assert_eq!(q.size(), 10);
        let fixture = example_query();
        assert_eq!(
            naive::evaluate(&q, &g).tuples,
            naive::evaluate(&fixture, &g).tuples
        );
    }
}
