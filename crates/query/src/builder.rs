//! Builder and validation of GTPQs.

use gtpq_logic::BoolExpr;

use crate::node::{EdgeKind, NodeKind, QueryNode, QueryNodeId};
use crate::predicate::AttrPredicate;
use crate::query::Gtpq;

/// Validation errors raised by [`GtpqBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A backbone node was attached under a predicate node, violating the
    /// edge restriction of Definition §2.
    BackboneUnderPredicate {
        /// The offending backbone node.
        node: QueryNodeId,
    },
    /// An output node is not a backbone node.
    OutputNotBackbone {
        /// The offending output node.
        node: QueryNodeId,
    },
    /// A structural predicate mentions a variable that is not a predicate
    /// child of its node.
    ForeignVariable {
        /// The node whose structural predicate is invalid.
        node: QueryNodeId,
        /// The variable that does not correspond to a predicate child.
        var: QueryNodeId,
    },
    /// The query has no output nodes.
    NoOutputNodes,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BackboneUnderPredicate { node } => {
                write!(f, "backbone node {node} cannot be the child of a predicate node")
            }
            QueryError::OutputNotBackbone { node } => {
                write!(f, "output node {node} must be a backbone node")
            }
            QueryError::ForeignVariable { node, var } => write!(
                f,
                "structural predicate of {node} mentions {var}, which is not one of its predicate children"
            ),
            QueryError::NoOutputNodes => f.write_str("a GTPQ needs at least one output node"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Incrementally constructs a [`Gtpq`].
///
/// The root is created by [`GtpqBuilder::new`] and is always a backbone node
/// with id 0.  Children are numbered in the order they are added, so node ids
/// form a pre-order-compatible numbering (a child always has a larger id than
/// its parent).
#[derive(Clone, Debug)]
pub struct GtpqBuilder {
    nodes: Vec<QueryNode>,
    output: Vec<QueryNodeId>,
}

impl GtpqBuilder {
    /// Starts a query whose root has the given attribute predicate.
    pub fn new(root_attr: AttrPredicate) -> Self {
        Self {
            nodes: vec![QueryNode {
                kind: NodeKind::Backbone,
                attr: root_attr,
                structural: BoolExpr::True,
                parent: None,
                incoming: None,
                children: Vec::new(),
                name: None,
            }],
            output: Vec::new(),
        }
    }

    /// The id of the root node.
    pub fn root_id(&self) -> QueryNodeId {
        QueryNodeId(0)
    }

    /// Adds a backbone child under `parent` connected by `edge`.
    pub fn backbone_child(
        &mut self,
        parent: QueryNodeId,
        edge: EdgeKind,
        attr: AttrPredicate,
    ) -> QueryNodeId {
        self.add_child(parent, edge, attr, NodeKind::Backbone)
    }

    /// Adds a predicate child under `parent` connected by `edge`.
    pub fn predicate_child(
        &mut self,
        parent: QueryNodeId,
        edge: EdgeKind,
        attr: AttrPredicate,
    ) -> QueryNodeId {
        self.add_child(parent, edge, attr, NodeKind::Predicate)
    }

    fn add_child(
        &mut self,
        parent: QueryNodeId,
        edge: EdgeKind,
        attr: AttrPredicate,
        kind: NodeKind,
    ) -> QueryNodeId {
        assert!(parent.index() < self.nodes.len(), "parent must exist");
        let id = QueryNodeId(self.nodes.len() as u32);
        self.nodes.push(QueryNode {
            kind,
            attr,
            structural: BoolExpr::True,
            parent: Some(parent),
            incoming: Some(edge),
            children: Vec::new(),
            name: None,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Sets the structural predicate `fs(u)` of a node.
    pub fn set_structural(&mut self, u: QueryNodeId, fs: BoolExpr) {
        self.nodes[u.index()].structural = fs;
    }

    /// Sets a display name for a node.
    pub fn set_name(&mut self, u: QueryNodeId, name: &str) {
        self.nodes[u.index()].name = Some(name.to_owned());
    }

    /// Marks a node as an output node.
    pub fn mark_output(&mut self, u: QueryNodeId) {
        if !self.output.contains(&u) {
            self.output.push(u);
        }
    }

    /// Marks every backbone node as an output node (the traditional TPQ case
    /// used throughout the paper's §5.1 experiments).
    pub fn mark_all_backbone_output(&mut self) {
        for i in 0..self.nodes.len() {
            if self.nodes[i].kind == NodeKind::Backbone {
                self.mark_output(QueryNodeId(i as u32));
            }
        }
    }

    /// Validates and finalizes the query.
    pub fn build(self) -> Result<Gtpq, QueryError> {
        // Edge restriction: predicate nodes only have predicate children.
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == NodeKind::Backbone {
                if let Some(parent) = node.parent {
                    if self.nodes[parent.index()].kind == NodeKind::Predicate {
                        return Err(QueryError::BackboneUnderPredicate {
                            node: QueryNodeId(i as u32),
                        });
                    }
                }
            }
        }
        // Output nodes are backbone nodes.
        for &o in &self.output {
            if self.nodes[o.index()].kind != NodeKind::Backbone {
                return Err(QueryError::OutputNotBackbone { node: o });
            }
        }
        if self.output.is_empty() {
            return Err(QueryError::NoOutputNodes);
        }
        // Structural predicates mention only predicate children.
        for (i, node) in self.nodes.iter().enumerate() {
            let u = QueryNodeId(i as u32);
            for var in node.structural.variables() {
                let child = QueryNodeId::from_var(var);
                let is_pred_child = child.index() < self.nodes.len()
                    && self.nodes[child.index()].parent == Some(u)
                    && self.nodes[child.index()].kind == NodeKind::Predicate;
                if !is_pred_child {
                    return Err(QueryError::ForeignVariable {
                        node: u,
                        var: child,
                    });
                }
            }
        }
        Ok(Gtpq {
            nodes: self.nodes,
            output: self.output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_conjunctive_query_builds() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.mark_output(child);
        b.set_name(child, "b-node");
        let q = b.build().unwrap();
        assert_eq!(q.size(), 2);
        assert!(q.is_conjunctive());
        assert_eq!(q.display_name(child), "b-node");
    }

    #[test]
    fn output_must_be_backbone() {
        let mut b = GtpqBuilder::new(AttrPredicate::any());
        let root = b.root_id();
        let p = b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("x"));
        b.set_structural(root, BoolExpr::Var(p.var()));
        b.mark_output(p);
        assert_eq!(
            b.build().unwrap_err(),
            QueryError::OutputNotBackbone { node: p }
        );
    }

    #[test]
    fn needs_an_output_node() {
        let b = GtpqBuilder::new(AttrPredicate::any());
        assert_eq!(b.build().unwrap_err(), QueryError::NoOutputNodes);
    }

    #[test]
    fn backbone_under_predicate_is_rejected() {
        let mut b = GtpqBuilder::new(AttrPredicate::any());
        let root = b.root_id();
        let p = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("x"));
        let bad = b.backbone_child(p, EdgeKind::Descendant, AttrPredicate::label("y"));
        b.set_structural(root, BoolExpr::Var(p.var()));
        b.mark_output(root);
        assert_eq!(
            b.build().unwrap_err(),
            QueryError::BackboneUnderPredicate { node: bad }
        );
    }

    #[test]
    fn structural_predicate_must_use_predicate_children() {
        let mut b = GtpqBuilder::new(AttrPredicate::any());
        let root = b.root_id();
        let bb = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("x"));
        // Using the backbone child's variable in fs(root) is rejected: backbone
        // variables are implicitly conjoined by fext and may not be negated or
        // disjoined.
        b.set_structural(root, BoolExpr::Var(bb.var()));
        b.mark_output(bb);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::ForeignVariable { .. }
        ));
    }

    #[test]
    fn mark_all_backbone_output() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let c1 = b.backbone_child(root, EdgeKind::Child, AttrPredicate::label("b"));
        let _p = b.predicate_child(c1, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.mark_all_backbone_output();
        let q = b.build().unwrap();
        assert_eq!(q.output_nodes().len(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = QueryError::NoOutputNodes;
        assert!(err.to_string().contains("output"));
        let err = QueryError::ForeignVariable {
            node: QueryNodeId(1),
            var: QueryNodeId(2),
        };
        assert!(err.to_string().contains("u1"));
    }
}
