//! The GTPQ query tree.

use gtpq_graph::{DataGraph, NodeId};
use gtpq_logic::BoolExpr;
use serde::{Deserialize, Serialize};

use crate::node::{EdgeKind, NodeKind, QueryNode, QueryNodeId};
use crate::predicate::CandidateSelection;

/// A generalized tree pattern query `Q = (Vb, Vp, Vo, Eq, fa, fe, fs)`.
///
/// Construct through [`GtpqBuilder`](crate::GtpqBuilder), which enforces the
/// structural restrictions of the definition (tree shape, predicate nodes may
/// only have predicate children, output nodes are backbone nodes, structural
/// predicates only mention predicate children).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Gtpq {
    pub(crate) nodes: Vec<QueryNode>,
    pub(crate) output: Vec<QueryNodeId>,
}

impl Gtpq {
    /// The root query node (always node 0).
    pub fn root(&self) -> QueryNodeId {
        QueryNodeId(0)
    }

    /// Number of query nodes `|Q|`.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over all query node ids in id order (which is a pre-order of
    /// the tree because the builder numbers nodes as they are added under
    /// their parent).
    pub fn node_ids(&self) -> impl Iterator<Item = QueryNodeId> + '_ {
        (0..self.nodes.len() as u32).map(QueryNodeId)
    }

    /// Access to a query node.
    pub fn node(&self, u: QueryNodeId) -> &QueryNode {
        &self.nodes[u.index()]
    }

    /// The output nodes `Vo`, in the order they were marked.
    pub fn output_nodes(&self) -> &[QueryNodeId] {
        &self.output
    }

    /// Whether `u` is a backbone node.
    pub fn is_backbone(&self, u: QueryNodeId) -> bool {
        self.nodes[u.index()].kind == NodeKind::Backbone
    }

    /// Whether `u` is an output node.
    pub fn is_output(&self, u: QueryNodeId) -> bool {
        self.output.contains(&u)
    }

    /// The children of `u`.
    pub fn children(&self, u: QueryNodeId) -> &[QueryNodeId] {
        &self.nodes[u.index()].children
    }

    /// The backbone children of `u`.
    pub fn backbone_children(&self, u: QueryNodeId) -> Vec<QueryNodeId> {
        self.children(u)
            .iter()
            .copied()
            .filter(|&c| self.is_backbone(c))
            .collect()
    }

    /// The predicate children of `u`.
    pub fn predicate_children(&self, u: QueryNodeId) -> Vec<QueryNodeId> {
        self.children(u)
            .iter()
            .copied()
            .filter(|&c| !self.is_backbone(c))
            .collect()
    }

    /// The parent of `u`, or `None` for the root.
    pub fn parent(&self, u: QueryNodeId) -> Option<QueryNodeId> {
        self.nodes[u.index()].parent
    }

    /// The kind of the edge entering `u` from its parent.
    pub fn incoming_edge(&self, u: QueryNodeId) -> Option<EdgeKind> {
        self.nodes[u.index()].incoming
    }

    /// The structural predicate `fs(u)`.
    pub fn fs(&self, u: QueryNodeId) -> &BoolExpr {
        &self.nodes[u.index()].structural
    }

    /// The extended structural predicate `fext(u)`: the conjunction of the
    /// variables of all backbone children with `fs(u)`.
    pub fn fext(&self, u: QueryNodeId) -> BoolExpr {
        let backbone_vars = self
            .backbone_children(u)
            .into_iter()
            .map(|c| BoolExpr::Var(c.var()));
        BoolExpr::and(backbone_vars.chain([self.fs(u).clone()]))
    }

    /// The query nodes of the subtree rooted at `u`, in pre-order (including `u`).
    pub fn subtree(&self, u: QueryNodeId) -> Vec<QueryNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(x) = stack.pop() {
            out.push(x);
            for &c in self.children(x).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The proper descendants of `u` (subtree minus `u`).
    pub fn descendants(&self, u: QueryNodeId) -> Vec<QueryNodeId> {
        self.subtree(u)[1..].to_vec()
    }

    /// Whether `anc` is a proper ancestor of `desc` in the query tree.
    pub fn is_ancestor(&self, anc: QueryNodeId, desc: QueryNodeId) -> bool {
        let mut cursor = self.parent(desc);
        while let Some(p) = cursor {
            if p == anc {
                return true;
            }
            cursor = self.parent(p);
        }
        false
    }

    /// The lowest common ancestor of two query nodes.
    pub fn lowest_common_ancestor(&self, a: QueryNodeId, b: QueryNodeId) -> QueryNodeId {
        let mut ancestors_a = vec![a];
        let mut cursor = self.parent(a);
        while let Some(p) = cursor {
            ancestors_a.push(p);
            cursor = self.parent(p);
        }
        let mut cursor = Some(b);
        while let Some(x) = cursor {
            if ancestors_a.contains(&x) {
                return x;
            }
            cursor = self.parent(x);
        }
        self.root()
    }

    /// The internal (non-leaf) query nodes.
    pub fn internal_nodes(&self) -> Vec<QueryNodeId> {
        self.node_ids()
            .filter(|&u| !self.node(u).is_leaf())
            .collect()
    }

    /// The nodes in bottom-up order (children before parents).
    pub fn bottom_up_order(&self) -> Vec<QueryNodeId> {
        let mut order = self.subtree(self.root());
        order.reverse();
        order
    }

    /// Whether every structural predicate only uses conjunction
    /// (a *conjunctive GTPQ*, i.e. a traditional tree pattern query).
    pub fn is_conjunctive(&self) -> bool {
        self.node_ids().all(|u| self.fs(u).is_conjunctive())
    }

    /// Whether every structural predicate is negation free
    /// (a *union-conjunctive GTPQ*).
    pub fn is_union_conjunctive(&self) -> bool {
        self.node_ids().all(|u| self.fs(u).is_negation_free())
    }

    /// Whether data node `v` satisfies the attribute predicate of `u` (`v ∼ u`).
    pub fn matches_attr(&self, g: &DataGraph, v: NodeId, u: QueryNodeId) -> bool {
        self.nodes[u.index()].attr.matches(g, v)
    }

    /// The candidate matching nodes `mat(u) = {v | v ∼ u}` of a query node,
    /// computed by a full node scan.
    ///
    /// Kept as the oracle for the index-backed path and for benchmarking;
    /// the engines call [`candidates_indexed`](Self::candidates_indexed).
    pub fn candidates(&self, g: &DataGraph, u: QueryNodeId) -> Vec<NodeId> {
        g.nodes().filter(|&v| self.matches_attr(g, v, u)).collect()
    }

    /// The candidate matching nodes of a query node, served through the
    /// graph's attribute inverted index (posting-list intersection with a
    /// per-node verification fallback for non-indexable comparisons).
    ///
    /// Returns the same node set as [`candidates`](Self::candidates), sorted
    /// by id, plus selection statistics.
    pub fn candidates_indexed(&self, g: &DataGraph, u: QueryNodeId) -> CandidateSelection {
        self.nodes[u.index()].attr.select_candidates(g)
    }

    /// Estimated candidate count of a query node, from inverted-index
    /// posting lengths (see
    /// [`AttrPredicate::estimate_candidates`](crate::AttrPredicate::estimate_candidates)).
    /// An
    /// upper bound on `|mat(u)|`; never touches node attribute data.
    pub fn estimate_candidates(&self, g: &DataGraph, u: QueryNodeId) -> usize {
        self.nodes[u.index()].attr.estimate_candidates(g)
    }

    /// Display name of a node: its explicit name, or `u<i>`.
    pub fn display_name(&self, u: QueryNodeId) -> String {
        self.node(u).name.clone().unwrap_or_else(|| u.to_string())
    }

    /// A compact multi-line description of the query (for logs and examples).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for u in self.node_ids() {
            let node = self.node(u);
            let indent = {
                let mut depth = 0;
                let mut cursor = node.parent;
                while let Some(p) = cursor {
                    depth += 1;
                    cursor = self.node(p).parent;
                }
                "  ".repeat(depth)
            };
            let edge = node.incoming.map(|e| e.to_string()).unwrap_or_default();
            let kind = match node.kind {
                NodeKind::Backbone => "B",
                NodeKind::Predicate => "P",
            };
            let star = if self.is_output(u) { "*" } else { "" };
            let _ = writeln!(
                out,
                "{indent}{edge}{name}{star} [{kind}] fa: {attr} fs: {fs}",
                name = self.display_name(u),
                attr = node.attr,
                fs = node.structural,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GtpqBuilder;
    use crate::predicate::AttrPredicate;
    use crate::EdgeKind;

    use super::*;

    /// Builds the query of the paper's Fig. 2(b).
    pub(crate) fn figure2_query() -> Gtpq {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let u1 = b.root_id();
        let u2 = b.backbone_child(u1, EdgeKind::Descendant, AttrPredicate::label("b"));
        let u3 = b.backbone_child(u1, EdgeKind::Descendant, AttrPredicate::label("c"));
        let u4 = b.backbone_child(u3, EdgeKind::Descendant, AttrPredicate::label("d"));
        let u5 = b.predicate_child(u2, EdgeKind::Descendant, AttrPredicate::label("e"));
        let u6 = b.predicate_child(u3, EdgeKind::Descendant, AttrPredicate::label("g"));
        let u7 = b.predicate_child(u3, EdgeKind::Descendant, AttrPredicate::label("b"));
        let u8 = b.predicate_child(u3, EdgeKind::Descendant, AttrPredicate::label("d"));
        let u9 = b.predicate_child(u7, EdgeKind::Descendant, AttrPredicate::label("e"));
        let u10 = b.predicate_child(u7, EdgeKind::Descendant, AttrPredicate::label("e"));
        // fs(u2) = p_u5 ; fs(u3) = !p_u6 | (p_u7 & p_u8) ; fs(u7) = p_u9 | p_u10
        b.set_structural(u2, BoolExpr::Var(u5.var()));
        b.set_structural(
            u3,
            BoolExpr::or2(
                BoolExpr::not(BoolExpr::Var(u6.var())),
                BoolExpr::and2(BoolExpr::Var(u7.var()), BoolExpr::Var(u8.var())),
            ),
        );
        b.set_structural(
            u7,
            BoolExpr::or2(BoolExpr::Var(u9.var()), BoolExpr::Var(u10.var())),
        );
        b.mark_output(u2);
        b.mark_output(u4);
        b.build().expect("figure 2 query is well formed")
    }

    #[test]
    fn accessors_on_figure2() {
        let q = figure2_query();
        assert_eq!(q.size(), 10);
        assert_eq!(q.root(), QueryNodeId(0));
        assert_eq!(q.output_nodes(), &[QueryNodeId(1), QueryNodeId(3)]);
        assert!(q.is_backbone(QueryNodeId(1)));
        assert!(!q.is_backbone(QueryNodeId(4)));
        assert_eq!(
            q.backbone_children(q.root()),
            vec![QueryNodeId(1), QueryNodeId(2)]
        );
        assert_eq!(q.predicate_children(QueryNodeId(2)).len(), 3);
        assert!(!q.is_conjunctive());
        assert!(!q.is_union_conjunctive());
        assert_eq!(q.parent(QueryNodeId(3)), Some(QueryNodeId(2)));
        assert_eq!(q.incoming_edge(QueryNodeId(1)), Some(EdgeKind::Descendant));
        assert!(q.is_ancestor(q.root(), QueryNodeId(9)));
        assert!(!q.is_ancestor(QueryNodeId(1), QueryNodeId(9)));
        assert_eq!(
            q.lowest_common_ancestor(QueryNodeId(4), QueryNodeId(9)),
            q.root()
        );
        assert_eq!(
            q.lowest_common_ancestor(QueryNodeId(8), QueryNodeId(9)),
            QueryNodeId(6)
        );
    }

    #[test]
    fn fext_conjoins_backbone_children() {
        let q = figure2_query();
        // fext(u1) = p_u2 & p_u3 (two backbone children, fs = 1).
        let fext = q.fext(q.root());
        assert_eq!(fext, BoolExpr::and2(BoolExpr::var(1), BoolExpr::var(2)));
        // fext(u3) includes its backbone child u4 and fs(u3).
        let fext3 = q.fext(QueryNodeId(2));
        assert!(fext3.contains_var(QueryNodeId(3).var()));
        assert!(fext3.contains_var(QueryNodeId(5).var()));
    }

    #[test]
    fn orders_and_subtrees() {
        let q = figure2_query();
        let sub = q.subtree(QueryNodeId(2));
        assert!(sub.contains(&QueryNodeId(8)));
        assert!(!sub.contains(&QueryNodeId(1)));
        let bottom_up = q.bottom_up_order();
        let pos = |u: QueryNodeId| bottom_up.iter().position(|&x| x == u).unwrap();
        assert!(pos(QueryNodeId(9)) < pos(QueryNodeId(6)));
        assert!(pos(QueryNodeId(6)) < pos(QueryNodeId(2)));
        assert!(pos(QueryNodeId(2)) < pos(QueryNodeId(0)));
        assert_eq!(q.descendants(QueryNodeId(6)).len(), 2);
        assert!(q.internal_nodes().contains(&QueryNodeId(6)));
    }

    #[test]
    fn describe_mentions_every_node() {
        let q = figure2_query();
        let text = q.describe();
        assert!(text.contains("u0"));
        assert!(text.contains("u9"));
        assert!(text.contains("*"));
    }
}
