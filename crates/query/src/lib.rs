//! Generalized tree pattern queries (GTPQs) over graph-structured data.
//!
//! A GTPQ (paper §2) is a directed tree of *query nodes* split into
//! *backbone* and *predicate* nodes.  Every node carries an *attribute
//! predicate* (a conjunction of comparisons against node attributes) and
//! every internal node carries a *structural predicate*: a propositional
//! formula over the variables of its predicate children, expressing which
//! combinations of child subtree matches are acceptable (this is where the
//! logical AND/OR/NOT operators of the title live).  A subset of the backbone
//! nodes are *output nodes*; the answer to the query is the set of
//! output-node image tuples over all matches.
//!
//! This crate defines the query model and everything derived purely from the
//! query itself:
//!
//! * [`AttrPredicate`] / [`CmpOp`] — attribute predicates and their
//!   evaluation against data nodes,
//! * [`Gtpq`] and [`GtpqBuilder`] — the query tree, with validation of the
//!   structural restrictions of Definition §2,
//! * [`structural`] — extended (`fext`), transitive (`ftr`) and complete
//!   (`fcs`) structural predicates, independently-constraint nodes,
//!   similarity (`⊳`) and subsumption (`⊴`),
//! * [`parse`] — the textual query language: tokenizer, span-carrying
//!   recursive-descent parser ([`parse_query`], `FromStr`) and the
//!   canonical printer (`Display`, [`Gtpq::to_pretty_string`]),
//! * [`naive`] — a direct implementation of the semantics used as the
//!   correctness oracle for every evaluation algorithm in the workspace,
//! * [`result`] — the answer representation shared by all engines.

#![warn(missing_docs)]

pub mod builder;
pub mod fixtures;
pub mod naive;
pub mod node;
pub mod parse;
pub mod predicate;
pub mod query;
pub mod result;
pub mod structural;

pub use builder::{GtpqBuilder, QueryError};
pub use node::{EdgeKind, NodeKind, QueryNode, QueryNodeId};
pub use parse::{parse_query, ParseError, TextSpan};
pub use predicate::{AttrComparison, AttrPredicate, CandidateSelection, CmpOp, SimComparison};
pub use query::Gtpq;
pub use result::ResultSet;
