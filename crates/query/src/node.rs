//! Query nodes and edges.

use gtpq_logic::VarId;
use serde::{Deserialize, Serialize};

use crate::predicate::AttrPredicate;

/// Identifier of a query node.  Dense, starting at zero; the root is always
/// node 0.  The propositional variable associated with a query node is
/// `VarId(id.0)` — the mapping is the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryNodeId(pub u32);

impl QueryNodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The propositional variable `p_u` associated with this query node.
    #[inline]
    pub fn var(self) -> VarId {
        VarId(self.0)
    }

    /// The query node associated with a propositional variable.
    #[inline]
    pub fn from_var(var: VarId) -> Self {
        QueryNodeId(var.0)
    }
}

impl std::fmt::Display for QueryNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Kind of a query node (paper §2: `Vb` vs `Vp`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Backbone node: guaranteed an image in every match; output nodes are
    /// backbone nodes; its variable may not be negated or disjoined.
    Backbone,
    /// Predicate node: only constrains matches through the structural
    /// predicate of its parent.
    Predicate,
}

/// Kind of a query edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Parent-child (PC): the data images must be connected by one edge.
    Child,
    /// Ancestor-descendant (AD): the data images must be connected by a
    /// non-empty path.
    Descendant,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeKind::Child => f.write_str("/"),
            EdgeKind::Descendant => f.write_str("//"),
        }
    }
}

/// One node of a GTPQ.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QueryNode {
    /// Backbone or predicate.
    pub kind: NodeKind,
    /// Attribute predicate `fa(u)`.
    pub attr: AttrPredicate,
    /// Structural predicate `fs(u)` over the variables of predicate children.
    pub structural: gtpq_logic::BoolExpr,
    /// Parent node (None for the root).
    pub parent: Option<QueryNodeId>,
    /// Kind of the incoming edge from the parent (None for the root).
    pub incoming: Option<EdgeKind>,
    /// Children, in insertion order.
    pub children: Vec<QueryNodeId>,
    /// Optional human-readable name used for display and the query DSL.
    pub name: Option<String>,
}

impl QueryNode {
    /// Whether this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_mapping_is_identity() {
        let u = QueryNodeId(7);
        assert_eq!(u.var(), VarId(7));
        assert_eq!(QueryNodeId::from_var(VarId(7)), u);
        assert_eq!(u.to_string(), "u7");
    }

    #[test]
    fn edge_kind_display() {
        assert_eq!(EdgeKind::Child.to_string(), "/");
        assert_eq!(EdgeKind::Descendant.to_string(), "//");
    }
}
