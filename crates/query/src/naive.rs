//! Naive semantic evaluator — the correctness oracle.
//!
//! Implements the GTPQ semantics of §2 directly: downward matching `v ⊨ u` is
//! computed bottom-up over the query tree with plain BFS reachability, and
//! matches are enumerated by assigning backbone nodes top-down.  No indexes,
//! no pruning — quadratic-ish and only intended for small graphs in tests and
//! as the reference implementation every optimized engine is compared against.

use std::collections::HashMap;

use gtpq_graph::traversal::descendants;
use gtpq_graph::{DataGraph, NodeId};
use gtpq_logic::valuation::eval_with;

use crate::node::EdgeKind;
use crate::query::Gtpq;
use crate::result::ResultSet;
use crate::QueryNodeId;

/// One match projection: a sorted `(query node, data node)` assignment.
type Assignment = Vec<(QueryNodeId, NodeId)>;
/// Memo of [`subtree_assignments`]: projections per (query node, data node).
type AssignmentMemo = HashMap<(QueryNodeId, NodeId), Vec<Assignment>>;

/// Evaluates `q` on `g` by direct application of the semantics.
pub fn evaluate(q: &Gtpq, g: &DataGraph) -> ResultSet {
    let sat = downward_matches(q, g);
    enumerate(q, g, &sat)
}

/// Computes the downward-match table: `table[u][v]` is true iff `v ⊨ u`.
pub fn downward_matches(q: &Gtpq, g: &DataGraph) -> Vec<Vec<bool>> {
    let n = g.node_count();
    let mut table = vec![vec![false; n]; q.size()];
    for u in q.bottom_up_order() {
        let fext = q.fext(u);
        for v in g.nodes() {
            if !q.matches_attr(g, v, u) {
                continue;
            }
            if q.node(u).is_leaf() {
                table[u.index()][v.index()] = true;
                continue;
            }
            // Truth assignment determined by v: for each child u', whether some
            // child/descendant v' of v downward-matches u'.
            let children_of_v = g.children(v);
            let descendants_of_v = descendants(g, v);
            let value = eval_with(&fext, &|var| {
                let child = QueryNodeId::from_var(var);
                let candidates: &[NodeId] = match q.incoming_edge(child) {
                    Some(EdgeKind::Child) => children_of_v,
                    _ => &descendants_of_v,
                };
                candidates
                    .iter()
                    .any(|&v2| table[child.index()][v2.index()])
            });
            table[u.index()][v.index()] = value;
        }
    }
    table
}

/// Enumerates the answer from the downward-match table by assigning backbone
/// nodes top-down and projecting onto the output nodes.
fn enumerate(q: &Gtpq, g: &DataGraph, sat: &[Vec<bool>]) -> ResultSet {
    let output = q.output_nodes().to_vec();
    let mut results = ResultSet::new(output.clone());
    let root = q.root();
    let mut memo: AssignmentMemo = HashMap::new();
    for v in g.nodes() {
        if !sat[root.index()][v.index()] {
            continue;
        }
        for assignment in subtree_assignments(q, g, sat, root, v, &mut memo) {
            let tuple: Vec<NodeId> = output
                .iter()
                .map(|u| {
                    assignment
                        .iter()
                        .find(|(qu, _)| qu == u)
                        .map(|&(_, v)| v)
                        .expect("output nodes are backbone nodes and always assigned")
                })
                .collect();
            results.insert(tuple);
        }
    }
    results
}

/// All distinct projections (restricted to output nodes) of matches of the
/// backbone subtree rooted at `u`, given `u` is matched to `v`.  Each
/// projection is a sorted `(query node, data node)` assignment.
fn subtree_assignments(
    q: &Gtpq,
    g: &DataGraph,
    sat: &[Vec<bool>],
    u: QueryNodeId,
    v: NodeId,
    memo: &mut AssignmentMemo,
) -> Vec<Assignment> {
    if let Some(cached) = memo.get(&(u, v)) {
        return cached.clone();
    }
    let base: Vec<(QueryNodeId, NodeId)> = if q.is_output(u) { vec![(u, v)] } else { vec![] };
    let mut partials: Vec<Vec<(QueryNodeId, NodeId)>> = vec![base];
    for child in q.backbone_children(u) {
        let candidates: Vec<NodeId> = match q.incoming_edge(child) {
            Some(EdgeKind::Child) => g.children(v).to_vec(),
            _ => descendants(g, v),
        };
        let mut child_results: Vec<Vec<(QueryNodeId, NodeId)>> = Vec::new();
        for v2 in candidates {
            if sat[child.index()][v2.index()] {
                child_results.extend(subtree_assignments(q, g, sat, child, v2, memo));
            }
        }
        // Deduplicate child projections: different matches can project equally.
        child_results.sort();
        child_results.dedup();
        let mut next = Vec::with_capacity(partials.len() * child_results.len());
        for b in &partials {
            for cr in &child_results {
                let mut merged = b.clone();
                merged.extend_from_slice(cr);
                merged.sort();
                next.push(merged);
            }
        }
        partials = next;
        if partials.is_empty() {
            break;
        }
    }
    partials.sort();
    partials.dedup();
    memo.insert((u, v), partials.clone());
    partials
}

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;
    use gtpq_logic::BoolExpr;

    use crate::builder::GtpqBuilder;
    use crate::fixtures::{example_answer_pairs, example_graph, example_query};
    use crate::predicate::AttrPredicate;

    use super::*;

    #[test]
    fn example_candidates() {
        let g = example_graph();
        let q = example_query();
        // mat(u5) = {v13}, mat(u10) = {v9, v10, v13, v15} (1-based).
        assert_eq!(q.candidates(&g, QueryNodeId(4)), vec![NodeId(12)]);
        assert_eq!(
            q.candidates(&g, QueryNodeId(9)),
            vec![NodeId(8), NodeId(9), NodeId(12), NodeId(14)]
        );
    }

    #[test]
    fn example_downward_matches() {
        let g = example_graph();
        let q = example_query();
        let table = downward_matches(&q, &g);
        let u2 = QueryNodeId(1);
        let u3 = QueryNodeId(2);
        // u2 (needs an e2 descendant): v3 and v8 qualify, v5 does not.
        assert!(table[u2.index()][NodeId(2).index()]);
        assert!(table[u2.index()][NodeId(7).index()]);
        assert!(!table[u2.index()][NodeId(4).index()]);
        // u3: only v3 satisfies the disjunction (reaches a b-node with an
        // e-descendant and a d1 node); v8 reaches g1 but no b-node; v5 has no
        // d1 descendant for the backbone child u4.
        assert!(table[u3.index()][NodeId(2).index()]);
        assert!(!table[u3.index()][NodeId(7).index()]);
        assert!(!table[u3.index()][NodeId(4).index()]);
        // Root: only v1 reaches both a u2- and a u3-candidate.
        assert!(table[0][NodeId(0).index()]);
        assert!(!table[0][NodeId(1).index()]);
        assert!(!table[0][NodeId(3).index()]);
    }

    #[test]
    fn example_answer_matches_hand_computation() {
        let g = example_graph();
        let q = example_query();
        let answer = evaluate(&q, &g);
        let expected = example_answer_pairs();
        assert_eq!(answer.len(), expected.len(), "answer: {:?}", answer.tuples);
        for (a, b) in expected {
            assert!(
                answer.contains(&[NodeId(a - 1), NodeId(b - 1)]),
                "missing tuple (v{a}, v{b})"
            );
        }
    }

    #[test]
    fn conjunctive_pc_query() {
        // label(a) / label(b) with b as output, PC edge.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        let b2 = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        gb.add_edge(a1, b1);
        gb.add_edge(a1, c);
        gb.add_edge(c, b2);
        let g = gb.build();

        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Child, AttrPredicate::label("b"));
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let ans = evaluate(&q, &g);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[b1]));

        // Same query with an AD edge also finds b2.
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let ans = evaluate(&q, &g);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[b2]));
    }

    #[test]
    fn negation_excludes_matches() {
        // Root a with predicate child !b.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node_with_label("a");
        let a2 = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        gb.add_edge(a1, b1);
        let g = gb.build();

        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let p = qb.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        qb.set_structural(root, BoolExpr::not(BoolExpr::Var(p.var())));
        qb.mark_output(root);
        let q = qb.build().unwrap();
        let ans = evaluate(&q, &g);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[a2]));
        assert!(!ans.contains(&[a1]));
    }

    #[test]
    fn disjunction_accepts_either_branch() {
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node_with_label("a"); // has b child
        let a2 = gb.add_node_with_label("a"); // has c child
        let a3 = gb.add_node_with_label("a"); // has neither
        let b1 = gb.add_node_with_label("b");
        let c1 = gb.add_node_with_label("c");
        gb.add_edge(a1, b1);
        gb.add_edge(a2, c1);
        let _ = a3;
        let g = gb.build();

        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let pb = qb.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let pc = qb.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        qb.set_structural(
            root,
            BoolExpr::or2(BoolExpr::Var(pb.var()), BoolExpr::Var(pc.var())),
        );
        qb.mark_output(root);
        let q = qb.build().unwrap();
        let ans = evaluate(&q, &g);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn query_over_cyclic_graph() {
        // a -> b -> a cycle: with an AD edge, each a reaches the b.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        gb.add_edge(a1, b1);
        gb.add_edge(b1, a1);
        let g = gb.build();
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let ans = evaluate(&q, &g);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[a1, b1]));
    }
}
