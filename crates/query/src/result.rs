//! Answer representation shared by every evaluation algorithm.

use std::collections::BTreeSet;

use gtpq_graph::NodeId;

use crate::node::QueryNodeId;

/// The answer `Q(G)` to a GTPQ: a set of tuples, each holding the images of
/// the output nodes of one match.
///
/// Tuples follow the order of [`output`](ResultSet::output); the set is kept
/// sorted/deduplicated so result sets from different algorithms compare with
/// plain equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultSet {
    /// The output query nodes, in tuple-coordinate order.
    pub output: Vec<QueryNodeId>,
    /// The result tuples.
    pub tuples: BTreeSet<Vec<NodeId>>,
}

impl ResultSet {
    /// Creates an empty result set over the given output nodes.
    pub fn new(output: Vec<QueryNodeId>) -> Self {
        Self {
            output,
            tuples: BTreeSet::new(),
        }
    }

    /// Inserts a tuple (must have one image per output node).
    pub fn insert(&mut self, tuple: Vec<NodeId>) {
        debug_assert_eq!(tuple.len(), self.output.len());
        self.tuples.insert(tuple);
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether the tuple is part of the answer.
    pub fn contains(&self, tuple: &[NodeId]) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterates over the result tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<NodeId>> {
        self.tuples.iter()
    }

    /// Whether two result sets are the same answer, tolerating a different
    /// ordering of the output coordinates.
    pub fn same_answer(&self, other: &ResultSet) -> bool {
        if self.output.len() != other.output.len() {
            return false;
        }
        // Map other's coordinate order onto ours.
        let Some(perm): Option<Vec<usize>> = self
            .output
            .iter()
            .map(|u| other.output.iter().position(|o| o == u))
            .collect()
        else {
            return false;
        };
        if self.tuples.len() != other.tuples.len() {
            return false;
        }
        other
            .tuples
            .iter()
            .map(|t| perm.iter().map(|&i| t[i]).collect::<Vec<_>>())
            .all(|t| self.tuples.contains(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut r = ResultSet::new(vec![QueryNodeId(1), QueryNodeId(2)]);
        r.insert(vec![NodeId(3), NodeId(4)]);
        r.insert(vec![NodeId(3), NodeId(4)]);
        r.insert(vec![NodeId(5), NodeId(6)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[NodeId(3), NodeId(4)]));
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn same_answer_tolerates_coordinate_permutations() {
        let mut a = ResultSet::new(vec![QueryNodeId(1), QueryNodeId(2)]);
        a.insert(vec![NodeId(10), NodeId(20)]);
        let mut b = ResultSet::new(vec![QueryNodeId(2), QueryNodeId(1)]);
        b.insert(vec![NodeId(20), NodeId(10)]);
        assert!(a.same_answer(&b));
        b.insert(vec![NodeId(21), NodeId(11)]);
        assert!(!a.same_answer(&b));
        let c = ResultSet::new(vec![QueryNodeId(3)]);
        assert!(!a.same_answer(&c));
    }
}
