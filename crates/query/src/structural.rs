//! Derived structural predicates and structural relations between query nodes.
//!
//! Everything in §3 of the paper is phrased in terms of formulas derived from
//! the per-node structural predicates:
//!
//! * the *extended* predicate `fext(u)` conjoins the backbone-children
//!   variables (provided by [`Gtpq::fext`]),
//! * *independently-constraint nodes* (ICN) are nodes whose variable can
//!   actually influence their parent's predicate,
//! * the *transitive* predicate `ftr(u)` inlines the (ICN) children's
//!   predicates, and
//! * the *complete* predicate `fcs(u)` additionally accounts for
//!   unsatisfiable attribute predicates and for subsumption between sibling
//!   subtrees.
//!
//! The similarity (`⊳`) and subsumption (`⊴`) relations between query nodes
//! are defined here as well; they feed both `fcs` and the
//! containment/minimization algorithms in `gtpq-analysis`.

use std::collections::HashMap;

use gtpq_logic::transform::{rename_vars, substitute_const, substitute_map};
use gtpq_logic::{implies, is_satisfiable, BoolExpr, VarId};

use crate::node::{EdgeKind, QueryNodeId};
use crate::query::Gtpq;

/// Cached structural analysis of one query.
#[derive(Clone, Debug)]
pub struct StructuralAnalysis {
    /// Whether each node is an independently-constraint node.
    pub independently_constraint: Vec<bool>,
    /// Transitive structural predicate `ftr(u)` of each node.
    pub transitive: Vec<BoolExpr>,
    /// Complete structural predicate `fcs(u)` of each node.
    pub complete: Vec<BoolExpr>,
}

impl StructuralAnalysis {
    /// Runs the full analysis for `q`.
    pub fn new(q: &Gtpq) -> Self {
        let independently_constraint = independently_constraint_nodes(q);
        let transitive = transitive_predicates(q, &independently_constraint);
        let complete = q
            .node_ids()
            .map(|u| complete_predicate(q, u, &independently_constraint, &transitive))
            .collect();
        Self {
            independently_constraint,
            transitive,
            complete,
        }
    }

    /// `fcs` of the root node.
    pub fn root_complete(&self) -> &BoolExpr {
        &self.complete[0]
    }

    /// Whether `u` is an independently-constraint node.
    pub fn is_icn(&self, u: QueryNodeId) -> bool {
        self.independently_constraint[u.index()]
    }
}

/// Computes which query nodes are *independently-constraint nodes*.
///
/// A node `u` with parent `u'` is independently constraint when
/// `(fext(u')[p_u/1] ⊕ fext(u')[p_u/0]) ∧ fs(u)` is satisfiable — i.e. the
/// truth value of `p_u` can change the parent's predicate while `u`'s own
/// predicate can still hold — and all its ancestors are independently
/// constraint.  The extended predicate is used so backbone children (whose
/// variables are implicit conjuncts) are ICNs whenever their own predicate is
/// satisfiable, matching the paper's remark.
pub fn independently_constraint_nodes(q: &Gtpq) -> Vec<bool> {
    let mut icn = vec![false; q.size()];
    for u in q.subtree(q.root()) {
        let own_ok = is_satisfiable(q.fs(u));
        match q.parent(u) {
            None => icn[u.index()] = own_ok,
            Some(parent) => {
                if !icn[parent.index()] {
                    continue;
                }
                let fext = q.fext(parent);
                let flips = BoolExpr::xor(
                    substitute_const(&fext, u.var(), true),
                    substitute_const(&fext, u.var(), false),
                );
                icn[u.index()] = is_satisfiable(&BoolExpr::and2(flips, q.fs(u).clone())) && own_ok;
            }
        }
    }
    icn
}

/// Computes the transitive structural predicate `ftr(u)` for every node, in a
/// bottom-up sweep: in `fext(u)`, each variable of an independently-constraint
/// child `u'` is replaced by `p_{u'} ∧ ftr(u')`.
pub fn transitive_predicates(q: &Gtpq, icn: &[bool]) -> Vec<BoolExpr> {
    let mut ftr: Vec<BoolExpr> = vec![BoolExpr::True; q.size()];
    for u in q.bottom_up_order() {
        if q.node(u).is_leaf() || !icn[u.index()] {
            ftr[u.index()] = q.fext(u);
            continue;
        }
        let mut map: HashMap<VarId, BoolExpr> = HashMap::new();
        for child in q.children(u) {
            if icn[child.index()] {
                map.insert(
                    child.var(),
                    BoolExpr::and2(BoolExpr::Var(child.var()), ftr[child.index()].clone()),
                );
            }
        }
        ftr[u.index()] = substitute_map(&q.fext(u), &map);
    }
    ftr
}

/// The paper's similarity relation `u1 ⊳ u2` ("u2 is similar to u1").
///
/// Intuitively: any data node that can serve as an image of `u2`'s subtree can
/// also serve as an image of `u1`'s subtree.
pub fn similar(q: &Gtpq, u1: QueryNodeId, u2: QueryNodeId, icn: &[bool], ftr: &[BoolExpr]) -> bool {
    similar_with_mapping(q, u1, u2, icn, ftr).is_some()
}

/// Like [`similar`], also returning the descendant mapping used to align the
/// two subtrees (from descendants of `u1` to descendants of `u2`).
pub fn similar_with_mapping(
    q: &Gtpq,
    u1: QueryNodeId,
    u2: QueryNodeId,
    icn: &[bool],
    ftr: &[BoolExpr],
) -> Option<HashMap<QueryNodeId, QueryNodeId>> {
    if u1 == u2 {
        // A node is trivially similar to itself with the identity mapping.
        return Some(HashMap::new());
    }
    // Condition (1): u2 ⊢ u1 on attribute predicates.
    if !q.node(u1).attr.entailed_by(&q.node(u2).attr) {
        return None;
    }
    // Condition (2): recursively match ICN children of u1 into u2's subtree.
    let mut mapping: HashMap<QueryNodeId, QueryNodeId> = HashMap::new();
    mapping.insert(u1, u2);
    for &child in q.children(u1) {
        if !icn[child.index()] {
            continue;
        }
        let candidates: Vec<QueryNodeId> = match q.incoming_edge(child) {
            Some(EdgeKind::Child) => q.children(u2).to_vec(),
            _ => q.descendants(u2),
        };
        let mut matched = false;
        for cand in candidates {
            if let Some(sub) = similar_with_mapping(q, child, cand, icn, ftr) {
                mapping.insert(child, cand);
                for (k, v) in sub {
                    mapping.entry(k).or_insert(v);
                }
                matched = true;
                break;
            }
        }
        if !matched {
            return None;
        }
    }
    // Condition (3): ftr(u2) → ftr(u1)[descendants renamed along the mapping].
    let rename: HashMap<VarId, VarId> = mapping
        .iter()
        .map(|(from, to)| (from.var(), to.var()))
        .collect();
    let renamed = rename_vars(&ftr[u1.index()], &rename);
    if !implies(&ftr[u2.index()], &renamed) {
        return None;
    }
    Some(mapping)
}

/// The paper's subsumption relation `u1 ⊴ u2` ("u1 is subsumed by u2"):
/// `u1 ⊳ u2`, the parent of `u1` is the lowest common ancestor of the two
/// nodes, and the edge kinds are compatible (a PC child can only be subsumed
/// by another PC child of the same parent).
pub fn subsumed(
    q: &Gtpq,
    u1: QueryNodeId,
    u2: QueryNodeId,
    icn: &[bool],
    ftr: &[BoolExpr],
) -> bool {
    if u1 == u2 {
        return false;
    }
    let Some(parent) = q.parent(u1) else {
        return false;
    };
    if q.lowest_common_ancestor(u1, u2) != parent {
        return false;
    }
    match q.incoming_edge(u1) {
        Some(EdgeKind::Child) => {
            if q.parent(u2) != Some(parent) || q.incoming_edge(u2) != Some(EdgeKind::Child) {
                return false;
            }
        }
        _ => {
            // u2 must be a descendant of the common parent (it is, since the
            // LCA is `parent` and u2 != parent).
            if !q.is_ancestor(parent, u2) {
                return false;
            }
        }
    }
    similar(q, u1, u2, icn, ftr)
}

/// Computes the complete structural predicate `fcs(u)`.
///
/// Starting from `ftr(u)`: variables of descendants with unsatisfiable
/// attribute predicates are set to false, and for every pair of nodes `u1`,
/// `u2` in two distinct subtrees of `u` with `u2 ⊴ u1`, the clause
/// `¬p_{u1} ∨ (p_{u2} ∧ fext(u2))` is conjoined.
pub fn complete_predicate(q: &Gtpq, u: QueryNodeId, icn: &[bool], ftr: &[BoolExpr]) -> BoolExpr {
    let mut fcs = ftr[u.index()].clone();
    for d in q.descendants(u) {
        if !q.node(d).attr.is_satisfiable() {
            fcs = substitute_const(&fcs, d.var(), false);
        }
    }
    // Pairs in distinct child subtrees of u.
    let children = q.children(u).to_vec();
    for (i, &c1) in children.iter().enumerate() {
        for (j, &c2) in children.iter().enumerate() {
            if i == j {
                continue;
            }
            let subtree1 = q.subtree(c1);
            let subtree2 = q.subtree(c2);
            for &u1 in &subtree1 {
                for &u2 in &subtree2 {
                    if subsumed(q, u2, u1, icn, ftr) {
                        fcs = BoolExpr::and2(
                            fcs,
                            BoolExpr::or2(
                                BoolExpr::not(BoolExpr::Var(u1.var())),
                                BoolExpr::and2(BoolExpr::Var(u2.var()), q.fext(u2)),
                            ),
                        );
                    }
                }
            }
        }
    }
    fcs
}

#[cfg(test)]
mod tests {
    use gtpq_logic::equivalent;

    use crate::builder::GtpqBuilder;
    use crate::fixtures::example_query;
    use crate::predicate::AttrPredicate;

    use super::*;

    #[test]
    fn example_query_all_nodes_are_icn() {
        let q = example_query();
        let icn = independently_constraint_nodes(&q);
        assert!(icn.iter().all(|&b| b), "Example 4: all nodes are ICNs");
    }

    #[test]
    fn example_query_transitive_predicate_of_u3() {
        // Example 4: ftr(u3) substitutes p_u7 ∧ (p_u9 ∨ p_u10) for p_u7.
        let q = example_query();
        let icn = independently_constraint_nodes(&q);
        let ftr = transitive_predicates(&q, &icn);
        let u3 = QueryNodeId(2);
        let expected = BoolExpr::and2(
            BoolExpr::var(3), // backbone child u4
            BoolExpr::or2(
                BoolExpr::not(BoolExpr::var(5)),
                BoolExpr::and2(
                    BoolExpr::and2(
                        BoolExpr::var(6),
                        BoolExpr::or2(BoolExpr::var(8), BoolExpr::var(9)),
                    ),
                    BoolExpr::var(7),
                ),
            ),
        );
        assert!(
            equivalent(&ftr[u3.index()], &expected),
            "ftr(u3) = {}",
            ftr[u3.index()]
        );
    }

    #[test]
    fn example_query_root_complete_predicate_is_satisfiable() {
        let q = example_query();
        let analysis = StructuralAnalysis::new(&q);
        assert!(is_satisfiable(analysis.root_complete()));
        // Expected root formula from Example 4 (adapted to 0-based ids):
        // p1 & p4 & p2 & p3 & (!p5 | (p6 & (p8|p9) & p7)).
        let expected = BoolExpr::and([
            BoolExpr::var(1),
            BoolExpr::var(4),
            BoolExpr::var(2),
            BoolExpr::var(3),
            BoolExpr::or2(
                BoolExpr::not(BoolExpr::var(5)),
                BoolExpr::and([
                    BoolExpr::var(6),
                    BoolExpr::or2(BoolExpr::var(8), BoolExpr::var(9)),
                    BoolExpr::var(7),
                ]),
            ),
        ]);
        assert!(
            equivalent(analysis.root_complete(), &expected),
            "fcs(root) = {}",
            analysis.root_complete()
        );
    }

    #[test]
    fn non_independently_constraint_node_is_detected() {
        // fs(root) = (p1 & p2) | (!p1 & p2): p1 cannot influence the outcome.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(
            root,
            BoolExpr::or2(
                BoolExpr::and2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
                BoolExpr::and2(
                    BoolExpr::not(BoolExpr::Var(p1.var())),
                    BoolExpr::Var(p2.var()),
                ),
            ),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let icn = independently_constraint_nodes(&q);
        assert!(icn[root.index()]);
        assert!(!icn[p1.index()], "p1 flips nothing, so it is not an ICN");
        assert!(icn[p2.index()]);
    }

    #[test]
    fn descendants_of_non_icn_are_not_icn() {
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p1c = b.predicate_child(p1, EdgeKind::Descendant, AttrPredicate::label("d"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("c"));
        b.set_structural(
            root,
            BoolExpr::or2(
                BoolExpr::and2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
                BoolExpr::and2(
                    BoolExpr::not(BoolExpr::Var(p1.var())),
                    BoolExpr::Var(p2.var()),
                ),
            ),
        );
        b.set_structural(p1, BoolExpr::Var(p1c.var()));
        b.mark_output(root);
        let q = b.build().unwrap();
        let icn = independently_constraint_nodes(&q);
        assert!(!icn[p1.index()]);
        assert!(!icn[p1c.index()], "children of non-ICNs are non-ICNs");
    }

    #[test]
    fn similarity_between_identical_siblings() {
        // Root with two AD predicate children with identical label predicates:
        // each is similar to (and subsumed by) the other.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let p1 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let p2 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(
            root,
            BoolExpr::and2(BoolExpr::Var(p1.var()), BoolExpr::Var(p2.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let icn = independently_constraint_nodes(&q);
        let ftr = transitive_predicates(&q, &icn);
        assert!(similar(&q, p1, p2, &icn, &ftr));
        assert!(similar(&q, p2, p1, &icn, &ftr));
        assert!(subsumed(&q, p1, p2, &icn, &ftr));
        assert!(subsumed(&q, p2, p1, &icn, &ftr));
    }

    #[test]
    fn pc_child_is_not_subsumed_by_ad_descendant() {
        // u2 is a PC child of the root; u6 is an AD child: Example 4's Q2 case.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let u2 = b.predicate_child(root, EdgeKind::Child, AttrPredicate::label("b"));
        let u6 = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        b.set_structural(
            root,
            BoolExpr::and2(BoolExpr::Var(u2.var()), BoolExpr::Var(u6.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let icn = independently_constraint_nodes(&q);
        let ftr = transitive_predicates(&q, &icn);
        assert!(similar(&q, u2, u6, &icn, &ftr));
        assert!(
            !subsumed(&q, u2, u6, &icn, &ftr),
            "PC child needs a PC sibling"
        );
        assert!(
            subsumed(&q, u6, u2, &icn, &ftr),
            "AD child subsumed by PC sibling"
        );
    }

    #[test]
    fn broader_label_is_similar_to_narrower() {
        // u1 asks for year <= 2010 (broader), u2 for year <= 2005 (narrower):
        // u2's matches all satisfy u1, so u1 ⊳ u2 but not conversely.
        use crate::predicate::CmpOp;
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let broad = b.predicate_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any().and("year", CmpOp::Le, 2010.into()),
        );
        let narrow = b.predicate_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any().and("year", CmpOp::Le, 2005.into()),
        );
        b.set_structural(
            root,
            BoolExpr::and2(BoolExpr::Var(broad.var()), BoolExpr::Var(narrow.var())),
        );
        b.mark_output(root);
        let q = b.build().unwrap();
        let icn = independently_constraint_nodes(&q);
        let ftr = transitive_predicates(&q, &icn);
        assert!(similar(&q, broad, narrow, &icn, &ftr));
        assert!(!similar(&q, narrow, broad, &icn, &ftr));
    }

    #[test]
    fn complete_predicate_zeroes_unsatisfiable_descendants() {
        use crate::predicate::CmpOp;
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let impossible = b.predicate_child(
            root,
            EdgeKind::Descendant,
            AttrPredicate::any()
                .and("year", CmpOp::Gt, 10.into())
                .and("year", CmpOp::Lt, 5.into()),
        );
        b.set_structural(root, BoolExpr::Var(impossible.var()));
        b.mark_output(root);
        let q = b.build().unwrap();
        let analysis = StructuralAnalysis::new(&q);
        assert!(
            !is_satisfiable(analysis.root_complete()),
            "the root requires an impossible descendant"
        );
    }
}
