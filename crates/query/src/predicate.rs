//! Attribute predicates: conjunctions of `attribute op constant` comparisons.

use gtpq_graph::{intersect_many, AttrValue, DataGraph, NodeId, Symbol};
use serde::{Deserialize, Serialize};

/// The six comparison operators of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering of `left` relative to `right`.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A single atomic comparison `attr op value`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttrComparison {
    /// Attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant compared against.
    pub value: AttrValue,
}

impl std::fmt::Display for AttrComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A similarity conjunct `sim(attr, [q0, q1, ...]) op t` over an
/// embedding-valued attribute.
///
/// `<` / `<=` compare the **L2 distance** between the stored vector and
/// `query` against `t` (a radius query); `>` / `>=` compare the **cosine
/// similarity** (a nearness query).  `=` / `!=` are rejected by the parser
/// and never match.  A node whose attribute is missing, non-vector, or of a
/// different dimensionality than `query` does not match.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimComparison {
    /// Attribute name.
    pub attr: String,
    /// The query vector.
    pub query: Vec<f32>,
    /// Comparison operator applied to the distance (`<`, `<=`) or cosine
    /// similarity (`>`, `>=`).
    pub op: CmpOp,
    /// Threshold compared against.
    pub threshold: f32,
}

impl SimComparison {
    /// Whether a stored attribute value satisfies this conjunct.  This is
    /// the exact semantics the pivot-filtered access path must reproduce
    /// bit for bit (same [`gtpq_sim::l2`] / [`gtpq_sim::cosine`] kernels as
    /// [`gtpq_graph::SimTable`]'s verification step).
    pub fn matches_value(&self, value: &AttrValue) -> bool {
        let Some(x) = value.as_vec() else {
            return false;
        };
        if x.len() != self.query.len() {
            return false;
        }
        match self.op {
            CmpOp::Lt => gtpq_sim::l2(x, &self.query) < self.threshold,
            CmpOp::Le => gtpq_sim::l2(x, &self.query) <= self.threshold,
            CmpOp::Gt => gtpq_sim::cosine(x, &self.query) > self.threshold,
            CmpOp::Ge => gtpq_sim::cosine(x, &self.query) >= self.threshold,
            CmpOp::Eq | CmpOp::Ne => false,
        }
    }

    /// Whether some vector could satisfy this conjunct at all: L2 distances
    /// are non-negative and cosine similarity never exceeds 1.
    fn is_satisfiable(&self) -> bool {
        match self.op {
            CmpOp::Lt => self.threshold > 0.0,
            CmpOp::Le => self.threshold >= 0.0,
            CmpOp::Gt => self.threshold < 1.0,
            CmpOp::Ge => self.threshold <= 1.0,
            CmpOp::Eq | CmpOp::Ne => false,
        }
    }

    /// Bit-exact query-vector equality (NaN-safe, used by entailment).
    fn same_query(&self, other: &SimComparison) -> bool {
        self.query.len() == other.query.len()
            && self
                .query
                .iter()
                .zip(&other.query)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl std::fmt::Display for SimComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sim({}, [", self.attr)?;
        for (i, x) in self.query.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "]) {} {}", self.op, self.threshold)
    }
}

/// The outcome of index-backed candidate selection
/// ([`AttrPredicate::select_candidates`]).
#[derive(Clone, Debug)]
pub struct CandidateSelection {
    /// The selected candidates, sorted by node id.
    pub nodes: Vec<NodeId>,
    /// Whether the set was served without scanning per-node attribute data
    /// (posting-list intersections, or trivially for the wildcard).
    pub from_index: bool,
    /// Number of nodes whose attribute tuples were individually checked
    /// (zero when `from_index`).
    pub verified: u64,
    /// Number of inverted-index posting entries read.
    pub posting_entries: u64,
    /// Indexed vectors dismissed by the pivot filter's triangle-inequality
    /// screen without an exact distance computation.
    pub sim_pivot_filtered: u64,
    /// Pivot-filter survivors whose exact distance / cosine was computed.
    pub sim_verified: u64,
}

/// An attribute predicate `fa(u)`: a conjunction of atomic comparisons and
/// similarity conjuncts.
///
/// The empty predicate is satisfied by every data node (wildcard / `*`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttrPredicate {
    /// The plain comparison conjuncts.
    pub comparisons: Vec<AttrComparison>,
    /// The similarity conjuncts.
    pub sims: Vec<SimComparison>,
}

impl AttrPredicate {
    /// The wildcard predicate satisfied by every node.
    pub fn any() -> Self {
        Self::default()
    }

    /// Predicate `label = value` — the common case in the synthetic datasets.
    pub fn label(value: &str) -> Self {
        Self::eq(gtpq_graph::LABEL_ATTR, AttrValue::str(value))
    }

    /// Predicate `attr = value`.
    pub fn eq(attr: &str, value: AttrValue) -> Self {
        Self {
            comparisons: vec![AttrComparison {
                attr: attr.to_owned(),
                op: CmpOp::Eq,
                value,
            }],
            sims: Vec::new(),
        }
    }

    /// Adds a comparison, returning `self` for chaining.
    pub fn and(mut self, attr: &str, op: CmpOp, value: AttrValue) -> Self {
        self.comparisons.push(AttrComparison {
            attr: attr.to_owned(),
            op,
            value,
        });
        self
    }

    /// Adds a similarity conjunct `sim(attr, query) op threshold`, returning
    /// `self` for chaining (`<`/`<=` = L2 distance, `>`/`>=` = cosine).
    pub fn and_sim(mut self, attr: &str, op: CmpOp, query: Vec<f32>, threshold: f32) -> Self {
        self.sims.push(SimComparison {
            attr: attr.to_owned(),
            query,
            op,
            threshold,
        });
        self
    }

    /// Whether data node `v` of graph `g` satisfies the predicate (`v ∼ u`).
    ///
    /// Every comparison must find an attribute of the same name whose value
    /// compares as required; comparisons across value kinds fail.
    pub fn matches(&self, g: &DataGraph, v: NodeId) -> bool {
        self.comparisons.iter().all(|cmp| {
            g.attribute_value(v, &cmp.attr)
                .and_then(|actual| actual.partial_cmp_same_kind(&cmp.value))
                .is_some_and(|ord| cmp.op.eval(ord))
        }) && self.sims.iter().all(|sim| {
            g.attribute_value(v, &sim.attr)
                .is_some_and(|actual| sim.matches_value(actual))
        })
    }

    /// Whether the predicate is satisfiable *in isolation*: no two comparisons
    /// on the same attribute contradict each other.
    ///
    /// Used by the satisfiability and minimization algorithms (§3), which
    /// remove query nodes whose attribute predicate can never hold.
    pub fn is_satisfiable(&self) -> bool {
        // A similarity conjunct asking for a negative distance or a cosine
        // above 1 can never hold (NaN thresholds fail every comparison).
        if self.sims.iter().any(|s| !s.is_satisfiable()) {
            return false;
        }
        // Group comparisons by attribute and check that the implied interval /
        // (in)equality constraints are consistent.
        let mut attrs: Vec<&str> = self.comparisons.iter().map(|c| c.attr.as_str()).collect();
        attrs.sort_unstable();
        attrs.dedup();
        for attr in attrs {
            let cs: Vec<&AttrComparison> =
                self.comparisons.iter().filter(|c| c.attr == attr).collect();
            if !Self::attr_group_satisfiable(&cs) {
                return false;
            }
        }
        true
    }

    fn attr_group_satisfiable(cs: &[&AttrComparison]) -> bool {
        // Mixed kinds on one attribute can never all hold.
        let all_int = cs.iter().all(|c| matches!(c.value, AttrValue::Int(_)));
        let all_str = cs.iter().all(|c| matches!(c.value, AttrValue::Str(_)));
        if !all_int && !all_str {
            return false;
        }
        if all_str {
            // Only handle equality-style reasoning for strings.
            let eqs: Vec<&AttrValue> = cs
                .iter()
                .filter(|c| c.op == CmpOp::Eq)
                .map(|c| &c.value)
                .collect();
            if eqs.windows(2).any(|w| w[0] != w[1]) {
                return false;
            }
            if let Some(eq) = eqs.first() {
                if cs.iter().any(|c| c.op == CmpOp::Ne && &c.value == *eq) {
                    return false;
                }
            }
            // Range operators over strings: conservatively treat as satisfiable
            // unless they directly contradict an equality.
            if let Some(eq) = eqs.first() {
                for c in cs {
                    if let Some(ord) = eq.partial_cmp_same_kind(&c.value) {
                        if !c.op.eval(ord) {
                            return false;
                        }
                    }
                }
            }
            return true;
        }
        // Integers: compute the feasible interval plus not-equal points.
        let mut lo = i64::MIN;
        let mut hi = i64::MAX;
        let mut eq: Option<i64> = None;
        let mut ne: Vec<i64> = Vec::new();
        for c in cs {
            let AttrValue::Int(val) = c.value else {
                unreachable!("kind checked above")
            };
            match c.op {
                CmpOp::Lt => hi = hi.min(val.saturating_sub(1)),
                CmpOp::Le => hi = hi.min(val),
                CmpOp::Gt => lo = lo.max(val.saturating_add(1)),
                CmpOp::Ge => lo = lo.max(val),
                CmpOp::Eq => match eq {
                    Some(e) if e != val => return false,
                    _ => eq = Some(val),
                },
                CmpOp::Ne => ne.push(val),
            }
        }
        if lo > hi {
            return false;
        }
        if let Some(e) = eq {
            if e < lo || e > hi || ne.contains(&e) {
                return false;
            }
            return true;
        }
        // The interval must contain a point not excluded by !=.
        let width = (hi as i128) - (lo as i128) + 1;
        ne.sort_unstable();
        ne.dedup();
        let excluded = ne.iter().filter(|&&x| x >= lo && x <= hi).count() as i128;
        width > excluded
    }

    /// Selects the candidate set `{v | v ∼ self}` through the graph's
    /// attribute inverted index.
    ///
    /// Every comparison contributes a sorted node set:
    /// * `=` probes the exact `(attr, value)` posting list,
    /// * `<, <=, >, >=` over integers binary-search the per-attribute sorted
    ///   value run,
    /// * `!=` and string ranges fall back to the per-attribute-name posting
    ///   list (every node carrying the attribute) and mark the selection for
    ///   per-node verification.
    ///
    /// The sets are intersected with a galloping merge (smallest list first);
    /// when any comparison was only approximated, the survivors are verified
    /// with [`matches`](Self::matches).  Only the wildcard predicate has no
    /// indexable comparison — it selects every node without touching any
    /// attribute data.
    pub fn select_candidates(&self, g: &DataGraph) -> CandidateSelection {
        if self.comparisons.is_empty() && self.sims.is_empty() {
            // Wildcard: every node matches and no attribute data is touched,
            // so the selection counts as served without scanning.
            return CandidateSelection {
                nodes: g.nodes().collect(),
                from_index: true,
                verified: 0,
                posting_entries: 0,
                sim_pivot_filtered: 0,
                sim_verified: 0,
            };
        }
        let index = g.attr_index();
        let mut slices: Vec<&[NodeId]> = Vec::new();
        // Integer range bounds merged per attribute, so `year >= a AND
        // year <= b` costs one index probe of the final interval instead of
        // two near-full runs.  i128 bounds avoid the ±1 overflow at the i64
        // extremes.
        let mut int_bounds: Vec<(Symbol, i128, i128)> = Vec::new();
        let mut posting_entries = 0u64;
        let mut needs_verify = false;
        let tighten =
            |sym: Symbol, lo: i128, hi: i128, bounds: &mut Vec<(Symbol, i128, i128)>| match bounds
                .iter_mut()
                .find(|(s, _, _)| *s == sym)
            {
                Some((_, blo, bhi)) => {
                    *blo = (*blo).max(lo);
                    *bhi = (*bhi).min(hi);
                }
                None => bounds.push((sym, lo, hi)),
            };
        for cmp in &self.comparisons {
            let Some(sym) = g.symbols().get(&cmp.attr) else {
                // The attribute never occurs in the graph: nothing matches.
                return CandidateSelection {
                    nodes: Vec::new(),
                    from_index: true,
                    verified: 0,
                    posting_entries,
                    sim_pivot_filtered: 0,
                    sim_verified: 0,
                };
            };
            match (cmp.op, &cmp.value) {
                (CmpOp::Eq, value) => {
                    let posting = index.nodes_eq(sym, value);
                    posting_entries += posting.len() as u64;
                    slices.push(posting);
                }
                (CmpOp::Lt, AttrValue::Int(v)) => {
                    tighten(sym, i64::MIN as i128, *v as i128 - 1, &mut int_bounds)
                }
                (CmpOp::Le, AttrValue::Int(v)) => {
                    tighten(sym, i64::MIN as i128, *v as i128, &mut int_bounds)
                }
                (CmpOp::Gt, AttrValue::Int(v)) => {
                    tighten(sym, *v as i128 + 1, i64::MAX as i128, &mut int_bounds)
                }
                (CmpOp::Ge, AttrValue::Int(v)) => {
                    tighten(sym, *v as i128, i64::MAX as i128, &mut int_bounds)
                }
                _ => {
                    // `!=` or a range over strings: restrict to the nodes
                    // carrying the attribute, verify the survivors per node.
                    let posting = index.nodes_with_name(sym);
                    posting_entries += posting.len() as u64;
                    slices.push(posting);
                    needs_verify = true;
                }
            }
        }
        let ranges: Vec<Vec<NodeId>> = int_bounds
            .iter()
            .map(|&(sym, lo, hi)| {
                if lo > hi {
                    return Vec::new(); // contradictory bounds
                }
                let run = index.nodes_int_range(sym, lo as i64, hi as i64);
                posting_entries += run.len() as u64;
                run
            })
            .collect();
        slices.extend(ranges.iter().map(Vec::as_slice));

        // Similarity conjuncts.  A table of the query's dimensionality
        // answers exactly through the pivot filter (block-and-verify: the
        // result needs no further per-node check).  With no table — or one
        // of another dimensionality — restrict to the nodes carrying the
        // attribute and verify the survivors per node.
        let mut sim_pivot_filtered = 0u64;
        let mut sim_verified = 0u64;
        let mut sim_sets: Vec<Vec<NodeId>> = Vec::new();
        for sim in &self.sims {
            match g.sim_table(&sim.attr) {
                Some(table) if table.dim() == sim.query.len() => {
                    let m = match sim.op {
                        CmpOp::Lt => table.within_l2(&sim.query, sim.threshold, false),
                        CmpOp::Le => table.within_l2(&sim.query, sim.threshold, true),
                        CmpOp::Gt => table.above_cosine(&sim.query, sim.threshold, false),
                        CmpOp::Ge => table.above_cosine(&sim.query, sim.threshold, true),
                        CmpOp::Eq | CmpOp::Ne => gtpq_graph::SimMatches::default(),
                    };
                    sim_pivot_filtered += m.pruned;
                    sim_verified += m.verified;
                    sim_sets.push(m.nodes);
                }
                _ => {
                    let posting = g.nodes_with_attr_name(&sim.attr);
                    posting_entries += posting.len() as u64;
                    sim_sets.push(posting.to_vec());
                    needs_verify = true;
                }
            }
        }
        slices.extend(sim_sets.iter().map(Vec::as_slice));

        let mut nodes = intersect_many(&slices, g.node_count());
        let mut verified = 0u64;
        if needs_verify {
            verified = nodes.len() as u64;
            nodes.retain(|&v| self.matches(g, v));
        }
        CandidateSelection {
            nodes,
            from_index: !needs_verify,
            verified,
            posting_entries,
            sim_pivot_filtered,
            sim_verified,
        }
    }

    /// Whether every comparison is answered exactly by the inverted index
    /// (no `!=`, no string range): [`select_candidates`](Self::select_candidates)
    /// would return `from_index = true` whenever this holds.
    pub fn is_fully_indexable(&self) -> bool {
        self.sims.is_empty()
            && self.comparisons.iter().all(|cmp| {
                matches!(
                    (cmp.op, &cmp.value),
                    (CmpOp::Eq, _)
                        | (CmpOp::Lt, AttrValue::Int(_))
                        | (CmpOp::Le, AttrValue::Int(_))
                        | (CmpOp::Gt, AttrValue::Int(_))
                        | (CmpOp::Ge, AttrValue::Int(_))
                )
            })
    }

    /// Estimates `|{v | v ∼ self}|` from inverted-index posting lengths
    /// without materializing any candidate set.
    ///
    /// Each comparison contributes an upper bound (exact posting length for
    /// `=`, range-run count for integer ranges, name-posting length for `!=`
    /// and string ranges); a conjunction can only shrink the set, so the
    /// minimum over the contributions is itself an upper bound.  The wildcard
    /// estimates `|V|` exactly.  Cost: O(comparisons · log) — this is the
    /// planner's selectivity oracle, so it must stay far cheaper than
    /// selection itself.
    pub fn estimate_candidates(&self, g: &DataGraph) -> usize {
        let mut est = g.node_count();
        // Integer bounds merge per attribute exactly as in
        // `select_candidates`, so `year >= a AND year <= b` estimates the
        // final interval rather than two loose half-ranges.
        let mut int_bounds: Vec<(&str, i128, i128)> = Vec::new();
        for cmp in &self.comparisons {
            let bound = match (cmp.op, &cmp.value) {
                (CmpOp::Eq, value) => g.posting_len(&cmp.attr, value),
                (CmpOp::Lt, AttrValue::Int(v)) => {
                    merge_bound(&mut int_bounds, &cmp.attr, i64::MIN as i128, *v as i128 - 1);
                    continue;
                }
                (CmpOp::Le, AttrValue::Int(v)) => {
                    merge_bound(&mut int_bounds, &cmp.attr, i64::MIN as i128, *v as i128);
                    continue;
                }
                (CmpOp::Gt, AttrValue::Int(v)) => {
                    merge_bound(&mut int_bounds, &cmp.attr, *v as i128 + 1, i64::MAX as i128);
                    continue;
                }
                (CmpOp::Ge, AttrValue::Int(v)) => {
                    merge_bound(&mut int_bounds, &cmp.attr, *v as i128, i64::MAX as i128);
                    continue;
                }
                _ => g.posting_len_attr_name(&cmp.attr),
            };
            est = est.min(bound);
        }
        for (attr, lo, hi) in int_bounds {
            let bound = if lo > hi {
                0
            } else {
                g.posting_len_int_range(attr, lo as i64, hi as i64)
            };
            est = est.min(bound);
        }
        for sim in &self.sims {
            let bound = match g.sim_table(&sim.attr) {
                // The pivot-table statistic: candidates must land in the
                // first-pivot distance band `[d(q, p0) − r, d(q, p0) + r]`,
                // counted with two binary searches over the sorted run.  It
                // upper-bounds the filter's candidate set, which in turn
                // upper-bounds the exact answer.
                Some(table) if table.dim() == sim.query.len() => match sim.op {
                    CmpOp::Lt | CmpOp::Le => table.estimate_within_l2(&sim.query, sim.threshold),
                    CmpOp::Gt | CmpOp::Ge => table.estimate_above_cosine(&sim.query, sim.threshold),
                    CmpOp::Eq | CmpOp::Ne => 0,
                },
                _ => g.posting_len_attr_name(&sim.attr),
            };
            est = est.min(bound);
        }
        est
    }

    /// The paper's `u2 ⊢ u1` test: for every comparison `A op a1` of `self`
    /// (playing `u1`) there is a comparison `A op a2` of `other` (playing
    /// `u2`) such that any node satisfying `other`'s comparison also satisfies
    /// this one (a2 ≤ a1 for `<`/`<=`, a2 ≥ a1 for `>`/`>=`, equal values for
    /// `=`/`!=`).
    pub fn entailed_by(&self, other: &AttrPredicate) -> bool {
        self.comparisons.iter().all(|c1| {
            other.comparisons.iter().any(|c2| {
                if c1.attr != c2.attr || c1.op != c2.op {
                    return false;
                }
                let Some(ord) = c2.value.partial_cmp_same_kind(&c1.value) else {
                    return false;
                };
                match c1.op {
                    CmpOp::Lt | CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt | CmpOp::Ge => ord != std::cmp::Ordering::Less,
                    CmpOp::Eq | CmpOp::Ne => ord == std::cmp::Ordering::Equal,
                }
            })
        }) && self.sims.iter().all(|s1| {
            // A sim conjunct is entailed by one on the same attribute with a
            // bit-identical query vector and a threshold at least as tight:
            // a smaller radius for distance, a larger floor for cosine.
            other.sims.iter().any(|s2| {
                s1.attr == s2.attr
                    && s1.op == s2.op
                    && s1.same_query(s2)
                    && match s1.op {
                        CmpOp::Lt | CmpOp::Le => s2.threshold <= s1.threshold,
                        CmpOp::Gt | CmpOp::Ge => s2.threshold >= s1.threshold,
                        CmpOp::Eq | CmpOp::Ne => false,
                    }
            })
        })
    }
}

/// Tightens (or inserts) the merged integer interval for `attr`.
fn merge_bound<'a>(bounds: &mut Vec<(&'a str, i128, i128)>, attr: &'a str, lo: i128, hi: i128) {
    match bounds.iter_mut().find(|(a, _, _)| *a == attr) {
        Some((_, blo, bhi)) => {
            *blo = (*blo).max(lo);
            *bhi = (*bhi).min(hi);
        }
        None => bounds.push((attr, lo, hi)),
    }
}

impl std::fmt::Display for AttrPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.comparisons.is_empty() && self.sims.is_empty() {
            return f.write_str("*");
        }
        let mut first = true;
        for c in &self.comparisons {
            if !first {
                f.write_str(" & ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        for s in &self.sims {
            if !first {
                f.write_str(" & ")?;
            }
            first = false;
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;

    use super::*;

    #[test]
    fn matches_label_and_ranges() {
        let mut b = GraphBuilder::new();
        let v = b.add_node_with_attrs([
            ("label", AttrValue::str("proceedings")),
            ("year", AttrValue::int(2005)),
        ]);
        let g = b.build();
        assert!(AttrPredicate::label("proceedings").matches(&g, v));
        assert!(!AttrPredicate::label("inproceedings").matches(&g, v));
        let range = AttrPredicate::any()
            .and("year", CmpOp::Ge, AttrValue::int(2000))
            .and("year", CmpOp::Le, AttrValue::int(2010));
        assert!(range.matches(&g, v));
        let range_miss = AttrPredicate::any().and("year", CmpOp::Gt, AttrValue::int(2005));
        assert!(!range_miss.matches(&g, v));
        assert!(AttrPredicate::any().matches(&g, v));
        // Missing attribute or kind mismatch fails.
        assert!(!AttrPredicate::eq("missing", AttrValue::int(1)).matches(&g, v));
        assert!(!AttrPredicate::eq("year", AttrValue::str("2005")).matches(&g, v));
    }

    #[test]
    fn satisfiability_of_integer_ranges() {
        let ok = AttrPredicate::any()
            .and("year", CmpOp::Ge, AttrValue::int(2000))
            .and("year", CmpOp::Le, AttrValue::int(2010));
        assert!(ok.is_satisfiable());
        let empty = AttrPredicate::any()
            .and("year", CmpOp::Gt, AttrValue::int(2010))
            .and("year", CmpOp::Lt, AttrValue::int(2000));
        assert!(!empty.is_satisfiable());
        let pinched = AttrPredicate::any()
            .and("year", CmpOp::Ge, AttrValue::int(5))
            .and("year", CmpOp::Le, AttrValue::int(5))
            .and("year", CmpOp::Ne, AttrValue::int(5));
        assert!(!pinched.is_satisfiable());
        let eq_conflict = AttrPredicate::any()
            .and("year", CmpOp::Eq, AttrValue::int(3))
            .and("year", CmpOp::Eq, AttrValue::int(4));
        assert!(!eq_conflict.is_satisfiable());
    }

    #[test]
    fn satisfiability_of_string_predicates() {
        let ok = AttrPredicate::label("person");
        assert!(ok.is_satisfiable());
        let conflict = AttrPredicate::label("a").and("label", CmpOp::Eq, AttrValue::str("b"));
        assert!(!conflict.is_satisfiable());
        let ne_conflict = AttrPredicate::label("a").and("label", CmpOp::Ne, AttrValue::str("a"));
        assert!(!ne_conflict.is_satisfiable());
        let mixed_kind =
            AttrPredicate::eq("x", AttrValue::int(1)).and("x", CmpOp::Eq, AttrValue::str("1"));
        assert!(!mixed_kind.is_satisfiable());
    }

    fn scan(p: &AttrPredicate, g: &gtpq_graph::DataGraph) -> Vec<gtpq_graph::NodeId> {
        g.nodes().filter(|&v| p.matches(g, v)).collect()
    }

    #[test]
    fn index_selection_agrees_with_the_scan() {
        let mut b = GraphBuilder::new();
        for (label, year) in [
            ("a", 1999),
            ("b", 2003),
            ("a", 2005),
            ("c", 2005),
            ("a", 2011),
        ] {
            let v = b.add_node_with_label(label);
            b.set_attr(v, "year", AttrValue::int(year));
        }
        let extra = b.add_node(); // carries no attributes at all
        let _ = extra;
        let g = b.build();
        let predicates = [
            AttrPredicate::any(),
            AttrPredicate::label("a"),
            AttrPredicate::label("a").and("year", CmpOp::Ge, AttrValue::int(2005)),
            AttrPredicate::any()
                .and("year", CmpOp::Gt, AttrValue::int(2000))
                .and("year", CmpOp::Lt, AttrValue::int(2011)),
            AttrPredicate::any().and("year", CmpOp::Ne, AttrValue::int(2005)),
            AttrPredicate::any().and("label", CmpOp::Ge, AttrValue::str("b")),
            AttrPredicate::eq("missing", AttrValue::int(1)),
            AttrPredicate::label("a").and("label", CmpOp::Eq, AttrValue::str("b")),
        ];
        for p in &predicates {
            let sel = p.select_candidates(&g);
            assert_eq!(sel.nodes, scan(p, &g), "predicate {p}");
            if sel.from_index {
                assert_eq!(sel.verified, 0, "predicate {p}");
            }
        }
    }

    #[test]
    fn index_selection_reports_its_access_path() {
        let mut b = GraphBuilder::new();
        let v = b.add_node_with_label("x");
        b.set_attr(v, "year", AttrValue::int(2000));
        let g = b.build();
        // Pure equality: fully index-served.
        let sel = AttrPredicate::label("x").select_candidates(&g);
        assert!(sel.from_index);
        assert!(sel.posting_entries > 0);
        // `!=` needs verification against the name posting list.
        let sel = AttrPredicate::any()
            .and("year", CmpOp::Ne, AttrValue::int(1))
            .select_candidates(&g);
        assert!(!sel.from_index);
        assert_eq!(sel.verified, 1);
        assert_eq!(sel.nodes, vec![v]);
        // Wildcard: every node, no attribute data touched — counts as served
        // without scanning.
        let sel = AttrPredicate::any().select_candidates(&g);
        assert!(sel.from_index);
        assert_eq!(sel.verified, 0);
        assert_eq!(sel.posting_entries, 0);
    }

    #[test]
    fn index_selection_handles_extreme_integer_bounds() {
        let mut b = GraphBuilder::new();
        let v = b.add_node();
        b.set_attr(v, "w", AttrValue::int(i64::MIN));
        let g = b.build();
        let lt_min = AttrPredicate::any().and("w", CmpOp::Lt, AttrValue::int(i64::MIN));
        assert!(lt_min.select_candidates(&g).nodes.is_empty());
        let gt_max = AttrPredicate::any().and("w", CmpOp::Gt, AttrValue::int(i64::MAX));
        assert!(gt_max.select_candidates(&g).nodes.is_empty());
        let le_min = AttrPredicate::any().and("w", CmpOp::Le, AttrValue::int(i64::MIN));
        assert_eq!(le_min.select_candidates(&g).nodes, vec![v]);
    }

    #[test]
    fn estimates_upper_bound_the_selection() {
        let mut b = GraphBuilder::new();
        for (label, year) in [
            ("a", 1999),
            ("b", 2003),
            ("a", 2005),
            ("c", 2005),
            ("a", 2011),
        ] {
            let v = b.add_node_with_label(label);
            b.set_attr(v, "year", AttrValue::int(year));
        }
        let _bare = b.add_node();
        let g = b.build();
        let predicates = [
            AttrPredicate::any(),
            AttrPredicate::label("a"),
            AttrPredicate::label("a").and("year", CmpOp::Ge, AttrValue::int(2005)),
            AttrPredicate::any()
                .and("year", CmpOp::Gt, AttrValue::int(2000))
                .and("year", CmpOp::Lt, AttrValue::int(2011)),
            AttrPredicate::any().and("year", CmpOp::Ne, AttrValue::int(2005)),
            AttrPredicate::any().and("label", CmpOp::Ge, AttrValue::str("b")),
            AttrPredicate::eq("missing", AttrValue::int(1)),
            AttrPredicate::any()
                .and("year", CmpOp::Gt, AttrValue::int(2010))
                .and("year", CmpOp::Lt, AttrValue::int(2000)),
        ];
        for p in &predicates {
            let est = p.estimate_candidates(&g);
            let actual = p.select_candidates(&g).nodes.len();
            assert!(est >= actual, "estimate {est} < actual {actual} for {p}");
            assert!(est <= g.node_count(), "estimate blew past |V| for {p}");
        }
        // Fully-indexable estimates are exact (posting lengths are exact and
        // the min over conjuncts only over-approximates multi-attribute
        // conjunctions).
        assert_eq!(AttrPredicate::label("a").estimate_candidates(&g), 3);
        assert_eq!(AttrPredicate::any().estimate_candidates(&g), 6);
    }

    #[test]
    fn indexability_classification() {
        assert!(AttrPredicate::any().is_fully_indexable());
        assert!(AttrPredicate::label("x").is_fully_indexable());
        assert!(AttrPredicate::any()
            .and("year", CmpOp::Ge, AttrValue::int(2000))
            .is_fully_indexable());
        assert!(!AttrPredicate::any()
            .and("year", CmpOp::Ne, AttrValue::int(2000))
            .is_fully_indexable());
        assert!(!AttrPredicate::any()
            .and("label", CmpOp::Ge, AttrValue::str("b"))
            .is_fully_indexable());
    }

    #[test]
    fn entailment_follows_the_paper_rules() {
        // u1 asks year <= 2010, u2 asks year <= 2005: u2 ⊢ u1.
        let u1 = AttrPredicate::any().and("year", CmpOp::Le, AttrValue::int(2010));
        let u2 = AttrPredicate::any().and("year", CmpOp::Le, AttrValue::int(2005));
        assert!(u1.entailed_by(&u2));
        assert!(!u2.entailed_by(&u1));
        // Equal labels entail each other.
        let a = AttrPredicate::label("x");
        assert!(a.entailed_by(&a.clone()));
        // Wildcard is entailed by everything.
        assert!(AttrPredicate::any().entailed_by(&a));
        assert!(!a.entailed_by(&AttrPredicate::any()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AttrPredicate::any().to_string(), "*");
        let p = AttrPredicate::label("person").and("age", CmpOp::Ge, AttrValue::int(18));
        assert_eq!(p.to_string(), "label = person & age >= 18");
        let p = p.and_sim("emb", CmpOp::Gt, vec![0.5, -1.0, 2.25], 0.9);
        assert_eq!(
            p.to_string(),
            "label = person & age >= 18 & sim(emb, [0.5, -1, 2.25]) > 0.9"
        );
        let solo = AttrPredicate::any().and_sim("emb", CmpOp::Lt, vec![1.0], 2.0);
        assert_eq!(solo.to_string(), "sim(emb, [1]) < 2");
    }

    /// A small embedded graph: clustered 4-dim vectors on `emb`, one
    /// off-dimension vector and one non-vector node.
    fn embedded_graph() -> gtpq_graph::DataGraph {
        let mut b = GraphBuilder::new();
        for i in 0..20u32 {
            let v = b.add_node_with_label("doc");
            let base = if i % 2 == 0 { 0.0 } else { 4.0 };
            let emb: Vec<f32> = (0..4).map(|j| base + (i * 4 + j) as f32 * 0.01).collect();
            b.set_attr(v, "emb", AttrValue::Vec(emb));
        }
        let odd = b.add_node_with_label("doc");
        b.set_attr(odd, "emb", AttrValue::Vec(vec![0.0, 0.0]));
        b.add_node_with_label("doc"); // no emb at all
        b.build()
    }

    #[test]
    fn sim_selection_agrees_with_the_scan() {
        let g = embedded_graph();
        let q = vec![0.05f32, 0.06, 0.07, 0.08];
        let predicates = [
            AttrPredicate::any().and_sim("emb", CmpOp::Lt, q.clone(), 1.0),
            AttrPredicate::any().and_sim("emb", CmpOp::Le, q.clone(), 0.5),
            AttrPredicate::any().and_sim("emb", CmpOp::Gt, q.clone(), 0.99),
            AttrPredicate::any().and_sim("emb", CmpOp::Ge, q.clone(), 0.8),
            AttrPredicate::label("doc").and_sim("emb", CmpOp::Lt, q.clone(), 1.0),
            // Off-dimension query: served by the name-posting fallback.
            AttrPredicate::any().and_sim("emb", CmpOp::Lt, vec![0.0, 0.0, 0.0], 10.0),
            AttrPredicate::any().and_sim("emb", CmpOp::Le, vec![0.1, 0.1], 1.0),
            // Unknown attribute: nothing matches.
            AttrPredicate::any().and_sim("missing", CmpOp::Lt, q.clone(), 5.0),
        ];
        for p in &predicates {
            let sel = p.select_candidates(&g);
            assert_eq!(sel.nodes, scan(p, &g), "predicate {p}");
            let est = p.estimate_candidates(&g);
            assert!(
                est >= sel.nodes.len(),
                "estimate {est} < actual {} for {p}",
                sel.nodes.len()
            );
        }
        // A table-served sim reports its filter counters and stays exact
        // without per-node verification.
        let sel = AttrPredicate::any()
            .and_sim("emb", CmpOp::Lt, q.clone(), 1.0)
            .select_candidates(&g);
        assert!(sel.from_index);
        assert_eq!(sel.verified, 0);
        assert!(sel.sim_verified > 0);
        assert_eq!(sel.sim_verified + sel.sim_pivot_filtered, 20);
        // The dimension-fallback path verifies per node instead.
        let sel = AttrPredicate::any()
            .and_sim("emb", CmpOp::Le, vec![0.1, 0.1], 1.0)
            .select_candidates(&g);
        assert!(!sel.from_index);
        assert_eq!(sel.sim_verified, 0);
    }

    #[test]
    fn sim_satisfiability_and_indexability() {
        let q = vec![1.0f32];
        assert!(!AttrPredicate::any()
            .and_sim("e", CmpOp::Lt, q.clone(), 0.0)
            .is_satisfiable());
        assert!(!AttrPredicate::any()
            .and_sim("e", CmpOp::Le, q.clone(), -0.1)
            .is_satisfiable());
        assert!(!AttrPredicate::any()
            .and_sim("e", CmpOp::Gt, q.clone(), 1.0)
            .is_satisfiable());
        assert!(!AttrPredicate::any()
            .and_sim("e", CmpOp::Ge, q.clone(), 1.5)
            .is_satisfiable());
        assert!(!AttrPredicate::any()
            .and_sim("e", CmpOp::Lt, q.clone(), f32::NAN)
            .is_satisfiable());
        let ok = AttrPredicate::any().and_sim("e", CmpOp::Ge, q.clone(), 1.0);
        assert!(ok.is_satisfiable());
        assert!(!ok.is_fully_indexable());
    }

    #[test]
    fn sim_entailment_orders_thresholds() {
        let q = vec![0.5f32, 0.25];
        let loose = AttrPredicate::any().and_sim("e", CmpOp::Lt, q.clone(), 2.0);
        let tight = AttrPredicate::any().and_sim("e", CmpOp::Lt, q.clone(), 1.0);
        assert!(loose.entailed_by(&tight));
        assert!(!tight.entailed_by(&loose));
        let cos_loose = AttrPredicate::any().and_sim("e", CmpOp::Ge, q.clone(), 0.5);
        let cos_tight = AttrPredicate::any().and_sim("e", CmpOp::Ge, q.clone(), 0.9);
        assert!(cos_loose.entailed_by(&cos_tight));
        assert!(!cos_tight.entailed_by(&cos_loose));
        // Different query vectors never entail.
        let other = AttrPredicate::any().and_sim("e", CmpOp::Lt, vec![0.5, 0.26], 1.0);
        assert!(!loose.entailed_by(&other));
        // Wildcard is entailed by a sim predicate, not vice versa.
        assert!(AttrPredicate::any().entailed_by(&tight));
        assert!(!tight.entailed_by(&AttrPredicate::any()));
    }
}
