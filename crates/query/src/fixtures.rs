//! Shared test/example fixture modelled on the paper's running example
//! (Fig. 2): a 16-node data graph and a 10-node GTPQ exercising conjunction,
//! disjunction and negation in the structural predicates.
//!
//! The published figure cannot be reconstructed verbatim from the text, so
//! the edge set here is our own; all expectations asserted in tests are
//! hand-computed for *this* graph.  The fixture keeps the shape of the
//! paper's example: `a`-labelled roots, two `c`-branches with different
//! structural predicates, a negated `g` condition and a disjunctive
//! `e`-condition below a `b` node.

use gtpq_graph::{DataGraph, GraphBuilder, NodeId};
use gtpq_logic::BoolExpr;

use crate::builder::GtpqBuilder;
use crate::node::EdgeKind;
use crate::predicate::{AttrPredicate, CmpOp};
use crate::query::Gtpq;

/// An attribute predicate matching every label starting with `prefix`
/// (mimics the paper's `Y_j` convention where `C1` matches `c1`, `c2`, ...).
pub fn label_prefix(prefix: &str) -> AttrPredicate {
    let mut upper = prefix.to_owned();
    upper.push('~'); // '~' sorts after all alphanumeric characters
    AttrPredicate::any()
        .and(gtpq_graph::LABEL_ATTR, CmpOp::Ge, prefix.into())
        .and(gtpq_graph::LABEL_ATTR, CmpOp::Lt, upper.as_str().into())
}

/// The data graph of the running example. `v_k` of the paper is `NodeId(k-1)`.
pub fn example_graph() -> DataGraph {
    let mut b = GraphBuilder::new();
    for k in 1..=16 {
        let label = match k {
            1 | 2 | 4 => "a1",
            3 | 8 => "c1",
            5 => "c2",
            6 | 7 => "b1",
            9 | 10 | 15 => "e1",
            11 | 12 | 14 => "d1",
            13 => "e2",
            16 => "g1",
            _ => unreachable!(),
        };
        b.add_node_with_label(label);
    }
    let edges_1based = [
        (1, 2),
        (1, 3),
        (2, 4),
        (3, 7),
        (3, 8),
        (4, 8),
        (4, 5),
        (5, 6),
        (5, 9),
        (6, 9),
        (7, 11),
        (7, 10),
        (3, 11),
        (8, 11),
        (8, 12),
        (11, 14),
        (11, 13),
        (12, 13),
        (12, 15),
        (13, 16),
        (14, 15),
    ];
    for (x, y) in edges_1based {
        b.add_edge(NodeId(x - 1), NodeId(y - 1));
    }
    b.build()
}

/// The GTPQ of the running example.
///
/// Tree (all edges AD; `*` marks output nodes, `[P]` predicate nodes):
///
/// ```text
/// u1 (a1)
/// ├── u2* (c*)   fs = p_u5
/// │   └── u5 [P] (e2)
/// └── u3  (c*)   fs = !p_u6 | (p_u7 & p_u8)
///     ├── u4* (d1)
///     ├── u6 [P] (g1)
///     ├── u7 [P] (b*)  fs = p_u9 | p_u10
///     │   ├── u9  [P] (e*)
///     │   └── u10 [P] (e*)
///     └── u8 [P] (d1)
/// ```
///
/// The paper's `u_k` is `QueryNodeId(k-1)`.
pub fn example_query() -> Gtpq {
    let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
    let u1 = b.root_id();
    let u2 = b.backbone_child(u1, EdgeKind::Descendant, label_prefix("c"));
    let u3 = b.backbone_child(u1, EdgeKind::Descendant, label_prefix("c"));
    let u4 = b.backbone_child(u3, EdgeKind::Descendant, AttrPredicate::label("d1"));
    let u5 = b.predicate_child(u2, EdgeKind::Descendant, AttrPredicate::label("e2"));
    let u6 = b.predicate_child(u3, EdgeKind::Descendant, AttrPredicate::label("g1"));
    let u7 = b.predicate_child(u3, EdgeKind::Descendant, label_prefix("b"));
    let u8 = b.predicate_child(u3, EdgeKind::Descendant, AttrPredicate::label("d1"));
    let u9 = b.predicate_child(u7, EdgeKind::Descendant, label_prefix("e"));
    let u10 = b.predicate_child(u7, EdgeKind::Descendant, label_prefix("e"));
    b.set_structural(u2, BoolExpr::Var(u5.var()));
    b.set_structural(
        u3,
        BoolExpr::or2(
            BoolExpr::not(BoolExpr::Var(u6.var())),
            BoolExpr::and2(BoolExpr::Var(u7.var()), BoolExpr::Var(u8.var())),
        ),
    );
    b.set_structural(
        u7,
        BoolExpr::or2(BoolExpr::Var(u9.var()), BoolExpr::Var(u10.var())),
    );
    b.set_name(u1, "u1");
    b.set_name(u2, "u2");
    b.set_name(u3, "u3");
    b.set_name(u4, "u4");
    b.mark_output(u2);
    b.mark_output(u4);
    b.build().expect("example query is well formed")
}

/// The hand-computed answer of [`example_query`] on [`example_graph`], as
/// 1-based `(v for u2, v for u4)` pairs.
///
/// Derivation: after downward matching, `u2` can only be matched by `v3` and
/// `v8` (the only `c`-nodes reaching the `e2` node `v13`), `u3` only by `v3`
/// (it reaches the `g1` node `v16`, so the negated branch fails, but it also
/// reaches a matching `b`-node `v7` and a `d1`-node, satisfying the
/// disjunction's other arm; `v8` reaches `v16` but no `b`-node, and `v5`
/// reaches no `d1` backbone child), and `u1` only by `v1` (the only `a1` node
/// reaching both a `u2`- and a `u3`-candidate).  The `d1` descendants of `v3`
/// are `v11`, `v12`, `v14`.
pub fn example_answer_pairs() -> Vec<(u32, u32)> {
    vec![(3, 11), (3, 12), (3, 14), (8, 11), (8, 12), (8, 14)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_expected_shape() {
        let g = example_graph();
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 21);
    }

    #[test]
    fn query_has_expected_shape() {
        let q = example_query();
        assert_eq!(q.size(), 10);
        assert_eq!(q.output_nodes().len(), 2);
        assert!(!q.is_conjunctive());
        assert!(!q.is_union_conjunctive());
    }

    #[test]
    fn label_prefix_matches_correctly() {
        let g = example_graph();
        let q_c = label_prefix("c");
        // c1 nodes: v3, v8; c2: v5.
        assert!(q_c.matches(&g, NodeId(2)));
        assert!(q_c.matches(&g, NodeId(4)));
        assert!(q_c.matches(&g, NodeId(7)));
        assert!(!q_c.matches(&g, NodeId(0)));
    }
}
