//! SSPI-style reachability index (surrogate & surplus predecessor index).
//!
//! TwigStackD (Chen et al., VLDB 2005) uses SSPI: a spanning-tree cover of the
//! DAG labelled with intervals (the *surrogate* part) plus, for every node, a
//! list of *surplus* predecessors contributed by non-tree edges.  A node `u`
//! reaches `v` when the tree interval of `u` contains `v`, or when `u` reaches
//! a surplus predecessor recorded on `v` or on one of `v`'s tree ancestors.
//!
//! The index is tiny and fast on tree-like graphs (XMark with a few IDREF
//! edges) and degrades on dense, deep graphs (arXiv citations) because the
//! recursive surplus expansion revisits many predecessors — exactly the
//! behaviour the paper reports in §5.2.

use std::collections::VecDeque;

use gtpq_graph::condensation::CompId;
use gtpq_graph::{Condensation, DataGraph, NodeId};

use crate::Reachability;

/// SSPI index over the SCC condensation of a data graph.
pub struct Sspi {
    cond: Condensation,
    /// Spanning-forest parent of each component (tree cover).
    tree_parent: Vec<Option<CompId>>,
    /// Interval labels on the tree cover.
    start: Vec<u32>,
    end: Vec<u32>,
    /// Surplus predecessors: non-tree in-edges of each component.
    surplus_in: Vec<Vec<CompId>>,
    /// Number of surplus entries visited since the last reset (for I/O cost
    /// accounting in Fig. 10).  Atomic so a shared index can serve
    /// concurrent queries.
    visits: std::sync::atomic::AtomicU64,
}

impl Sspi {
    /// Builds the index for `g`.
    pub fn new(g: &DataGraph) -> Self {
        Self::with_condensation(Condensation::new(g))
    }

    /// Builds the index on an already-computed condensation of the target
    /// graph (the epoch-rotation path of the live-graph service).
    pub fn with_condensation(cond: Condensation) -> Self {
        let n = cond.component_count();

        // BFS spanning forest over the condensation, rooted at in-degree-0 comps.
        let mut tree_parent: Vec<Option<CompId>> = vec![None; n];
        let mut tree_children: Vec<Vec<CompId>> = vec![Vec::new(); n];
        let mut in_tree = vec![false; n];
        let mut queue: VecDeque<CompId> = VecDeque::new();
        let topo: &[CompId] = cond.topological_order();
        for &c in topo {
            if cond.predecessors(c).is_empty() {
                in_tree[c.index()] = true;
                queue.push_back(c);
            }
        }
        while let Some(c) = queue.pop_front() {
            for &s in cond.successors(c) {
                if !in_tree[s.index()] {
                    in_tree[s.index()] = true;
                    tree_parent[s.index()] = Some(c);
                    tree_children[c.index()].push(s);
                    queue.push_back(s);
                }
            }
        }
        // Any component not reached (only possible in exotic cases) becomes a root.
        for &c in topo {
            if !in_tree[c.index()] {
                in_tree[c.index()] = true;
                queue.push_back(c);
                while let Some(x) = queue.pop_front() {
                    for &s in cond.successors(x) {
                        if !in_tree[s.index()] {
                            in_tree[s.index()] = true;
                            tree_parent[s.index()] = Some(x);
                            tree_children[x.index()].push(s);
                            queue.push_back(s);
                        }
                    }
                }
            }
        }

        // Interval labels on the spanning forest.
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut counter = 0u32;
        for &root in topo {
            if tree_parent[root.index()].is_some() {
                continue;
            }
            let mut stack: Vec<(CompId, usize)> = vec![(root, 0)];
            start[root.index()] = counter;
            counter += 1;
            while let Some(&mut (c, ref mut cursor)) = stack.last_mut() {
                let children = &tree_children[c.index()];
                if *cursor < children.len() {
                    let child = children[*cursor];
                    *cursor += 1;
                    start[child.index()] = counter;
                    counter += 1;
                    stack.push((child, 0));
                } else {
                    end[c.index()] = counter;
                    counter += 1;
                    stack.pop();
                }
            }
        }

        // Surplus predecessors: in-edges that are not spanning-tree edges.
        let mut surplus_in: Vec<Vec<CompId>> = vec![Vec::new(); n];
        for &c in topo {
            for &p in cond.predecessors(c) {
                if tree_parent[c.index()] != Some(p) {
                    surplus_in[c.index()].push(p);
                }
            }
        }

        Self {
            cond,
            tree_parent,
            start,
            end,
            surplus_in,
            visits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn tree_contains(&self, a: CompId, d: CompId) -> bool {
        self.start[a.index()] < self.start[d.index()] && self.end[d.index()] <= self.end[a.index()]
    }

    fn comp_reaches(&self, a: CompId, b: CompId) -> bool {
        if a == b {
            return false;
        }
        if self.tree_contains(a, b) {
            return true;
        }
        // Backward expansion of surplus predecessors of b and its tree ancestors.
        let mut visited = vec![false; self.cond.component_count()];
        let mut stack = vec![b];
        visited[b.index()] = true;
        while let Some(c) = stack.pop() {
            // Walk tree ancestors of c (a could contain one of them... no: if a
            // tree-contains an ancestor of c it tree-contains c, already
            // handled; what matters are the surplus predecessors hanging off
            // the ancestor path).
            let mut cursor = Some(c);
            while let Some(x) = cursor {
                for &p in &self.surplus_in[x.index()] {
                    self.visits
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if p == a || self.tree_contains(a, p) {
                        return true;
                    }
                    if !visited[p.index()] {
                        visited[p.index()] = true;
                        stack.push(p);
                    }
                }
                cursor = self.tree_parent[x.index()];
            }
        }
        false
    }

    /// Number of surplus-predecessor entries visited since the last reset.
    pub fn visit_count(&self) -> u64 {
        self.visits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resets the visit counter.
    pub fn reset_visits(&self) {
        self.visits.store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// The SCC condensation the index is built on.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }
}

impl Reachability for Sspi {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.cond.component_of(u);
        let cv = self.cond.component_of(v);
        if cu == cv {
            return u != v || self.cond.is_cyclic(cu);
        }
        self.comp_reaches(cu, cv)
    }

    fn index_entries(&self) -> usize {
        self.cond.component_count() * 2 + self.surplus_in.iter().map(Vec::len).sum::<usize>()
    }

    fn name(&self) -> &'static str {
        "sspi"
    }

    fn lookup_count(&self) -> u64 {
        self.visit_count()
    }

    fn reset_lookups(&self) {
        self.reset_visits()
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::traversal::is_reachable;
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn build(edges: &[(u32, u32)], n: u32) -> DataGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        for &(x, y) in edges {
            b.add_edge(v[x as usize], v[y as usize]);
        }
        b.build()
    }

    fn assert_matches_oracle(g: &DataGraph) {
        let idx = Sspi::new(g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(idx.reaches(u, v), is_reachable(g, u, v), "{u} -> {v}");
            }
        }
    }

    #[test]
    fn tree_plus_cross_edges() {
        let g = build(
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 5),
                (4, 5), // cross edge
                (3, 2), // cross edge
            ],
            6,
        );
        assert_matches_oracle(&g);
    }

    #[test]
    fn dense_dag() {
        let g = build(
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 4),
                (3, 5),
                (4, 5),
            ],
            6,
        );
        assert_matches_oracle(&g);
    }

    #[test]
    fn graph_with_cycles() {
        let g = build(&[(0, 1), (1, 2), (2, 1), (2, 3), (4, 0), (3, 4)], 5);
        // 3 -> 4 -> 0 -> 1 <-> 2 -> 3 forms a big cycle; everything reaches everything.
        assert_matches_oracle(&g);
    }

    #[test]
    fn visit_counter() {
        let g = build(&[(0, 1), (2, 1), (1, 3), (0, 3)], 4);
        let idx = Sspi::new(&g);
        idx.reset_visits();
        let _ = idx.reaches(NodeId(2), NodeId(3));
        assert!(idx.visit_count() <= 10);
        assert_eq!(idx.name(), "sspi");
        assert!(idx.index_entries() >= 8);
    }
}
