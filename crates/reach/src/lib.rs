//! Reachability indexes for GTPQ evaluation.
//!
//! The paper's evaluation algorithm (GTEA) answers large numbers of
//! ancestor-descendant (AD) checks through the *3-hop* reachability index and
//! accelerates set-to-set checks by merging index lists into *contours*
//! (Procedure 2, `MergePredLists`).  The baselines need other labelings:
//! interval (region) encoding for holistic twig joins on trees and an
//! SSPI-style index for TwigStackD.  This crate provides them all behind the
//! common [`Reachability`] trait, plus a bitset transitive closure used as a
//! correctness oracle:
//!
//! * [`TransitiveClosure`] — exact oracle, O(V·V/64) memory,
//! * [`ChainDecomposition`] — chain cover of the SCC condensation, and
//!   [`ChainCover`] — the dense per-(component, chain) reachability table on
//!   top of it,
//! * [`ThreeHop`] — chain cover + `Lin`/`Lout` hop lists, contour merging,
//! * [`ContourIndex`] — fully materialized per-component successor contours
//!   (the lists 3-hop compresses), sparse rows,
//! * [`IntervalIndex`] — pre/post-order region encoding for forests,
//! * [`Sspi`] — spanning-tree intervals + surplus predecessor lists.
//!
//! All indexes are built on the SCC condensation so they accept arbitrary
//! directed graphs; the AD relationship of the paper ("non-empty path") is
//! preserved: a node reaches itself only when it lies on a cycle.
//!
//! ## Pluggable backends
//!
//! The GTEA engine (`gtpq-core`) is generic over [`Reachability`], so any
//! index here can drive evaluation.  Beyond the point probe
//! [`reaches`](Reachability::reaches), the trait exposes three *prepared
//! probes* — [`pred_probe`](Reachability::pred_probe),
//! [`succ_probe`](Reachability::succ_probe) and
//! [`source_probe`](Reachability::source_probe) — that let a backend amortize
//! work across a batch of checks against one node set (3-hop answers them
//! with merged contours, the closure with bitset unions); the default
//! implementations fall back to pairwise `reaches`.  Use
//! [`select_backend`] to pick a backend from graph statistics, or
//! [`build_index`] to name one explicitly.

#![warn(missing_docs)]

pub mod chain;
pub mod closure;
pub mod contour;
pub mod interval;
pub mod select;
pub mod sspi;
pub mod three_hop;

use std::sync::Arc;

use gtpq_graph::{DataGraph, NodeId};

pub use chain::{ChainCover, ChainDecomposition, ChainId, ChainPos};
pub use closure::TransitiveClosure;
pub use contour::{ContourIndex, PredContour, SuccContour};
pub use interval::IntervalIndex;
pub use select::{
    build_selected, build_selected_with, select_backend, select_backend_for_query,
    select_backend_with, BackendCostHints, BackendKind, BackendSelection, GraphProfile,
};
pub use sspi::Sspi;
pub use three_hop::ThreeHop;

/// A prepared membership probe returned by the set-probe methods of
/// [`Reachability`]: call it once per node to test against the prepared set.
///
/// Probes are `Send + Sync` so one prepared probe can serve every worker of
/// a morsel-parallel prune round by reference.
pub type Probe<'s> = Box<dyn Fn(NodeId) -> bool + Send + Sync + 's>;

/// A reachability index: answers whether there is a *non-empty* directed path
/// from `u` to `v` (the ancestor-descendant relationship of the paper).
///
/// Implementations must be cheap to probe after construction; construction
/// cost and memory are reported through [`index_entries`](Self::index_entries)
/// so experiments can compare space/time trade-offs.
///
/// The trait requires `Send + Sync`: indexes are immutable after
/// construction (lookup counters are atomics), and the engine's intra-query
/// parallelism probes one index from several worker threads at once.
pub trait Reachability: Send + Sync {
    /// Whether `u` reaches `v` by a non-empty path.
    fn reaches(&self, u: NodeId, v: NodeId) -> bool;

    /// Number of entries stored by the index (used in space comparisons).
    fn index_entries(&self) -> usize;

    /// Short human-readable name of the index.
    fn name(&self) -> &'static str;

    /// Cumulative number of index elements looked up since construction (or
    /// the last [`reset_lookups`](Self::reset_lookups)) — the `#index`
    /// I/O-cost metric of Fig. 10.  Backends without instrumentation
    /// report 0.
    ///
    /// The counter is a property of the (possibly shared) index, so callers
    /// wanting a per-stage figure should take start/end deltas rather than
    /// resetting; when several queries probe one index concurrently, each
    /// query's delta is an upper bound that may include the others' lookups.
    fn lookup_count(&self) -> u64 {
        0
    }

    /// Resets the lookup counter.  No-op for uninstrumented backends.
    fn reset_lookups(&self) {}

    /// Prepares a probe answering "does `v` reach *some* member of
    /// `targets`?" for many different `v`.
    ///
    /// The default copies `targets` and probes pairwise; 3-hop overrides it
    /// with a merged predecessor contour (Procedure 2 + Proposition 7), the
    /// transitive closure with a bitset union.
    fn pred_probe<'s>(&'s self, targets: &[NodeId]) -> Probe<'s> {
        let targets = targets.to_vec();
        Box::new(move |v| targets.iter().any(|&t| self.reaches(v, t)))
    }

    /// Prepares a probe answering "does *some* member of `sources` reach
    /// `v`?" for many different `v`.
    fn succ_probe<'s>(&'s self, sources: &[NodeId]) -> Probe<'s> {
        let sources = sources.to_vec();
        Box::new(move |v| sources.iter().any(|&s| self.reaches(s, v)))
    }

    /// Prepares a probe answering "does `source` reach `v`?" for many
    /// different `v` (one source, many targets — the matching-graph pattern).
    fn source_probe<'s>(&'s self, source: NodeId) -> Probe<'s> {
        Box::new(move |v| self.reaches(source, v))
    }
}

macro_rules! forward_reachability {
    () => {
        fn reaches(&self, u: NodeId, v: NodeId) -> bool {
            (**self).reaches(u, v)
        }
        fn index_entries(&self) -> usize {
            (**self).index_entries()
        }
        fn name(&self) -> &'static str {
            (**self).name()
        }
        fn lookup_count(&self) -> u64 {
            (**self).lookup_count()
        }
        fn reset_lookups(&self) {
            (**self).reset_lookups()
        }
        fn pred_probe<'s>(&'s self, targets: &[NodeId]) -> Probe<'s> {
            (**self).pred_probe(targets)
        }
        fn succ_probe<'s>(&'s self, sources: &[NodeId]) -> Probe<'s> {
            (**self).succ_probe(sources)
        }
        fn source_probe<'s>(&'s self, source: NodeId) -> Probe<'s> {
            (**self).source_probe(source)
        }
    };
}

impl<T: Reachability + ?Sized> Reachability for &T {
    forward_reachability!();
}

impl<T: Reachability + ?Sized> Reachability for Box<T> {
    forward_reachability!();
}

impl<T: Reachability + ?Sized> Reachability for Arc<T> {
    forward_reachability!();
}

/// A reachability backend that can be shared across threads (what
/// [`select_backend`] and the query service hand out).
pub type SharedIndex = Arc<dyn Reachability + Send + Sync>;

/// Builds the index named by `kind`: `"closure"`, `"3hop"`, `"chain"`,
/// `"contour"`, `"sspi"` or `"interval"` (the latter panics when `g` is not
/// a forest — use [`BackendKind::Interval`] + [`IntervalIndex::new`] to
/// handle that case gracefully).
///
/// Convenience for examples and the experiment harness.
pub fn build_index(kind: &str, g: &DataGraph) -> Box<dyn Reachability + Send + Sync> {
    match kind {
        "closure" => Box::new(TransitiveClosure::new(g)),
        "3hop" => Box::new(ThreeHop::new(g)),
        "chain" => Box::new(ChainCover::new(g)),
        "contour" => Box::new(ContourIndex::new(g)),
        "sspi" => Box::new(Sspi::new(g)),
        "interval" => Box::new(
            IntervalIndex::new(g).expect("`interval` backend requires a forest-shaped graph"),
        ),
        other => panic!("unknown reachability index kind `{other}`"),
    }
}
