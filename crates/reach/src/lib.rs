//! Reachability indexes for GTPQ evaluation.
//!
//! The paper's evaluation algorithm (GTEA) answers large numbers of
//! ancestor-descendant (AD) checks through the *3-hop* reachability index and
//! accelerates set-to-set checks by merging index lists into *contours*
//! (Procedure 2, `MergePredLists`).  The baselines need other labelings:
//! interval (region) encoding for holistic twig joins on trees and an
//! SSPI-style index for TwigStackD.  This crate provides them all behind the
//! common [`Reachability`] trait, plus a bitset transitive closure used as a
//! correctness oracle:
//!
//! * [`TransitiveClosure`] — exact oracle, O(V·V/64) memory,
//! * [`ChainDecomposition`] — chain cover of the SCC condensation,
//! * [`ThreeHop`] — chain cover + `Lin`/`Lout` hop lists, contour merging,
//! * [`IntervalIndex`] — pre/post-order region encoding for forests,
//! * [`Sspi`] — spanning-tree intervals + surplus predecessor lists.
//!
//! All indexes are built on the SCC condensation so they accept arbitrary
//! directed graphs; the AD relationship of the paper ("non-empty path") is
//! preserved: a node reaches itself only when it lies on a cycle.

pub mod chain;
pub mod closure;
pub mod contour;
pub mod interval;
pub mod sspi;
pub mod three_hop;

use gtpq_graph::{DataGraph, NodeId};

pub use chain::{ChainDecomposition, ChainId, ChainPos};
pub use closure::TransitiveClosure;
pub use contour::{PredContour, SuccContour};
pub use interval::IntervalIndex;
pub use sspi::Sspi;
pub use three_hop::ThreeHop;

/// A reachability index: answers whether there is a *non-empty* directed path
/// from `u` to `v` (the ancestor-descendant relationship of the paper).
pub trait Reachability {
    /// Whether `u` reaches `v` by a non-empty path.
    fn reaches(&self, u: NodeId, v: NodeId) -> bool;

    /// Number of entries stored by the index (used in space comparisons).
    fn index_entries(&self) -> usize;

    /// Short human-readable name of the index.
    fn name(&self) -> &'static str;
}

/// Builds the index named by `kind` ("closure", "3hop", or "sspi").
///
/// Convenience for examples and the experiment harness.
pub fn build_index(kind: &str, g: &DataGraph) -> Box<dyn Reachability> {
    match kind {
        "closure" => Box::new(TransitiveClosure::new(g)),
        "3hop" => Box::new(ThreeHop::new(g)),
        "sspi" => Box::new(Sspi::new(g)),
        other => panic!("unknown reachability index kind `{other}`"),
    }
}
