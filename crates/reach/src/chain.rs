//! Chain decomposition (chain cover) of the SCC condensation.
//!
//! A *chain* is a sequence of components `c_1, c_2, ...` such that every
//! component reaches all later components on its chain.  3-hop (§4.2.1) uses
//! a chain cover as its backbone: reachability *within* a chain is answered
//! purely by comparing sequence numbers, and only the cross-chain information
//! is stored in the `Lin`/`Lout` hop lists.
//!
//! The decomposition here is the greedy path-cover heuristic: components are
//! visited in topological order and appended to a chain whose current tail is
//! a direct predecessor, preferring the chain whose tail has the fewest
//! remaining successors (a cheap proxy for the minimum path cover the 3-hop
//! paper computes with min-flow).  The result is a valid chain cover; a
//! smaller cover only improves constants, not correctness.

use gtpq_graph::condensation::CompId;
use gtpq_graph::{Condensation, DataGraph, NodeId};

use crate::Reachability;

/// Identifier of a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(pub u32);

impl ChainId {
    /// The chain id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Position of a component on its chain: `(chain id, sequence number)`.
///
/// Sequence numbers start at zero and increase along the chain; for two
/// components on the same chain the smaller sequence number reaches the
/// larger one (`v ≤c v'` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainPos {
    /// Chain containing the component.
    pub chain: ChainId,
    /// Sequence number (`sid`) on that chain.
    pub sid: u32,
}

/// A chain cover of a condensation DAG.
#[derive(Clone, Debug)]
pub struct ChainDecomposition {
    /// Components of each chain, in increasing sequence-number order.
    chains: Vec<Vec<CompId>>,
    /// Position of each component.
    pos: Vec<ChainPos>,
}

impl ChainDecomposition {
    /// Computes a chain cover of the condensation of `g`.
    pub fn new(g: &DataGraph) -> Self {
        let condensation = Condensation::new(g);
        Self::from_condensation(&condensation)
    }

    /// Computes a chain cover of an existing condensation.
    pub fn from_condensation(cond: &Condensation) -> Self {
        let n = cond.component_count();
        let mut chains: Vec<Vec<CompId>> = Vec::new();
        // Chain whose tail is this component (if the component is a tail).
        let mut tail_chain: Vec<Option<ChainId>> = vec![None; n];
        let mut pos: Vec<ChainPos> = vec![
            ChainPos {
                chain: ChainId(0),
                sid: 0
            };
            n
        ];

        for &c in cond.topological_order() {
            // Pick a predecessor that is currently a chain tail.
            let mut best: Option<(ChainId, usize)> = None;
            for &p in cond.predecessors(c) {
                if let Some(chain) = tail_chain[p.index()] {
                    let score = cond.successors(p).len();
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((chain, score));
                    }
                }
            }
            let chain = match best {
                Some((chain, _)) => {
                    // Extend the chosen chain; its old tail stops being a tail.
                    let tail = *chains[chain.index()].last().expect("chains are non-empty");
                    tail_chain[tail.index()] = None;
                    chains[chain.index()].push(c);
                    chain
                }
                None => {
                    let chain = ChainId(chains.len() as u32);
                    chains.push(vec![c]);
                    chain
                }
            };
            tail_chain[c.index()] = Some(chain);
            pos[c.index()] = ChainPos {
                chain,
                sid: (chains[chain.index()].len() - 1) as u32,
            };
        }

        Self { chains, pos }
    }

    /// Number of chains in the cover.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// The components of chain `c`, in sequence-number order.
    pub fn chain(&self, c: ChainId) -> &[CompId] {
        &self.chains[c.index()]
    }

    /// Position of component `c`.
    #[inline]
    pub fn position(&self, c: CompId) -> ChainPos {
        self.pos[c.index()]
    }

    /// Whether component `a` reaches component `b` purely through the chain
    /// cover (`a ≤c b` with a strictly smaller sequence number).
    #[inline]
    pub fn chain_reaches(&self, a: CompId, b: CompId) -> bool {
        let pa = self.pos[a.index()];
        let pb = self.pos[b.index()];
        pa.chain == pb.chain && pa.sid < pb.sid
    }

    /// The component at position `(chain, sid)`.
    pub fn at(&self, chain: ChainId, sid: u32) -> CompId {
        self.chains[chain.index()][sid as usize]
    }

    /// Iterates over all components with their positions.
    pub fn iter_positions(&self) -> impl Iterator<Item = (CompId, ChainPos)> + '_ {
        self.pos
            .iter()
            .enumerate()
            .map(|(i, &p)| (CompId(i as u32), p))
    }
}

/// Classic chain-cover reachability (Jagadish-style): a *dense* table holding,
/// for every (component, chain) pair, the smallest sequence number on that
/// chain reachable from the component.
///
/// Probes are two array reads — the fastest point probe in the crate after
/// the transitive closure — but the table costs O(|comps| · |chains|) memory
/// and O(|edges| · |chains|) construction, which is exactly the blow-up the
/// 3-hop hop lists avoid.  Use it for small/medium graphs or few chains;
/// [`select_backend`](crate::select_backend) never picks it for large inputs.
pub struct ChainCover {
    cond: Condensation,
    chains: ChainDecomposition,
    chain_count: usize,
    /// `table[c * chain_count + k]`: smallest sid on chain `k` strictly
    /// reachable from component `c`, or `u32::MAX` when unreachable.
    table: Vec<u32>,
}

impl ChainCover {
    /// Builds the dense chain-cover table for `g`.
    pub fn new(g: &DataGraph) -> Self {
        Self::with_condensation(Condensation::new(g))
    }

    /// Builds the table on an already-computed condensation of the target
    /// graph (the epoch-rotation path of the live-graph service).
    pub fn with_condensation(cond: Condensation) -> Self {
        let chains = ChainDecomposition::from_condensation(&cond);
        let n = cond.component_count();
        let cc = chains.chain_count();
        let mut table = vec![u32::MAX; n * cc];
        // Reverse topological order: successors are complete before their
        // predecessors merge them in.  Borrows the condensation CSR slices
        // directly — nothing is copied during construction.
        for &c in cond.topological_order().iter().rev() {
            let base = c.index() * cc;
            for &s in cond.successors(c) {
                let spos = chains.position(s);
                let cell = base + spos.chain.index();
                table[cell] = table[cell].min(spos.sid);
                let sbase = s.index() * cc;
                for k in 0..cc {
                    if table[sbase + k] < table[base + k] {
                        table[base + k] = table[sbase + k];
                    }
                }
            }
        }
        Self {
            cond,
            chains,
            chain_count: cc,
            table,
        }
    }

    /// The SCC condensation the cover is built on.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The underlying chain decomposition.
    pub fn chains(&self) -> &ChainDecomposition {
        &self.chains
    }

    /// Whether component `a` strictly reaches component `b`.
    pub fn comp_reaches(&self, a: CompId, b: CompId) -> bool {
        let pb = self.chains.position(b);
        self.table[a.index() * self.chain_count + pb.chain.index()] <= pb.sid
    }
}

impl Reachability for ChainCover {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.cond.component_of(u);
        let cv = self.cond.component_of(v);
        if cu == cv {
            return u != v || self.cond.is_cyclic(cu);
        }
        self.comp_reaches(cu, cv)
    }

    fn index_entries(&self) -> usize {
        self.table.iter().filter(|&&x| x != u32::MAX).count()
    }

    fn name(&self) -> &'static str {
        "chain"
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::traversal::is_reachable;
    use gtpq_graph::{GraphBuilder, NodeId};

    use super::*;

    #[test]
    fn chains_cover_all_components_exactly_once() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..8).map(|_| b.add_node()).collect();
        let edges = [
            (0, 1),
            (1, 2),
            (0, 3),
            (3, 4),
            (4, 2),
            (5, 6),
            (6, 7),
            (1, 7),
        ];
        for (x, y) in edges {
            b.add_edge(v[x], v[y]);
        }
        let g = b.build();
        let cond = Condensation::new(&g);
        let cd = ChainDecomposition::from_condensation(&cond);
        let total: usize = (0..cd.chain_count())
            .map(|i| cd.chain(ChainId(i as u32)).len())
            .sum();
        assert_eq!(total, cond.component_count());
        // Every component's recorded position matches the chain contents.
        for (comp, pos) in cd.iter_positions() {
            assert_eq!(cd.at(pos.chain, pos.sid), comp);
        }
    }

    #[test]
    fn chain_order_respects_reachability() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..10).map(|_| b.add_node()).collect();
        let edges = [
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 4),
            (4, 5),
            (5, 3),
            (6, 7),
            (7, 8),
            (8, 9),
            (2, 8),
        ];
        for (x, y) in edges {
            b.add_edge(v[x], v[y]);
        }
        let g = b.build();
        let cond = Condensation::new(&g);
        let cd = ChainDecomposition::from_condensation(&cond);
        // Along every chain, earlier members reach all later members.
        for ci in 0..cd.chain_count() {
            let chain = cd.chain(ChainId(ci as u32));
            for i in 0..chain.len() {
                for j in (i + 1)..chain.len() {
                    let ui = cond.members(chain[i])[0];
                    let uj = cond.members(chain[j])[0];
                    assert!(
                        is_reachable(&g, ui, uj),
                        "chain member {ui} must reach later member {uj}"
                    );
                }
            }
        }
        // chain_reaches implies reachability.
        for (a, _) in cd.iter_positions() {
            for (bb, _) in cd.iter_positions() {
                if cd.chain_reaches(a, bb) {
                    let ua = cond.members(a)[0];
                    let ub = cond.members(bb)[0];
                    assert!(is_reachable(&g, ua, ub));
                }
            }
        }
    }

    #[test]
    fn single_path_graph_is_one_chain() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..5).map(|_| b.add_node()).collect();
        for i in 0..4 {
            b.add_edge(v[i], v[i + 1]);
        }
        let cd = ChainDecomposition::new(&b.build());
        assert_eq!(cd.chain_count(), 1);
        assert_eq!(cd.chain(ChainId(0)).len(), 5);
    }
}
