//! Bitset transitive closure — the exact reachability oracle.
//!
//! Quadratic memory (one bit per component pair), so it is only used for
//! small/medium graphs, as a correctness oracle for the other indexes, and by
//! the naive semantic query evaluator in tests.

use gtpq_graph::condensation::CompId;
use gtpq_graph::{Condensation, DataGraph, NodeId};

use crate::Reachability;

/// Dense bitset over component ids.
#[derive(Clone, Debug, Default)]
struct BitRow {
    words: Vec<u64>,
}

impl BitRow {
    fn new(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitRow) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    fn intersects(&self, other: &BitRow) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Exact transitive closure of a data graph, built on its SCC condensation.
pub struct TransitiveClosure {
    condensation: Condensation,
    /// `rows[c]` holds the set of components strictly reachable from `c`
    /// (excluding `c` itself unless `c` lies on a cycle through other comps —
    /// cyclicity of `c` itself is tracked by the condensation).
    rows: Vec<BitRow>,
}

impl TransitiveClosure {
    /// Builds the closure for `g`.
    pub fn new(g: &DataGraph) -> Self {
        Self::with_condensation(Condensation::new(g))
    }

    /// Builds the closure on an already-computed condensation of the target
    /// graph — the epoch-rotation path, which reuses the incrementally
    /// maintained condensation instead of re-running Tarjan.
    pub fn with_condensation(condensation: Condensation) -> Self {
        let n = condensation.component_count();
        let mut rows: Vec<BitRow> = (0..n).map(|_| BitRow::new(n)).collect();
        // Reverse topological order: children before parents.  The borrowed
        // condensation CSR slices are read directly; only `rows` is mutated.
        for &c in condensation.topological_order().iter().rev() {
            for &s in condensation.successors(c) {
                let (row_c, row_s) = Self::two_rows(&mut rows, c.index(), s.index());
                row_c.set(s.index());
                row_c.union_with(row_s);
            }
        }
        Self { condensation, rows }
    }

    fn two_rows(rows: &mut [BitRow], a: usize, b: usize) -> (&mut BitRow, &BitRow) {
        assert_ne!(a, b);
        if a < b {
            let (left, right) = rows.split_at_mut(b);
            (&mut left[a], &right[0])
        } else {
            let (left, right) = rows.split_at_mut(a);
            (&mut right[0], &left[b])
        }
    }

    /// Whether component `a` reaches component `b` (strictly, through edges of
    /// the condensation DAG).
    pub fn comp_reaches(&self, a: CompId, b: CompId) -> bool {
        self.rows[a.index()].get(b.index())
    }

    /// The condensation the closure was built on.
    pub fn condensation(&self) -> &Condensation {
        &self.condensation
    }
}

impl Reachability for TransitiveClosure {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.condensation.component_of(u);
        let cv = self.condensation.component_of(v);
        if cu == cv {
            return u != v || self.condensation.is_cyclic(cu);
        }
        self.comp_reaches(cu, cv)
    }

    fn index_entries(&self) -> usize {
        self.rows.iter().map(BitRow::count_ones).sum()
    }

    fn name(&self) -> &'static str {
        "transitive-closure"
    }

    /// One bitset of target components, one row intersection per probe.
    fn pred_probe<'s>(&'s self, targets: &[NodeId]) -> crate::Probe<'s> {
        let n = self.condensation.component_count();
        let mut target_bits = BitRow::new(n);
        for &t in targets {
            target_bits.set(self.condensation.component_of(t).index());
        }
        Box::new(move |v| {
            let cv = self.condensation.component_of(v);
            // Cross-component reach, or a target shares v's cyclic component
            // (the non-empty-path self-reach case).
            self.rows[cv.index()].intersects(&target_bits)
                || (target_bits.get(cv.index()) && self.condensation.is_cyclic(cv))
        })
    }

    /// Union of the sources' closure rows, one bit test per probe.
    fn succ_probe<'s>(&'s self, sources: &[NodeId]) -> crate::Probe<'s> {
        let n = self.condensation.component_count();
        let mut reachable = BitRow::new(n);
        for &s in sources {
            let cs = self.condensation.component_of(s);
            reachable.union_with(&self.rows[cs.index()]);
            if self.condensation.is_cyclic(cs) {
                reachable.set(cs.index());
            }
        }
        Box::new(move |v| reachable.get(self.condensation.component_of(v).index()))
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::traversal::is_reachable;
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn check_against_bfs(g: &DataGraph) {
        let tc = TransitiveClosure::new(g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    tc.reaches(u, v),
                    is_reachable(g, u, v),
                    "mismatch for {u} -> {v}"
                );
            }
        }
    }

    #[test]
    fn diamond_dag() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        b.add_edge(v[2], v[3]);
        check_against_bfs(&b.build());
    }

    #[test]
    fn graph_with_cycles() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[1], v[2]);
        b.add_edge(v[2], v[0]); // cycle {0,1,2}
        b.add_edge(v[2], v[3]);
        b.add_edge(v[3], v[4]);
        b.add_edge(v[5], v[5]); // isolated self loop
        check_against_bfs(&b.build());
    }

    #[test]
    fn disconnected_graph() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[2], v[3]);
        let g = b.build();
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(v[0], v[1]));
        assert!(!tc.reaches(v[0], v[3]));
        assert_eq!(tc.name(), "transitive-closure");
        assert_eq!(tc.index_entries(), 2);
    }
}
