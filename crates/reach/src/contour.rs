//! Contours: merged predecessor/successor lists of a node set.
//!
//! `MergePredLists` (Procedure 2) merges the complete predecessor lists of a
//! set `S` of nodes into a single *predecessor contour* that keeps, per chain,
//! only the largest node known to reach some member of `S`.  Symmetrically
//! the *successor contour* keeps, per chain, the smallest node reachable from
//! some member.  Proposition 7 then answers "does `v` reach `S`?" /
//! "does `S` reach `v`?" against the contour instead of every member's list.
//!
//! Contours separate two kinds of per-chain information so that the
//! "non-empty path" semantics of the AD relationship is preserved even when
//! the probed node is itself a member of `S`:
//! * `hops` — positions contributed by `Lin`/`Lout` index entries (these nodes
//!   are known to reach / be reachable from a member), and
//! * `members` — the positions of the members of `S` themselves.

use std::collections::{HashMap, HashSet};

use gtpq_graph::condensation::CompId;
use gtpq_graph::{Condensation, DataGraph, NodeId};

use crate::chain::{ChainDecomposition, ChainId, ChainPos};
use crate::Reachability;

/// Predecessor contour of a node set `S` (merged `Lin` information).
///
/// For each chain, `hops` records the largest sequence number of a node known
/// to reach some member of `S`; `members` records the largest sequence number
/// of a member of `S` on that chain.
#[derive(Clone, Debug, Default)]
pub struct PredContour {
    pub(crate) hops: HashMap<ChainId, u32>,
    pub(crate) members: HashMap<ChainId, u32>,
    pub(crate) cyclic_members: HashSet<CompId>,
}

impl PredContour {
    /// Largest hop (exit-node) sequence number recorded for `chain`.
    pub fn hop(&self, chain: ChainId) -> Option<u32> {
        self.hops.get(&chain).copied()
    }

    /// Largest member sequence number recorded for `chain`.
    pub fn member(&self, chain: ChainId) -> Option<u32> {
        self.members.get(&chain).copied()
    }

    /// Whether the member set contains a component lying on a cycle equal to `comp`.
    pub fn has_cyclic_member(&self, comp: CompId) -> bool {
        self.cyclic_members.contains(&comp)
    }

    /// Total number of per-chain entries (the "contour size" reported in
    /// Example 8 of the paper).
    pub fn len(&self) -> usize {
        self.hops.len() + self.members.len()
    }

    /// Whether the contour is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty() && self.members.is_empty()
    }

    pub(crate) fn record_hop(&mut self, pos: ChainPos) {
        let entry = self.hops.entry(pos.chain).or_insert(pos.sid);
        if *entry < pos.sid {
            *entry = pos.sid;
        }
    }

    pub(crate) fn record_member(&mut self, pos: ChainPos) {
        let entry = self.members.entry(pos.chain).or_insert(pos.sid);
        if *entry < pos.sid {
            *entry = pos.sid;
        }
    }
}

/// Successor contour of a node set `S` (merged `Lout` information).
///
/// For each chain, `hops` records the smallest sequence number of a node known
/// to be reachable from some member of `S`; `members` the smallest member.
#[derive(Clone, Debug, Default)]
pub struct SuccContour {
    pub(crate) hops: HashMap<ChainId, u32>,
    pub(crate) members: HashMap<ChainId, u32>,
    pub(crate) cyclic_members: HashSet<CompId>,
}

impl SuccContour {
    /// Smallest hop (entry-node) sequence number recorded for `chain`.
    pub fn hop(&self, chain: ChainId) -> Option<u32> {
        self.hops.get(&chain).copied()
    }

    /// Smallest member sequence number recorded for `chain`.
    pub fn member(&self, chain: ChainId) -> Option<u32> {
        self.members.get(&chain).copied()
    }

    /// Whether the member set contains a component lying on a cycle equal to `comp`.
    pub fn has_cyclic_member(&self, comp: CompId) -> bool {
        self.cyclic_members.contains(&comp)
    }

    /// Total number of per-chain entries.
    pub fn len(&self) -> usize {
        self.hops.len() + self.members.len()
    }

    /// Whether the contour is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty() && self.members.is_empty()
    }

    pub(crate) fn record_hop(&mut self, pos: ChainPos) {
        let entry = self.hops.entry(pos.chain).or_insert(pos.sid);
        if *entry > pos.sid {
            *entry = pos.sid;
        }
    }

    pub(crate) fn record_member(&mut self, pos: ChainPos) {
        let entry = self.members.entry(pos.chain).or_insert(pos.sid);
        if *entry > pos.sid {
            *entry = pos.sid;
        }
    }
}

/// Reachability through fully materialized *successor contours*: every
/// component stores its complete successor list (per foreign chain, the
/// smallest sequence number it reaches) as a sorted sparse row.
///
/// This is exactly the information the 3-hop index reconstructs at query time
/// by walking tracing pointers and merging `Lout` hop lists — materialized
/// eagerly instead.  Point probes are a binary search over one row (no chain
/// walk), at the cost of storing every row in full; rows stay small when the
/// condensation collapses many cycles or the chain cover is coarse.
pub struct ContourIndex {
    cond: Condensation,
    chains: ChainDecomposition,
    /// Per component: `(chain, min sid reachable)`, sorted by chain,
    /// excluding the component's own chain (answered by sequence numbers).
    rows: Vec<Box<[(ChainId, u32)]>>,
}

impl ContourIndex {
    /// Builds the materialized successor contours for `g`.
    pub fn new(g: &DataGraph) -> Self {
        Self::with_condensation(Condensation::new(g))
    }

    /// Builds the contours on an already-computed condensation of the target
    /// graph (the epoch-rotation path of the live-graph service).
    pub fn with_condensation(cond: Condensation) -> Self {
        let chains = ChainDecomposition::from_condensation(&cond);
        let n = cond.component_count();
        let mut full: Vec<HashMap<ChainId, u32>> = vec![HashMap::new(); n];
        let topo: &[CompId] = cond.topological_order();
        for &c in topo.iter().rev() {
            let my_chain = chains.position(c).chain;
            let mut map: HashMap<ChainId, u32> = HashMap::new();
            for &s in cond.successors(c) {
                let spos = chains.position(s);
                if spos.chain != my_chain {
                    let e = map.entry(spos.chain).or_insert(spos.sid);
                    *e = (*e).min(spos.sid);
                }
                for (&chain, &sid) in &full[s.index()] {
                    if chain != my_chain {
                        let e = map.entry(chain).or_insert(sid);
                        *e = (*e).min(sid);
                    }
                }
            }
            full[c.index()] = map;
        }
        let rows = full
            .into_iter()
            .map(|map| {
                let mut row: Vec<(ChainId, u32)> = map.into_iter().collect();
                row.sort_unstable_by_key(|&(chain, _)| chain);
                row.into_boxed_slice()
            })
            .collect();
        Self { cond, chains, rows }
    }

    /// The SCC condensation the index is built on.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// Whether component `a` strictly reaches component `b`.
    pub fn comp_reaches(&self, a: CompId, b: CompId) -> bool {
        let pa = self.chains.position(a);
        let pb = self.chains.position(b);
        if pa.chain == pb.chain {
            return pa.sid < pb.sid;
        }
        let row = &self.rows[a.index()];
        row.binary_search_by_key(&pb.chain, |&(chain, _)| chain)
            .is_ok_and(|i| row[i].1 <= pb.sid)
    }
}

impl Reachability for ContourIndex {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.cond.component_of(u);
        let cv = self.cond.component_of(v);
        if cu == cv {
            return u != v || self.cond.is_cyclic(cu);
        }
        self.comp_reaches(cu, cv)
    }

    fn index_entries(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }

    fn name(&self) -> &'static str {
        "contour"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_contour_keeps_maximum() {
        let mut c = PredContour::default();
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 3,
        });
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 5,
        });
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 1,
        });
        c.record_member(ChainPos {
            chain: ChainId(1),
            sid: 2,
        });
        assert_eq!(c.hop(ChainId(0)), Some(5));
        assert_eq!(c.member(ChainId(1)), Some(2));
        assert_eq!(c.hop(ChainId(1)), None);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn succ_contour_keeps_minimum() {
        let mut c = SuccContour::default();
        c.record_hop(ChainPos {
            chain: ChainId(2),
            sid: 7,
        });
        c.record_hop(ChainPos {
            chain: ChainId(2),
            sid: 4,
        });
        c.record_member(ChainPos {
            chain: ChainId(2),
            sid: 9,
        });
        assert_eq!(c.hop(ChainId(2)), Some(4));
        assert_eq!(c.member(ChainId(2)), Some(9));
        assert!(!c.has_cyclic_member(CompId(0)));
    }

    #[test]
    fn empty_contours() {
        assert!(PredContour::default().is_empty());
        assert!(SuccContour::default().is_empty());
    }
}
