//! Contours: merged predecessor/successor lists of a node set.
//!
//! `MergePredLists` (Procedure 2) merges the complete predecessor lists of a
//! set `S` of nodes into a single *predecessor contour* that keeps, per chain,
//! only the largest node known to reach some member of `S`.  Symmetrically
//! the *successor contour* keeps, per chain, the smallest node reachable from
//! some member.  Proposition 7 then answers "does `v` reach `S`?" /
//! "does `S` reach `v`?" against the contour instead of every member's list.
//!
//! Contours separate two kinds of per-chain information so that the
//! "non-empty path" semantics of the AD relationship is preserved even when
//! the probed node is itself a member of `S`:
//! * `hops` — positions contributed by `Lin`/`Lout` index entries (these nodes
//!   are known to reach / be reachable from a member), and
//! * `members` — the positions of the members of `S` themselves.

use std::collections::{HashMap, HashSet};

use gtpq_graph::condensation::CompId;

use crate::chain::{ChainId, ChainPos};

/// Predecessor contour of a node set `S` (merged `Lin` information).
///
/// For each chain, `hops` records the largest sequence number of a node known
/// to reach some member of `S`; `members` records the largest sequence number
/// of a member of `S` on that chain.
#[derive(Clone, Debug, Default)]
pub struct PredContour {
    pub(crate) hops: HashMap<ChainId, u32>,
    pub(crate) members: HashMap<ChainId, u32>,
    pub(crate) cyclic_members: HashSet<CompId>,
}

impl PredContour {
    /// Largest hop (exit-node) sequence number recorded for `chain`.
    pub fn hop(&self, chain: ChainId) -> Option<u32> {
        self.hops.get(&chain).copied()
    }

    /// Largest member sequence number recorded for `chain`.
    pub fn member(&self, chain: ChainId) -> Option<u32> {
        self.members.get(&chain).copied()
    }

    /// Whether the member set contains a component lying on a cycle equal to `comp`.
    pub fn has_cyclic_member(&self, comp: CompId) -> bool {
        self.cyclic_members.contains(&comp)
    }

    /// Total number of per-chain entries (the "contour size" reported in
    /// Example 8 of the paper).
    pub fn len(&self) -> usize {
        self.hops.len() + self.members.len()
    }

    /// Whether the contour is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty() && self.members.is_empty()
    }

    pub(crate) fn record_hop(&mut self, pos: ChainPos) {
        let entry = self.hops.entry(pos.chain).or_insert(pos.sid);
        if *entry < pos.sid {
            *entry = pos.sid;
        }
    }

    pub(crate) fn record_member(&mut self, pos: ChainPos) {
        let entry = self.members.entry(pos.chain).or_insert(pos.sid);
        if *entry < pos.sid {
            *entry = pos.sid;
        }
    }
}

/// Successor contour of a node set `S` (merged `Lout` information).
///
/// For each chain, `hops` records the smallest sequence number of a node known
/// to be reachable from some member of `S`; `members` the smallest member.
#[derive(Clone, Debug, Default)]
pub struct SuccContour {
    pub(crate) hops: HashMap<ChainId, u32>,
    pub(crate) members: HashMap<ChainId, u32>,
    pub(crate) cyclic_members: HashSet<CompId>,
}

impl SuccContour {
    /// Smallest hop (entry-node) sequence number recorded for `chain`.
    pub fn hop(&self, chain: ChainId) -> Option<u32> {
        self.hops.get(&chain).copied()
    }

    /// Smallest member sequence number recorded for `chain`.
    pub fn member(&self, chain: ChainId) -> Option<u32> {
        self.members.get(&chain).copied()
    }

    /// Whether the member set contains a component lying on a cycle equal to `comp`.
    pub fn has_cyclic_member(&self, comp: CompId) -> bool {
        self.cyclic_members.contains(&comp)
    }

    /// Total number of per-chain entries.
    pub fn len(&self) -> usize {
        self.hops.len() + self.members.len()
    }

    /// Whether the contour is empty.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty() && self.members.is_empty()
    }

    pub(crate) fn record_hop(&mut self, pos: ChainPos) {
        let entry = self.hops.entry(pos.chain).or_insert(pos.sid);
        if *entry > pos.sid {
            *entry = pos.sid;
        }
    }

    pub(crate) fn record_member(&mut self, pos: ChainPos) {
        let entry = self.members.entry(pos.chain).or_insert(pos.sid);
        if *entry > pos.sid {
            *entry = pos.sid;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_contour_keeps_maximum() {
        let mut c = PredContour::default();
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 3,
        });
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 5,
        });
        c.record_hop(ChainPos {
            chain: ChainId(0),
            sid: 1,
        });
        c.record_member(ChainPos {
            chain: ChainId(1),
            sid: 2,
        });
        assert_eq!(c.hop(ChainId(0)), Some(5));
        assert_eq!(c.member(ChainId(1)), Some(2));
        assert_eq!(c.hop(ChainId(1)), None);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn succ_contour_keeps_minimum() {
        let mut c = SuccContour::default();
        c.record_hop(ChainPos {
            chain: ChainId(2),
            sid: 7,
        });
        c.record_hop(ChainPos {
            chain: ChainId(2),
            sid: 4,
        });
        c.record_member(ChainPos {
            chain: ChainId(2),
            sid: 9,
        });
        assert_eq!(c.hop(ChainId(2)), Some(4));
        assert_eq!(c.member(ChainId(2)), Some(9));
        assert!(!c.has_cyclic_member(CompId(0)));
    }

    #[test]
    fn empty_contours() {
        assert!(PredContour::default().is_empty());
        assert!(SuccContour::default().is_empty());
    }
}
