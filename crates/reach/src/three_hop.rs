//! The 3-hop style reachability index (chain cover + hop lists).
//!
//! Following §4.2.1 of the paper, every component of the SCC condensation is
//! placed on a chain; reachability along a chain is a sequence-number
//! comparison, and cross-chain reachability is answered through per-node hop
//! lists:
//!
//! * `Lout(v)` — *entry* nodes: for some other chains, the smallest node on
//!   that chain reachable from `v`, stored only when it is not derivable from
//!   the next node up `v`'s own chain,
//! * `Lin(v)` — *exit* nodes: the largest node on another chain that reaches
//!   `v`, stored only when not derivable from the previous node down the chain.
//!
//! The *complete successor list* `X_v` (resp. *complete predecessor list*
//! `Y_v`) is recovered at query time by walking up (resp. down) `v`'s chain
//! through the `next`/`prev` tracing pointers and merging the hop lists, and
//! set-to-set queries go through the merged contours of Procedure 2
//! ([`ThreeHop::merge_pred_lists`] / [`ThreeHop::merge_succ_lists`]) and
//! Proposition 7 ([`ThreeHop::node_reaches_set`] / [`ThreeHop::set_reaches_node`]).
//!
//! Construction note: the original 3-hop paper compresses the hop lists
//! further with a densest-subgraph heuristic over the chain-to-chain
//! structure.  We use the chain-cover entry/exit formulation directly (the
//! same information, the same query procedure, the same interface); the
//! difference only affects the constant factor of the index size, which is
//! recorded in DESIGN.md as a documented substitution.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gtpq_graph::condensation::CompId;
use gtpq_graph::{Condensation, DataGraph, NodeId};

use crate::chain::{ChainDecomposition, ChainId, ChainPos};
use crate::contour::{PredContour, SuccContour};
use crate::Reachability;

/// A hop-list entry: a position on some chain.
type Hop = ChainPos;

/// The 3-hop reachability index.
pub struct ThreeHop {
    cond: Condensation,
    chains: ChainDecomposition,
    /// Entry ("out") hop lists per component.
    lout: Vec<Vec<Hop>>,
    /// Exit ("in") hop lists per component.
    lin: Vec<Vec<Hop>>,
    /// Forward tracing pointer: next component up the chain with a non-empty `Lout`.
    next_ptr: Vec<Option<CompId>>,
    /// Backward tracing pointer: previous component down the chain with a non-empty `Lin`.
    prev_ptr: Vec<Option<CompId>>,
    /// Number of hop-list elements looked up since the last reset (Fig. 10
    /// "#index").  Atomic so a shared index can serve concurrent queries.
    lookups: AtomicU64,
}

impl ThreeHop {
    /// Builds the index for `g`.
    pub fn new(g: &DataGraph) -> Self {
        Self::with_condensation(Condensation::new(g))
    }

    /// Builds the index on an already-computed condensation of the target
    /// graph (the epoch-rotation path of the live-graph service).
    pub fn with_condensation(cond: Condensation) -> Self {
        let chains = ChainDecomposition::from_condensation(&cond);
        let n = cond.component_count();

        // Full entry/exit maps per component (chain -> extreme sid), computed
        // in (reverse) topological order; own-chain entries are omitted.
        let mut succ_full: Vec<HashMap<ChainId, u32>> = vec![HashMap::new(); n];
        let topo: &[CompId] = cond.topological_order();
        for &c in topo.iter().rev() {
            let my_chain = chains.position(c).chain;
            let mut map: HashMap<ChainId, u32> = HashMap::new();
            for &child in cond.successors(c) {
                let cpos = chains.position(child);
                if cpos.chain != my_chain {
                    merge_min(&mut map, cpos.chain, cpos.sid);
                }
                for (&chain, &sid) in &succ_full[child.index()] {
                    if chain != my_chain {
                        merge_min(&mut map, chain, sid);
                    }
                }
            }
            succ_full[c.index()] = map;
        }

        let mut pred_full: Vec<HashMap<ChainId, u32>> = vec![HashMap::new(); n];
        for &c in topo {
            let my_chain = chains.position(c).chain;
            let mut map: HashMap<ChainId, u32> = HashMap::new();
            for &parent in cond.predecessors(c) {
                let ppos = chains.position(parent);
                if ppos.chain != my_chain {
                    merge_max(&mut map, ppos.chain, ppos.sid);
                }
                for (&chain, &sid) in &pred_full[parent.index()] {
                    if chain != my_chain {
                        merge_max(&mut map, chain, sid);
                    }
                }
            }
            pred_full[c.index()] = map;
        }

        // Hop lists: keep only entries not derivable from the chain neighbour.
        let mut lout: Vec<Vec<Hop>> = vec![Vec::new(); n];
        let mut lin: Vec<Vec<Hop>> = vec![Vec::new(); n];
        for comp in 0..n {
            let c = CompId(comp as u32);
            let pos = chains.position(c);
            let chain_nodes = chains.chain(pos.chain);
            let next_on_chain = chain_nodes.get(pos.sid as usize + 1).copied();
            let prev_on_chain = if pos.sid > 0 {
                Some(chain_nodes[pos.sid as usize - 1])
            } else {
                None
            };
            for (&chain, &sid) in &succ_full[comp] {
                let derivable = next_on_chain
                    .map(|nx| succ_full[nx.index()].get(&chain).is_some_and(|&s| s <= sid))
                    .unwrap_or(false);
                if !derivable {
                    lout[comp].push(Hop { chain, sid });
                }
            }
            for (&chain, &sid) in &pred_full[comp] {
                let derivable = prev_on_chain
                    .map(|pv| pred_full[pv.index()].get(&chain).is_some_and(|&s| s >= sid))
                    .unwrap_or(false);
                if !derivable {
                    lin[comp].push(Hop { chain, sid });
                }
            }
            lout[comp].sort_unstable_by_key(|h| h.chain);
            lin[comp].sort_unstable_by_key(|h| h.chain);
        }

        // Tracing pointers.
        let mut next_ptr: Vec<Option<CompId>> = vec![None; n];
        let mut prev_ptr: Vec<Option<CompId>> = vec![None; n];
        for ci in 0..chains.chain_count() {
            let chain = chains.chain(ChainId(ci as u32));
            let mut next_with_lout: Option<CompId> = None;
            for &c in chain.iter().rev() {
                next_ptr[c.index()] = next_with_lout;
                if !lout[c.index()].is_empty() {
                    next_with_lout = Some(c);
                }
            }
            let mut prev_with_lin: Option<CompId> = None;
            for &c in chain.iter() {
                prev_ptr[c.index()] = prev_with_lin;
                if !lin[c.index()].is_empty() {
                    prev_with_lin = Some(c);
                }
            }
        }

        Self {
            cond,
            chains,
            lout,
            lin,
            next_ptr,
            prev_ptr,
            lookups: AtomicU64::new(0),
        }
    }

    /// The SCC condensation the index is built on.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// The chain decomposition used by the index.
    pub fn chains(&self) -> &ChainDecomposition {
        &self.chains
    }

    /// Component of a data node.
    #[inline]
    pub fn comp_of(&self, v: NodeId) -> CompId {
        self.cond.component_of(v)
    }

    /// Chain position of a data node (through its component).
    #[inline]
    pub fn position_of(&self, v: NodeId) -> ChainPos {
        self.chains.position(self.comp_of(v))
    }

    /// Whether the component of `v` lies on a cycle.
    #[inline]
    pub fn is_cyclic(&self, v: NodeId) -> bool {
        self.cond.is_cyclic(self.comp_of(v))
    }

    /// Number of hop-list elements looked up since the last
    /// [`reset_lookups`](Self::reset_lookups).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Resets the lookup counter.
    pub fn reset_lookups(&self) {
        self.lookups.store(0, Ordering::Relaxed);
    }

    fn count_lookup(&self, n: usize) {
        self.lookups.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// The complete successor entries `X_v` of a component, *excluding* the
    /// component itself: for each chain the smallest component strictly
    /// reachable from `comp`, restricted to chains other than its own.
    fn complete_succ_entries(&self, comp: CompId) -> HashMap<ChainId, u32> {
        let mut map = HashMap::new();
        let mut cursor = Some(comp);
        while let Some(c) = cursor {
            let list = &self.lout[c.index()];
            self.count_lookup(list.len());
            for hop in list {
                merge_min(&mut map, hop.chain, hop.sid);
            }
            cursor = self.next_ptr[c.index()];
        }
        map
    }

    /// The complete predecessor entries `Y_v` of a component, excluding itself.
    fn complete_pred_entries(&self, comp: CompId) -> HashMap<ChainId, u32> {
        let mut map = HashMap::new();
        let mut cursor = Some(comp);
        while let Some(c) = cursor {
            let list = &self.lin[c.index()];
            self.count_lookup(list.len());
            for hop in list {
                merge_max(&mut map, hop.chain, hop.sid);
            }
            cursor = self.prev_ptr[c.index()];
        }
        map
    }

    /// Whether component `a` strictly reaches component `b` (`a != b`).
    fn comp_reaches(&self, a: CompId, b: CompId) -> bool {
        let pa = self.chains.position(a);
        let pb = self.chains.position(b);
        if pa.chain == pb.chain {
            return pa.sid < pb.sid;
        }
        // Entry node of `a` on b's chain at or below b?
        let x = self.complete_succ_entries(a);
        if x.get(&pb.chain).is_some_and(|&sid| sid <= pb.sid) {
            return true;
        }
        // Exit node of `b` on a's chain at or above a?
        let y = self.complete_pred_entries(b);
        if y.get(&pa.chain).is_some_and(|&sid| sid >= pa.sid) {
            return true;
        }
        // General case: a common chain where an entry of `a` precedes an exit of `b`.
        for (&chain, &xs) in &x {
            if y.get(&chain).is_some_and(|&ys| xs <= ys) {
                return true;
            }
        }
        false
    }

    /// Merges the complete predecessor lists of `nodes` into a predecessor
    /// contour (Procedure 2, `MergePredLists`).
    ///
    /// Walks each member's chain downwards through the `prev` tracing
    /// pointers; a per-chain `visited` watermark guarantees that no `Lin`
    /// list is looked up twice even when members share chains.
    pub fn merge_pred_lists(&self, nodes: &[NodeId]) -> PredContour {
        let mut contour = PredContour::default();
        // Largest sid already walked-from, per chain.
        let mut visited: HashMap<ChainId, u32> = HashMap::new();
        // De-duplicate components (several data nodes can share one).
        let mut comps: Vec<CompId> = nodes.iter().map(|&v| self.comp_of(v)).collect();
        comps.sort_unstable();
        comps.dedup();
        for &comp in &comps {
            let pos = self.chains.position(comp);
            contour.record_member(pos);
            if self.cond.is_cyclic(comp) {
                contour.cyclic_members.insert(comp);
            }
            let floor = visited.get(&pos.chain).copied();
            if floor.is_some_and(|f| f >= pos.sid) {
                continue;
            }
            // Walk down the chain collecting Lin lists until the watermark.
            let mut cursor = Some(comp);
            while let Some(c) = cursor {
                let cpos = self.chains.position(c);
                if floor.is_some_and(|f| cpos.sid <= f) {
                    break;
                }
                let list = &self.lin[c.index()];
                self.count_lookup(list.len());
                for hop in list {
                    contour.record_hop(*hop);
                }
                cursor = self.prev_ptr[c.index()];
            }
            visited
                .entry(pos.chain)
                .and_modify(|f| *f = (*f).max(pos.sid))
                .or_insert(pos.sid);
        }
        contour
    }

    /// Merges the complete successor lists of `nodes` into a successor
    /// contour (`MergeSuccLists`).
    pub fn merge_succ_lists(&self, nodes: &[NodeId]) -> SuccContour {
        let mut contour = SuccContour::default();
        // Smallest sid already walked-from, per chain.
        let mut visited: HashMap<ChainId, u32> = HashMap::new();
        let mut comps: Vec<CompId> = nodes.iter().map(|&v| self.comp_of(v)).collect();
        comps.sort_unstable();
        comps.dedup();
        for &comp in &comps {
            let pos = self.chains.position(comp);
            contour.record_member(pos);
            if self.cond.is_cyclic(comp) {
                contour.cyclic_members.insert(comp);
            }
            let ceiling = visited.get(&pos.chain).copied();
            if ceiling.is_some_and(|c| c <= pos.sid) {
                continue;
            }
            let mut cursor = Some(comp);
            while let Some(c) = cursor {
                let cpos = self.chains.position(c);
                if ceiling.is_some_and(|ceil| cpos.sid >= ceil) {
                    break;
                }
                let list = &self.lout[c.index()];
                self.count_lookup(list.len());
                for hop in list {
                    contour.record_hop(*hop);
                }
                cursor = self.next_ptr[c.index()];
            }
            visited
                .entry(pos.chain)
                .and_modify(|c| *c = (*c).min(pos.sid))
                .or_insert(pos.sid);
        }
        contour
    }

    /// Proposition 7, first half: whether `v` reaches at least one node of the
    /// set summarized by `contour` through a non-empty path.
    pub fn node_reaches_set(&self, v: NodeId, contour: &PredContour) -> bool {
        let comp = self.comp_of(v);
        let pos = self.chains.position(comp);
        // A member strictly above v on its own chain.
        if contour.member(pos.chain).is_some_and(|m| m > pos.sid) {
            return true;
        }
        // An exit node at or above v on its own chain.
        if contour.hop(pos.chain).is_some_and(|h| h >= pos.sid) {
            return true;
        }
        // v lies on a cycle containing a member.
        if contour.has_cyclic_member(comp) {
            return true;
        }
        // Cross-chain: an entry of v that precedes a member or an exit node.
        let x = self.complete_succ_entries(comp);
        for (&chain, &sid) in &x {
            if contour.member(chain).is_some_and(|m| m >= sid) {
                return true;
            }
            if contour.hop(chain).is_some_and(|h| h >= sid) {
                return true;
            }
        }
        false
    }

    /// Proposition 7, second half: whether at least one node of the set
    /// summarized by `contour` reaches `v` through a non-empty path.
    pub fn set_reaches_node(&self, contour: &SuccContour, v: NodeId) -> bool {
        let comp = self.comp_of(v);
        let pos = self.chains.position(comp);
        if contour.member(pos.chain).is_some_and(|m| m < pos.sid) {
            return true;
        }
        if contour.hop(pos.chain).is_some_and(|h| h <= pos.sid) {
            return true;
        }
        if contour.has_cyclic_member(comp) {
            return true;
        }
        let y = self.complete_pred_entries(comp);
        for (&chain, &sid) in &y {
            if contour.member(chain).is_some_and(|m| m <= sid) {
                return true;
            }
            if contour.hop(chain).is_some_and(|h| h <= sid) {
                return true;
            }
        }
        false
    }

    /// Precomputed view of a source node, used when a caller needs to test
    /// reachability from one node to many targets (maximal matching graph
    /// construction): the complete successor entries are computed once.
    pub fn source_view(&self, u: NodeId) -> SourceView {
        let comp = self.comp_of(u);
        SourceView {
            comp,
            pos: self.chains.position(comp),
            cyclic: self.cond.is_cyclic(comp),
            entries: self.complete_succ_entries(comp),
        }
    }

    /// Whether the source of `view` reaches `v` through a non-empty path.
    pub fn view_reaches(&self, view: &SourceView, v: NodeId) -> bool {
        let comp = self.comp_of(v);
        if comp == view.comp {
            return view.cyclic || self.cond.members(comp).len() > 1;
        }
        let pos = self.chains.position(comp);
        if pos.chain == view.pos.chain {
            return view.pos.sid < pos.sid;
        }
        view.entries
            .get(&pos.chain)
            .is_some_and(|&sid| sid <= pos.sid)
    }

    /// Total number of hop-list entries (index size).
    pub fn hop_entries(&self) -> usize {
        self.lout.iter().map(Vec::len).sum::<usize>() + self.lin.iter().map(Vec::len).sum::<usize>()
    }
}

/// Precomputed complete-successor view of one source node.
pub struct SourceView {
    comp: CompId,
    pos: ChainPos,
    cyclic: bool,
    entries: HashMap<ChainId, u32>,
}

impl Reachability for ThreeHop {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        let cu = self.comp_of(u);
        let cv = self.comp_of(v);
        if cu == cv {
            return u != v || self.cond.is_cyclic(cu);
        }
        self.comp_reaches(cu, cv)
    }

    fn index_entries(&self) -> usize {
        self.hop_entries()
    }

    fn name(&self) -> &'static str {
        "3-hop"
    }

    fn lookup_count(&self) -> u64 {
        ThreeHop::lookup_count(self)
    }

    fn reset_lookups(&self) {
        ThreeHop::reset_lookups(self)
    }

    /// Merged predecessor contour + Proposition 7 instead of pairwise probes.
    fn pred_probe<'s>(&'s self, targets: &[NodeId]) -> crate::Probe<'s> {
        let contour = self.merge_pred_lists(targets);
        Box::new(move |v| self.node_reaches_set(v, &contour))
    }

    /// Merged successor contour + Proposition 7 instead of pairwise probes.
    fn succ_probe<'s>(&'s self, sources: &[NodeId]) -> crate::Probe<'s> {
        let contour = self.merge_succ_lists(sources);
        Box::new(move |v| self.set_reaches_node(&contour, v))
    }

    /// One complete-successor-entry computation shared by all targets.
    fn source_probe<'s>(&'s self, source: NodeId) -> crate::Probe<'s> {
        let view = self.source_view(source);
        Box::new(move |v| self.view_reaches(&view, v))
    }
}

fn merge_min(map: &mut HashMap<ChainId, u32>, chain: ChainId, sid: u32) {
    map.entry(chain)
        .and_modify(|s| *s = (*s).min(sid))
        .or_insert(sid);
}

fn merge_max(map: &mut HashMap<ChainId, u32>, chain: ChainId, sid: u32) {
    map.entry(chain)
        .and_modify(|s| *s = (*s).max(sid))
        .or_insert(sid);
}

#[cfg(test)]
mod tests {
    use gtpq_graph::traversal::is_reachable;
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn build(edges: &[(u32, u32)], n: u32) -> DataGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..n).map(|_| b.add_node()).collect();
        for &(x, y) in edges {
            b.add_edge(v[x as usize], v[y as usize]);
        }
        b.build()
    }

    fn assert_matches_oracle(g: &DataGraph) {
        let idx = ThreeHop::new(g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    idx.reaches(u, v),
                    is_reachable(g, u, v),
                    "mismatch for {u} -> {v}"
                );
            }
        }
    }

    #[test]
    fn multi_chain_dag() {
        // Forces at least three chains and multi-hop cross-chain paths.
        let g = build(
            &[
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (0, 4),
                (4, 8),
                (3, 7),
                (2, 5),
            ],
            9,
        );
        assert_matches_oracle(&g);
    }

    #[test]
    fn paper_figure2_graph() {
        // The data graph of Fig. 2(a): 16 nodes v1..v16 -> ids 0..15.
        let edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 6),
            (2, 7),
            (3, 7),
            (3, 4),
            (4, 5),
            (4, 8),
            (5, 8),
            (6, 10),
            (6, 9),
            (2, 10),
            (7, 10),
            (7, 11),
            (10, 13),
            (10, 12),
            (11, 12),
            (11, 14),
            (12, 15),
            (13, 14),
        ];
        let g = build(&edges, 16);
        assert_matches_oracle(&g);
    }

    #[test]
    fn cyclic_graph() {
        let g = build(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 3)], 6);
        assert_matches_oracle(&g);
    }

    #[test]
    fn contours_answer_set_reachability() {
        let g = build(&[(0, 1), (1, 2), (3, 4), (4, 2), (2, 5), (5, 6), (3, 6)], 7);
        let idx = ThreeHop::new(&g);
        let targets = vec![NodeId(5), NodeId(6)];
        let cp = idx.merge_pred_lists(&targets);
        for u in g.nodes() {
            let expected = targets.iter().any(|&t| is_reachable(&g, u, t));
            assert_eq!(idx.node_reaches_set(u, &cp), expected, "node {u}");
        }
        let sources = vec![NodeId(0), NodeId(3)];
        let cs = idx.merge_succ_lists(&sources);
        for v in g.nodes() {
            let expected = sources.iter().any(|&s| is_reachable(&g, s, v));
            assert_eq!(idx.set_reaches_node(&cs, v), expected, "node {v}");
        }
    }

    #[test]
    fn contour_membership_does_not_imply_reachability() {
        // 0 -> 1, 2 isolated. 2 is in the target set but nothing reaches it and
        // it reaches nothing.
        let g = build(&[(0, 1)], 3);
        let idx = ThreeHop::new(&g);
        let cp = idx.merge_pred_lists(&[NodeId(2)]);
        assert!(!idx.node_reaches_set(NodeId(2), &cp));
        assert!(!idx.node_reaches_set(NodeId(0), &cp));
        let cs = idx.merge_succ_lists(&[NodeId(2)]);
        assert!(!idx.set_reaches_node(&cs, NodeId(2)));
    }

    #[test]
    fn cyclic_member_is_reported_reachable_from_itself() {
        let g = build(&[(0, 1), (1, 0), (1, 2)], 3);
        let idx = ThreeHop::new(&g);
        let cp = idx.merge_pred_lists(&[NodeId(0)]);
        // 0 lies on a cycle, so it reaches the set {0}.
        assert!(idx.node_reaches_set(NodeId(0), &cp));
        let cs = idx.merge_succ_lists(&[NodeId(0)]);
        assert!(idx.set_reaches_node(&cs, NodeId(0)));
    }

    #[test]
    fn source_view_matches_pairwise_reaches() {
        let g = build(
            &[
                (0, 1),
                (1, 2),
                (3, 4),
                (4, 2),
                (2, 5),
                (5, 6),
                (3, 6),
                (6, 3),
            ],
            8,
        );
        let idx = ThreeHop::new(&g);
        for u in g.nodes() {
            let view = idx.source_view(u);
            for v in g.nodes() {
                assert_eq!(idx.view_reaches(&view, v), idx.reaches(u, v), "{u} -> {v}");
            }
        }
    }

    #[test]
    fn lookup_counter_counts_and_resets() {
        let g = build(&[(0, 1), (1, 2), (3, 1), (2, 4)], 5);
        let idx = ThreeHop::new(&g);
        idx.reset_lookups();
        let _ = idx.reaches(NodeId(0), NodeId(4));
        let _ = idx.merge_pred_lists(&[NodeId(4), NodeId(2)]);
        // Counter may be zero for purely chain-local queries, so only check reset.
        idx.reset_lookups();
        assert_eq!(idx.lookup_count(), 0);
    }

    #[test]
    fn index_entries_reported() {
        let g = build(&[(0, 1), (2, 1), (1, 3), (3, 4), (2, 4)], 5);
        let idx = ThreeHop::new(&g);
        assert_eq!(idx.index_entries(), idx.hop_entries());
        assert_eq!(idx.name(), "3-hop");
    }
}
