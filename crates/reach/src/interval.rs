//! Interval (region) encoding for trees and forests.
//!
//! The classical `(start, end, level)` labelling assigned by a depth-first
//! traversal: `u` is an ancestor of `v` iff `start(u) < start(v) && end(v) <=
//! end(u)`.  This is the node encoding that the tree-structured baselines
//! (TwigStack, Twig2Stack) rely on, and that the paper points out does *not*
//! generalise to graphs — which is exactly why it lives here as a
//! forest-only index.

use gtpq_graph::{DataGraph, NodeId};

use crate::Reachability;

/// Region label of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Preorder rank (start of the interval).
    pub start: u32,
    /// End of the interval: strictly larger than the start of every descendant.
    pub end: u32,
    /// Depth in the tree (roots have level 0).
    pub level: u32,
}

/// Interval labelling of a forest.
#[derive(Clone, Debug)]
pub struct IntervalIndex {
    regions: Vec<Region>,
}

/// Error returned when the input graph is not a forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotAForest {
    /// A node with more than one parent, or on a cycle.
    pub offending: NodeId,
}

impl std::fmt::Display for NotAForest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph is not a forest: node {} has multiple parents or lies on a cycle",
            self.offending
        )
    }
}

impl std::error::Error for NotAForest {}

impl IntervalIndex {
    /// Builds the labelling.  Fails when some node has in-degree greater than
    /// one or the graph contains a cycle.
    pub fn new(g: &DataGraph) -> Result<Self, NotAForest> {
        for v in g.nodes() {
            if g.in_degree(v) > 1 {
                return Err(NotAForest { offending: v });
            }
        }
        let n = g.node_count();
        let mut regions = vec![
            Region {
                start: 0,
                end: 0,
                level: 0
            };
            n
        ];
        let mut visited = vec![false; n];
        let mut counter: u32 = 0;
        for root in g.nodes() {
            if g.in_degree(root) != 0 || visited[root.index()] {
                continue;
            }
            // Iterative DFS assigning start on entry and end on exit.
            let mut stack: Vec<(NodeId, usize, u32)> = vec![(root, 0, 0)];
            visited[root.index()] = true;
            regions[root.index()].start = counter;
            regions[root.index()].level = 0;
            counter += 1;
            while let Some(&mut (v, ref mut cursor, level)) = stack.last_mut() {
                let children = g.children(v);
                if *cursor < children.len() {
                    let c = children[*cursor];
                    *cursor += 1;
                    if visited[c.index()] {
                        return Err(NotAForest { offending: c });
                    }
                    visited[c.index()] = true;
                    regions[c.index()].start = counter;
                    regions[c.index()].level = level + 1;
                    counter += 1;
                    stack.push((c, 0, level + 1));
                } else {
                    regions[v.index()].end = counter;
                    counter += 1;
                    stack.pop();
                }
            }
        }
        // Any unvisited node lies on a cycle (no in-degree-zero entry point).
        if let Some(v) = g.nodes().find(|v| !visited[v.index()]) {
            return Err(NotAForest { offending: v });
        }
        Ok(Self { regions })
    }

    /// The region label of `v`.
    #[inline]
    pub fn region(&self, v: NodeId) -> Region {
        self.regions[v.index()]
    }

    /// Whether `u` is a proper ancestor of `v`.
    #[inline]
    pub fn is_ancestor(&self, u: NodeId, v: NodeId) -> bool {
        let ru = self.regions[u.index()];
        let rv = self.regions[v.index()];
        ru.start < rv.start && rv.end <= ru.end
    }

    /// Whether `u` is the parent of `v` according to the levels (ancestor with
    /// a level difference of one).
    #[inline]
    pub fn is_parent(&self, u: NodeId, v: NodeId) -> bool {
        self.is_ancestor(u, v) && self.regions[v.index()].level == self.regions[u.index()].level + 1
    }
}

impl Reachability for IntervalIndex {
    fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.is_ancestor(u, v)
    }

    fn index_entries(&self) -> usize {
        self.regions.len()
    }

    fn name(&self) -> &'static str {
        "interval"
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::traversal::is_reachable;
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn tree() -> DataGraph {
        //        0
        //      /   \
        //     1     2
        //    / \     \
        //   3   4     5
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        b.add_edge(v[1], v[4]);
        b.add_edge(v[2], v[5]);
        b.build()
    }

    #[test]
    fn matches_bfs_reachability_on_tree() {
        let g = tree();
        let idx = IntervalIndex::new(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(idx.reaches(u, v), is_reachable(&g, u, v), "{u} -> {v}");
            }
        }
    }

    #[test]
    fn levels_and_parenthood() {
        let g = tree();
        let idx = IntervalIndex::new(&g).unwrap();
        assert_eq!(idx.region(NodeId(0)).level, 0);
        assert_eq!(idx.region(NodeId(3)).level, 2);
        assert!(idx.is_parent(NodeId(1), NodeId(3)));
        assert!(!idx.is_parent(NodeId(0), NodeId(3)));
        assert!(idx.is_ancestor(NodeId(0), NodeId(3)));
    }

    #[test]
    fn rejects_dags_and_cycles() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..3).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[2]);
        let err = IntervalIndex::new(&b.build()).unwrap_err();
        assert_eq!(err.offending, NodeId(2));
        assert!(err.to_string().contains("not a forest"));

        let mut b = GraphBuilder::new();
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        b.add_edge(c, a);
        assert!(IntervalIndex::new(&b.build()).is_err());
    }

    #[test]
    fn forest_with_multiple_roots() {
        let mut b = GraphBuilder::new();
        let v: Vec<NodeId> = (0..4).map(|_| b.add_node()).collect();
        b.add_edge(v[0], v[1]);
        b.add_edge(v[2], v[3]);
        let idx = IntervalIndex::new(&b.build()).unwrap();
        assert!(idx.is_ancestor(v[0], v[1]));
        assert!(!idx.is_ancestor(v[0], v[3]));
        assert_eq!(idx.name(), "interval");
        assert_eq!(idx.index_entries(), 4);
    }
}
