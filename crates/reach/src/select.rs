//! Heuristic reachability-backend selection from graph statistics.
//!
//! The GTEA engine accepts any [`Reachability`](crate::Reachability)
//! backend; which one wins
//! depends on the shape of the data graph.  The rules encoded here follow the
//! paper's own measurements (§5.2) and the backends' asymptotics:
//!
//! * **forest** → [`IntervalIndex`]: O(1) probes, one region per node;
//! * **small graph** → [`TransitiveClosure`]: exact bitset, fastest probes,
//!   quadratic memory is irrelevant below a few thousand components;
//! * **heavily cyclic graph** (condensation much smaller than the graph) →
//!   [`ContourIndex`]: materialized successor contours stay small once the
//!   SCCs collapse;
//! * **sparse, shallow, tree-like graph** → [`Sspi`]: interval cover plus few
//!   surplus edges;
//! * **everything else** → [`ThreeHop`]: the paper's index, the scalable
//!   default.
//!
//! [`ChainCover`] is never auto-selected: its dense
//! (component × chain) table is a space/time trade-off the operator must opt
//! into explicitly via [`BackendKind::Chain`].

use std::sync::Arc;

use gtpq_graph::{Condensation, DataGraph};

use crate::{
    ChainCover, ContourIndex, IntervalIndex, SharedIndex, Sspi, ThreeHop, TransitiveClosure,
};

/// The reachability backends the service can run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Exact bitset transitive closure.
    Closure,
    /// 3-hop chain cover + hop lists (the paper's index).
    ThreeHop,
    /// Dense per-(component, chain) table.
    Chain,
    /// Materialized per-component successor contours.
    Contour,
    /// Spanning-tree intervals + surplus predecessor lists.
    Sspi,
    /// Pre/post-order regions; forests only.
    Interval,
}

impl BackendKind {
    /// The `build_index` string naming this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Closure => "closure",
            BackendKind::ThreeHop => "3hop",
            BackendKind::Chain => "chain",
            BackendKind::Contour => "contour",
            BackendKind::Sspi => "sspi",
            BackendKind::Interval => "interval",
        }
    }

    /// Builds this backend for `g` as a thread-shareable index.
    ///
    /// [`BackendKind::Interval`] falls back to [`ThreeHop`] when `g` is not a
    /// forest (the only fallible construction).
    pub fn build_shared(self, g: &DataGraph) -> SharedIndex {
        self.build_shared_with(g, &Condensation::new(g))
    }

    /// Like [`build_shared`](Self::build_shared) but reusing an
    /// already-computed condensation of `g` — the live-graph service calls
    /// this on epoch rotation with the incrementally maintained condensation,
    /// skipping the Tarjan pass every condensation-based backend would
    /// otherwise repeat.
    pub fn build_shared_with(self, g: &DataGraph, cond: &Condensation) -> SharedIndex {
        match self {
            BackendKind::Closure => Arc::new(TransitiveClosure::with_condensation(cond.clone())),
            BackendKind::ThreeHop => Arc::new(ThreeHop::with_condensation(cond.clone())),
            BackendKind::Chain => Arc::new(ChainCover::with_condensation(cond.clone())),
            BackendKind::Contour => Arc::new(ContourIndex::with_condensation(cond.clone())),
            BackendKind::Sspi => Arc::new(Sspi::with_condensation(cond.clone())),
            BackendKind::Interval => match IntervalIndex::new(g) {
                Ok(idx) => Arc::new(idx),
                Err(_) => Arc::new(ThreeHop::with_condensation(cond.clone())),
            },
        }
    }
}

/// The statistics the selector looks at (exposed for logging/metrics).
#[derive(Clone, Copy, Debug)]
pub struct GraphProfile {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Edges per node.
    pub density: f64,
    /// Whether the graph is already acyclic.
    pub is_dag: bool,
    /// Whether every node has in-degree ≤ 1 and the graph is acyclic
    /// (a forest of rooted trees).
    pub is_forest: bool,
    /// Number of strongly connected components.
    pub condensation_size: usize,
}

impl GraphProfile {
    /// Computes the profile of `g` (builds one transient condensation,
    /// O(V + E)).
    pub fn compute(g: &DataGraph) -> Self {
        Self::compute_with(g, &Condensation::new(g))
    }

    /// Computes the profile of `g` reusing an existing condensation of it.
    pub fn compute_with(g: &DataGraph, cond: &Condensation) -> Self {
        let nodes = g.node_count();
        let edges = g.edge_count();
        let is_dag = cond.input_was_dag();
        let is_forest = is_dag && g.nodes().all(|v| g.in_degree(v) <= 1);
        Self {
            nodes,
            edges,
            density: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
            is_dag,
            is_forest,
            condensation_size: cond.component_count(),
        }
    }
}

/// A backend choice together with the evidence behind it.
#[derive(Clone, Copy, Debug)]
pub struct BackendSelection {
    /// The chosen backend.
    pub kind: BackendKind,
    /// One-line human-readable justification (for logs and metrics).
    pub reason: &'static str,
    /// The statistics the decision was based on.
    pub profile: GraphProfile,
}

/// Relative cost hints of one backend on one graph, in planner units
/// (1.0 ≈ one cache-friendly array probe).  The query planner weighs
/// `build` (paid once, then shared via [`SharedIndex`]) against
/// `probe × estimated probe count` to pick a backend *per query*; the
/// absolute scale is irrelevant, only the ratios matter.
#[derive(Clone, Copy, Debug)]
pub struct BackendCostHints {
    /// Estimated construction cost (0 marks an already-built backend).
    pub build: f64,
    /// Estimated cost per reachability probe.
    pub probe: f64,
    /// Whether the backend can serve this graph at all
    /// ([`BackendKind::Interval`] requires a forest).
    pub supported: bool,
}

impl BackendKind {
    /// Cost hints for this backend on a graph with the given profile.
    ///
    /// The constants encode the backends' asymptotics on the SCC condensation
    /// (`n` components, `e` edges): the closure probes in O(1) but builds a
    /// quadratic bitset; 3-hop builds near-linearithmically and probes
    /// through hop-list merges; contours materialize per-component successor
    /// lists; SSPI is interval-cheap on tree-like graphs but pays for surplus
    /// edges as density grows; interval probes in O(1) on forests.
    /// [`BackendKind::Chain`]'s dense (component × chain) table stays opt-in:
    /// `supported` is false so the planner never auto-selects it.
    pub fn cost_hints(self, profile: &GraphProfile) -> BackendCostHints {
        let n = profile.condensation_size.max(1) as f64;
        let e = profile.edges.max(1) as f64;
        let hints = |build: f64, probe: f64| BackendCostHints {
            build,
            probe,
            supported: true,
        };
        match self {
            // One bitset row per component: n²/64 words to fill.
            BackendKind::Closure => hints(n * n / 64.0, 1.0),
            // Chain decomposition + hop lists: ~e·log n build, merged-list probes.
            BackendKind::ThreeHop => hints(e * n.log2().max(1.0), 8.0),
            // Materialized contours: ~n·density lists, binary-searched probes.
            BackendKind::Contour => hints(n * profile.density.max(1.0) * 4.0, 6.0),
            // Spanning-tree intervals + surplus lists; probes degrade with
            // the surplus-edge count, i.e. with density beyond tree-like.
            BackendKind::Sspi => hints(n + e, 2.0 + 8.0 * (profile.density - 1.0).max(0.0)),
            BackendKind::Interval => BackendCostHints {
                build: n,
                probe: 1.0,
                supported: profile.is_forest,
            },
            BackendKind::Chain => BackendCostHints {
                build: n * n,
                probe: 2.0,
                supported: false,
            },
        }
    }

    /// The backends the per-query planner may choose among.
    pub const AUTO_CANDIDATES: [BackendKind; 5] = [
        BackendKind::Closure,
        BackendKind::ThreeHop,
        BackendKind::Contour,
        BackendKind::Sspi,
        BackendKind::Interval,
    ];
}

/// Components below which the quadratic bitset closure is unbeatable
/// (4096² bits = 2 MiB of rows).
const CLOSURE_MAX_COMPONENTS: usize = 4096;

/// Picks a reachability backend for `g` from its statistics.
pub fn select_backend(g: &DataGraph) -> BackendSelection {
    select_backend_with(g, &Condensation::new(g))
}

/// Like [`select_backend`] but reusing an existing condensation of `g`.
pub fn select_backend_with(g: &DataGraph, cond: &Condensation) -> BackendSelection {
    let profile = GraphProfile::compute_with(g, cond);
    let (kind, reason) = if profile.is_forest {
        (BackendKind::Interval, "forest: O(1) interval containment")
    } else if profile.condensation_size <= CLOSURE_MAX_COMPONENTS {
        (
            BackendKind::Closure,
            "small condensation: exact bitset closure fits in cache",
        )
    } else if profile.condensation_size * 4 <= profile.nodes {
        (
            BackendKind::Contour,
            "heavily cyclic: SCCs collapse, materialized contours stay small",
        )
    } else if profile.is_dag && profile.density < 1.2 {
        (
            BackendKind::Sspi,
            "sparse tree-like DAG: interval cover + few surplus edges",
        )
    } else {
        (
            BackendKind::ThreeHop,
            "general graph: 3-hop chain cover + hop lists",
        )
    };
    BackendSelection {
        kind,
        reason,
        profile,
    }
}

/// Picks a reachability backend for one *query*, weighting per-backend cost
/// hints by the query's estimated probe count.
///
/// `prebuilt` lists backends whose index already exists (their build cost is
/// sunk, so it is charged as zero); anything else pays
/// [`BackendCostHints::build`] up front.  With a small probe estimate the
/// sunk-cost term dominates and the prebuilt backend wins; with a large one
/// the planner will pay for a cheaper-probing index once and amortize it —
/// exactly the [`select_backend`] trade-offs, but driven by the workload
/// instead of graph shape alone.
pub fn select_backend_for_query(
    profile: &GraphProfile,
    estimated_probes: u64,
    prebuilt: &[BackendKind],
) -> BackendSelection {
    let mut best: Option<(f64, BackendKind)> = None;
    for kind in BackendKind::AUTO_CANDIDATES {
        let hints = kind.cost_hints(profile);
        if !hints.supported {
            continue;
        }
        let build = if prebuilt.contains(&kind) {
            0.0
        } else {
            hints.build
        };
        let cost = build + hints.probe * estimated_probes as f64;
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, kind));
        }
    }
    match best {
        Some((_, kind)) => BackendSelection {
            kind,
            reason: if prebuilt.contains(&kind) {
                "per-query: lowest probe cost among prebuilt indexes"
            } else {
                "per-query: probe savings amortize a new index build"
            },
            profile: *profile,
        },
        // Every candidate unsupported cannot happen (closure always is), but
        // degrade gracefully to the static selector's default.
        None => BackendSelection {
            kind: BackendKind::ThreeHop,
            reason: "fallback: no supported backend candidate",
            profile: *profile,
        },
    }
}

/// Builds the auto-selected backend for `g`.
pub fn build_selected(g: &DataGraph) -> (SharedIndex, BackendSelection) {
    build_selected_with(g, &Condensation::new(g))
}

/// Like [`build_selected`] but reusing an existing condensation of `g`.
pub fn build_selected_with(g: &DataGraph, cond: &Condensation) -> (SharedIndex, BackendSelection) {
    let selection = select_backend_with(g, cond);
    (selection.kind.build_shared_with(g, cond), selection)
}

// Compile-time guarantee that every backend can be shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TransitiveClosure>();
    assert_send_sync::<ThreeHop>();
    assert_send_sync::<ChainCover>();
    assert_send_sync::<ContourIndex>();
    assert_send_sync::<Sspi>();
    assert_send_sync::<IntervalIndex>();
};

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn path_graph(n: usize) -> DataGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_node()).collect();
        for i in 1..n {
            b.add_edge(v[i - 1], v[i]);
        }
        b.build()
    }

    #[test]
    fn forests_select_interval() {
        let sel = select_backend(&path_graph(10));
        assert_eq!(sel.kind, BackendKind::Interval);
        assert!(sel.profile.is_forest);
    }

    #[test]
    fn small_non_forest_selects_closure() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        // Diamond: in-degree 2 at the bottom, not a forest.
        b.add_edge(v[0], v[1]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        b.add_edge(v[2], v[3]);
        let sel = select_backend(&b.build());
        assert_eq!(sel.kind, BackendKind::Closure);
        assert!(!sel.profile.is_forest);
        assert!(sel.profile.is_dag);
    }

    #[test]
    fn interval_falls_back_to_three_hop_off_forests() {
        let mut b = GraphBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(y, x);
        let g = b.build();
        let idx = BackendKind::Interval.build_shared(&g);
        assert_eq!(idx.name(), "3-hop");
        assert!(idx.reaches(x, x));
    }

    #[test]
    fn cost_hints_are_positive_and_gate_support() {
        let profile = GraphProfile::compute(&path_graph(10));
        for kind in BackendKind::AUTO_CANDIDATES {
            let hints = kind.cost_hints(&profile);
            assert!(hints.build >= 0.0 && hints.probe > 0.0, "{kind:?}");
        }
        assert!(BackendKind::Interval.cost_hints(&profile).supported);
        assert!(!BackendKind::Chain.cost_hints(&profile).supported);
        // Off forests the interval index is unsupported.
        let mut b = GraphBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(y, x);
        let cyclic = GraphProfile::compute(&b.build());
        assert!(!BackendKind::Interval.cost_hints(&cyclic).supported);
    }

    #[test]
    fn per_query_selection_sticks_with_prebuilt_for_few_probes() {
        // A large diamond-ish DAG profile where building anything costs more
        // than a handful of probes could save.
        let profile = GraphProfile {
            nodes: 100_000,
            edges: 250_000,
            density: 2.5,
            is_dag: true,
            is_forest: false,
            condensation_size: 100_000,
        };
        let sel = select_backend_for_query(&profile, 10, &[BackendKind::ThreeHop]);
        assert_eq!(sel.kind, BackendKind::ThreeHop);
        // With a huge probe budget the O(1)-probe closure amortizes its
        // quadratic build on a small condensation.
        let small = GraphProfile {
            condensation_size: 500,
            nodes: 500,
            edges: 1_000,
            density: 2.0,
            ..profile
        };
        let sel = select_backend_for_query(&small, 1_000_000, &[BackendKind::ThreeHop]);
        assert_eq!(sel.kind, BackendKind::Closure);
        // On a forest with a prebuilt interval index, nothing beats it.
        let forest = GraphProfile::compute(&path_graph(64));
        let sel = select_backend_for_query(&forest, 1_000, &[BackendKind::Interval]);
        assert_eq!(sel.kind, BackendKind::Interval);
        assert!(!sel.reason.is_empty());
    }

    #[test]
    fn every_kind_builds_and_answers() {
        let g = path_graph(5);
        for kind in [
            BackendKind::Closure,
            BackendKind::ThreeHop,
            BackendKind::Chain,
            BackendKind::Contour,
            BackendKind::Sspi,
            BackendKind::Interval,
        ] {
            let idx = kind.build_shared(&g);
            assert!(idx.reaches(gtpq_graph::NodeId(0), gtpq_graph::NodeId(4)));
            assert!(!idx.reaches(gtpq_graph::NodeId(4), gtpq_graph::NodeId(0)));
            assert!(!kind.as_str().is_empty());
        }
    }
}
