//! Heuristic reachability-backend selection from graph statistics.
//!
//! The GTEA engine accepts any [`Reachability`](crate::Reachability)
//! backend; which one wins
//! depends on the shape of the data graph.  The rules encoded here follow the
//! paper's own measurements (§5.2) and the backends' asymptotics:
//!
//! * **forest** → [`IntervalIndex`]: O(1) probes, one region per node;
//! * **small graph** → [`TransitiveClosure`]: exact bitset, fastest probes,
//!   quadratic memory is irrelevant below a few thousand components;
//! * **heavily cyclic graph** (condensation much smaller than the graph) →
//!   [`ContourIndex`]: materialized successor contours stay small once the
//!   SCCs collapse;
//! * **sparse, shallow, tree-like graph** → [`Sspi`]: interval cover plus few
//!   surplus edges;
//! * **everything else** → [`ThreeHop`]: the paper's index, the scalable
//!   default.
//!
//! [`ChainCover`] is never auto-selected: its dense
//! (component × chain) table is a space/time trade-off the operator must opt
//! into explicitly via [`BackendKind::Chain`].

use std::sync::Arc;

use gtpq_graph::{Condensation, DataGraph};

use crate::{
    ChainCover, ContourIndex, IntervalIndex, SharedIndex, Sspi, ThreeHop, TransitiveClosure,
};

/// The reachability backends the service can run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Exact bitset transitive closure.
    Closure,
    /// 3-hop chain cover + hop lists (the paper's index).
    ThreeHop,
    /// Dense per-(component, chain) table.
    Chain,
    /// Materialized per-component successor contours.
    Contour,
    /// Spanning-tree intervals + surplus predecessor lists.
    Sspi,
    /// Pre/post-order regions; forests only.
    Interval,
}

impl BackendKind {
    /// The `build_index` string naming this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Closure => "closure",
            BackendKind::ThreeHop => "3hop",
            BackendKind::Chain => "chain",
            BackendKind::Contour => "contour",
            BackendKind::Sspi => "sspi",
            BackendKind::Interval => "interval",
        }
    }

    /// Builds this backend for `g` as a thread-shareable index.
    ///
    /// [`BackendKind::Interval`] falls back to [`ThreeHop`] when `g` is not a
    /// forest (the only fallible construction).
    pub fn build_shared(self, g: &DataGraph) -> SharedIndex {
        match self {
            BackendKind::Closure => Arc::new(TransitiveClosure::new(g)),
            BackendKind::ThreeHop => Arc::new(ThreeHop::new(g)),
            BackendKind::Chain => Arc::new(ChainCover::new(g)),
            BackendKind::Contour => Arc::new(ContourIndex::new(g)),
            BackendKind::Sspi => Arc::new(Sspi::new(g)),
            BackendKind::Interval => match IntervalIndex::new(g) {
                Ok(idx) => Arc::new(idx),
                Err(_) => Arc::new(ThreeHop::new(g)),
            },
        }
    }
}

/// The statistics the selector looks at (exposed for logging/metrics).
#[derive(Clone, Copy, Debug)]
pub struct GraphProfile {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Edges per node.
    pub density: f64,
    /// Whether the graph is already acyclic.
    pub is_dag: bool,
    /// Whether every node has in-degree ≤ 1 and the graph is acyclic
    /// (a forest of rooted trees).
    pub is_forest: bool,
    /// Number of strongly connected components.
    pub condensation_size: usize,
}

impl GraphProfile {
    /// Computes the profile of `g` (builds one transient condensation,
    /// O(V + E)).
    pub fn compute(g: &DataGraph) -> Self {
        let cond = Condensation::new(g);
        let nodes = g.node_count();
        let edges = g.edge_count();
        let is_dag = cond.input_was_dag();
        let is_forest = is_dag && g.nodes().all(|v| g.in_degree(v) <= 1);
        Self {
            nodes,
            edges,
            density: if nodes == 0 {
                0.0
            } else {
                edges as f64 / nodes as f64
            },
            is_dag,
            is_forest,
            condensation_size: cond.component_count(),
        }
    }
}

/// A backend choice together with the evidence behind it.
#[derive(Clone, Copy, Debug)]
pub struct BackendSelection {
    /// The chosen backend.
    pub kind: BackendKind,
    /// One-line human-readable justification (for logs and metrics).
    pub reason: &'static str,
    /// The statistics the decision was based on.
    pub profile: GraphProfile,
}

/// Components below which the quadratic bitset closure is unbeatable
/// (4096² bits = 2 MiB of rows).
const CLOSURE_MAX_COMPONENTS: usize = 4096;

/// Picks a reachability backend for `g` from its statistics.
pub fn select_backend(g: &DataGraph) -> BackendSelection {
    let profile = GraphProfile::compute(g);
    let (kind, reason) = if profile.is_forest {
        (BackendKind::Interval, "forest: O(1) interval containment")
    } else if profile.condensation_size <= CLOSURE_MAX_COMPONENTS {
        (
            BackendKind::Closure,
            "small condensation: exact bitset closure fits in cache",
        )
    } else if profile.condensation_size * 4 <= profile.nodes {
        (
            BackendKind::Contour,
            "heavily cyclic: SCCs collapse, materialized contours stay small",
        )
    } else if profile.is_dag && profile.density < 1.2 {
        (
            BackendKind::Sspi,
            "sparse tree-like DAG: interval cover + few surplus edges",
        )
    } else {
        (
            BackendKind::ThreeHop,
            "general graph: 3-hop chain cover + hop lists",
        )
    };
    BackendSelection {
        kind,
        reason,
        profile,
    }
}

/// Builds the auto-selected backend for `g`.
pub fn build_selected(g: &DataGraph) -> (SharedIndex, BackendSelection) {
    let selection = select_backend(g);
    (selection.kind.build_shared(g), selection)
}

// Compile-time guarantee that every backend can be shared across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TransitiveClosure>();
    assert_send_sync::<ThreeHop>();
    assert_send_sync::<ChainCover>();
    assert_send_sync::<ContourIndex>();
    assert_send_sync::<Sspi>();
    assert_send_sync::<IntervalIndex>();
};

#[cfg(test)]
mod tests {
    use gtpq_graph::GraphBuilder;

    use super::*;

    fn path_graph(n: usize) -> DataGraph {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_node()).collect();
        for i in 1..n {
            b.add_edge(v[i - 1], v[i]);
        }
        b.build()
    }

    #[test]
    fn forests_select_interval() {
        let sel = select_backend(&path_graph(10));
        assert_eq!(sel.kind, BackendKind::Interval);
        assert!(sel.profile.is_forest);
    }

    #[test]
    fn small_non_forest_selects_closure() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_node()).collect();
        // Diamond: in-degree 2 at the bottom, not a forest.
        b.add_edge(v[0], v[1]);
        b.add_edge(v[0], v[2]);
        b.add_edge(v[1], v[3]);
        b.add_edge(v[2], v[3]);
        let sel = select_backend(&b.build());
        assert_eq!(sel.kind, BackendKind::Closure);
        assert!(!sel.profile.is_forest);
        assert!(sel.profile.is_dag);
    }

    #[test]
    fn interval_falls_back_to_three_hop_off_forests() {
        let mut b = GraphBuilder::new();
        let x = b.add_node();
        let y = b.add_node();
        b.add_edge(x, y);
        b.add_edge(y, x);
        let g = b.build();
        let idx = BackendKind::Interval.build_shared(&g);
        assert_eq!(idx.name(), "3-hop");
        assert!(idx.reaches(x, x));
    }

    #[test]
    fn every_kind_builds_and_answers() {
        let g = path_graph(5);
        for kind in [
            BackendKind::Closure,
            BackendKind::ThreeHop,
            BackendKind::Chain,
            BackendKind::Contour,
            BackendKind::Sspi,
            BackendKind::Interval,
        ] {
            let idx = kind.build_shared(&g);
            assert!(idx.reaches(gtpq_graph::NodeId(0), gtpq_graph::NodeId(4)));
            assert!(!idx.reaches(gtpq_graph::NodeId(4), gtpq_graph::NodeId(0)));
            assert!(!kind.as_str().is_empty());
        }
    }
}
