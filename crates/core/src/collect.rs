//! Result enumeration from the maximal matching graph (`CollectResults`,
//! Procedure 5).

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use gtpq_graph::NodeId;
use gtpq_query::{Gtpq, QueryNodeId, ResultSet};

use crate::matching::MatchingGraph;
use crate::prime::ShrunkPrime;
use crate::stats::EvalStats;

/// A partial result: assignments of output nodes within one shrunk component,
/// kept sorted by query node so identical projections deduplicate.
type Partial = Vec<(QueryNodeId, NodeId)>;

/// Enumerates the answer from the maximal matching graph.
///
/// Each shrunk component is traversed once (with memoization on
/// `(query node, candidate)` pairs, so shared sub-results are merged in
/// advance exactly as the paper describes for non-output nodes); the
/// component results are combined by Cartesian product and the constant
/// columns of shrunk-away output nodes are appended.
pub fn collect_results(
    q: &Gtpq,
    shrunk: &ShrunkPrime,
    graph: &MatchingGraph,
    mat: &[Vec<NodeId>],
    stats: &mut EvalStats,
) -> ResultSet {
    let start = Instant::now();
    let output = q.output_nodes().to_vec();
    let mut results = ResultSet::new(output.clone());

    // Results per component.
    let mut component_results: Vec<Vec<Partial>> = Vec::with_capacity(shrunk.roots.len());
    let mut memo: HashMap<(QueryNodeId, NodeId), Rc<Vec<Partial>>> = HashMap::new();
    for &root in &shrunk.roots {
        let mut partials: Vec<Partial> = Vec::new();
        for &v in &mat[root.index()] {
            partials.extend(
                collect_node(q, shrunk, graph, root, v, &mut memo)
                    .iter()
                    .cloned(),
            );
        }
        partials.sort();
        partials.dedup();
        if partials.is_empty() {
            // One component has no matches: the whole answer is empty.
            stats.enumerate_time += start.elapsed();
            return results;
        }
        component_results.push(partials);
    }

    // Cartesian product across components plus constant columns.
    let constants: Partial = shrunk.constant_outputs.clone();
    let mut combined: Vec<Partial> = vec![constants];
    for comp in component_results {
        let mut next = Vec::with_capacity(combined.len() * comp.len());
        for base in &combined {
            for extra in &comp {
                let mut merged = base.clone();
                merged.extend_from_slice(extra);
                next.push(merged);
            }
        }
        combined = next;
    }

    for assignment in combined {
        let tuple: Option<Vec<NodeId>> = output
            .iter()
            .map(|u| assignment.iter().find(|(qu, _)| qu == u).map(|&(_, v)| v))
            .collect();
        if let Some(tuple) = tuple {
            results.insert(tuple);
        }
    }
    stats.result_tuples = results.len() as u64;
    stats.enumerate_time += start.elapsed();
    results
}

/// All distinct output projections of matches of the shrunk subtree rooted at
/// `u`, given `u` is matched to `v`.
fn collect_node(
    q: &Gtpq,
    shrunk: &ShrunkPrime,
    graph: &MatchingGraph,
    u: QueryNodeId,
    v: NodeId,
    memo: &mut HashMap<(QueryNodeId, NodeId), Rc<Vec<Partial>>>,
) -> Rc<Vec<Partial>> {
    if let Some(cached) = memo.get(&(u, v)) {
        return Rc::clone(cached);
    }
    let children = shrunk.children_of(u);
    let own: Partial = if q.is_output(u) { vec![(u, v)] } else { vec![] };
    let mut partials: Vec<Partial> = vec![own];
    if !children.is_empty() {
        let branches = graph.branches_of(u, v);
        for (ci, &child) in children.iter().enumerate() {
            let pointed: &[NodeId] = branches.map(|b| b[ci].as_slice()).unwrap_or(&[]);
            let mut branch_results: Vec<Partial> = Vec::new();
            for &v2 in pointed {
                branch_results.extend(
                    collect_node(q, shrunk, graph, child, v2, memo)
                        .iter()
                        .cloned(),
                );
            }
            branch_results.sort();
            branch_results.dedup();
            let mut next = Vec::with_capacity(partials.len() * branch_results.len());
            for base in &partials {
                for extra in &branch_results {
                    let mut merged = base.clone();
                    merged.extend_from_slice(extra);
                    merged.sort();
                    next.push(merged);
                }
            }
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
    }
    partials.sort();
    partials.dedup();
    let rc = Rc::new(partials);
    memo.insert((u, v), Rc::clone(&rc));
    rc
}

#[cfg(test)]
mod tests {
    use gtpq_graph::NodeId;
    use gtpq_query::fixtures::{example_answer_pairs, example_graph, example_query};
    use gtpq_reach::ThreeHop;

    use crate::options::GteaOptions;
    use crate::plan::PruneStep;
    use crate::prime::{PrimeSubtree, ShrunkPrime};
    use crate::prune::{initial_candidates, prune_downward, prune_upward};

    use super::*;

    #[test]
    fn collect_results_reproduces_the_example_answer() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
        );
        let prime = PrimeSubtree::new(&q);
        prune_upward(&q, &g, &index, &options, &prime, 0, &mut mat, &mut stats);
        for shrink in [true, false] {
            let shrunk = ShrunkPrime::new(&q, &prime, &mat, shrink);
            let graph =
                crate::matching::MatchingGraph::build(&q, &g, &index, &shrunk, &mat, &mut stats);
            let results = collect_results(&q, &shrunk, &graph, &mat, &mut stats);
            let expected = example_answer_pairs();
            assert_eq!(results.len(), expected.len(), "shrink={shrink}");
            for (a, b) in expected {
                assert!(results.contains(&[NodeId(a - 1), NodeId(b - 1)]));
            }
        }
    }
}
