//! Result materialization from the maximal matching graph (`CollectResults`,
//! Procedure 5).
//!
//! Since the streaming redesign this is a thin wrapper: the actual
//! enumeration lives in [`MatchStream`], which
//! produces distinct tuples one at a time in `ResultSet` order; this function
//! simply drains the stream to completion for callers that want the whole
//! answer at once.

use gtpq_graph::NodeId;
use gtpq_query::{Gtpq, ResultSet};

use crate::exec::ExecCtl;
use crate::matching::MatchingGraph;
use crate::prime::ShrunkPrime;
use crate::stats::EvalStats;
use crate::stream::MatchStream;

/// Materializes the full answer from the maximal matching graph by draining
/// a [`MatchStream`].
///
/// Borrow-friendly (the stream machinery gets clones); the engine's
/// [`execute`](crate::GteaEngine::execute) path moves its pipeline state into
/// the stream instead and supports limits and deadlines.
pub fn collect_results(
    q: &Gtpq,
    shrunk: &ShrunkPrime,
    graph: &MatchingGraph,
    mat: &[Vec<NodeId>],
    stats: &mut EvalStats,
) -> ResultSet {
    let mut stream = MatchStream::build(
        q,
        shrunk.clone(),
        graph.clone(),
        mat.to_vec(),
        ExecCtl::unbounded(),
    );
    let mut results = ResultSet::new(q.output_nodes().to_vec());
    while let Some(row) = stream
        .next_row()
        .expect("unbounded streams cannot be interrupted")
    {
        results.insert(row);
    }
    stats.result_tuples = results.len() as u64;
    stats.enumerated_rows += stream.rows_enumerated();
    stats.enumerate_time += stream.enumerate_time();
    results
}

#[cfg(test)]
mod tests {
    use gtpq_graph::NodeId;
    use gtpq_query::fixtures::{example_answer_pairs, example_graph, example_query};
    use gtpq_reach::ThreeHop;

    use crate::options::GteaOptions;
    use crate::plan::PruneStep;
    use crate::prime::{PrimeSubtree, ShrunkPrime};
    use crate::prune::{initial_candidates, prune_downward, prune_upward};

    use super::*;

    #[test]
    fn collect_results_reproduces_the_example_answer() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let prime = PrimeSubtree::new(&q);
        prune_upward(
            &q,
            &g,
            &index,
            &options,
            &prime,
            0,
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        for shrink in [true, false] {
            let shrunk = ShrunkPrime::new(&q, &prime, &mat, shrink);
            let graph = crate::matching::MatchingGraph::build(
                &q,
                &g,
                &index,
                &shrunk,
                &mat,
                &mut stats,
                &ExecCtl::unbounded(),
            )
            .unwrap();
            let results = collect_results(&q, &shrunk, &graph, &mat, &mut stats);
            let expected = example_answer_pairs();
            assert_eq!(results.len(), expected.len(), "shrink={shrink}");
            for (a, b) in expected {
                assert!(results.contains(&[NodeId(a - 1), NodeId(b - 1)]));
            }
        }
    }
}
