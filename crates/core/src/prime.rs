//! Prime subtree and shrunk prime subtree (§4.2.3, §4.3).

use std::collections::HashMap;

use gtpq_graph::NodeId;
use gtpq_query::{Gtpq, QueryNodeId};

/// The *prime subtree*: the subtree of backbone nodes induced by the paths
/// from the query root to every output node.  Only these nodes matter for
/// deriving the relationships among output-node candidates; predicate
/// subtrees and backbone branches without output nodes have already been
/// folded into the downward pruning round.
#[derive(Clone, Debug)]
pub struct PrimeSubtree {
    /// Member nodes, in ascending id order (which is top-down because child
    /// ids are always larger than their parent's).
    pub nodes: Vec<QueryNodeId>,
    /// Children of each member restricted to the prime subtree.
    pub children: HashMap<QueryNodeId, Vec<QueryNodeId>>,
}

impl PrimeSubtree {
    /// Computes the prime subtree of `q`.
    pub fn new(q: &Gtpq) -> Self {
        let mut member = vec![false; q.size()];
        for &o in q.output_nodes() {
            let mut cursor = Some(o);
            while let Some(u) = cursor {
                if member[u.index()] {
                    break;
                }
                member[u.index()] = true;
                cursor = q.parent(u);
            }
        }
        let nodes: Vec<QueryNodeId> = q.node_ids().filter(|u| member[u.index()]).collect();
        let mut children: HashMap<QueryNodeId, Vec<QueryNodeId>> = HashMap::new();
        for &u in &nodes {
            let kids: Vec<QueryNodeId> = q
                .children(u)
                .iter()
                .copied()
                .filter(|c| member[c.index()])
                .collect();
            children.insert(u, kids);
        }
        Self { nodes, children }
    }

    /// Whether `u` belongs to the prime subtree.
    pub fn contains(&self, u: QueryNodeId) -> bool {
        self.nodes.binary_search(&u).is_ok()
    }

    /// The prime-subtree children of `u`.
    pub fn children_of(&self, u: QueryNodeId) -> &[QueryNodeId] {
        self.children.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the prime subtree is empty (never happens for a valid query).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The *shrunk prime subtree*: the prime subtree with the ancestors of the
/// output-nodes' lowest common ancestor removed and (optionally) every node
/// with a single remaining candidate removed.  Removal can split the tree
/// into a forest; results of the components are combined by Cartesian
/// product, and removed output nodes contribute constant columns.
#[derive(Clone, Debug)]
pub struct ShrunkPrime {
    /// Roots of the remaining components, top-down order.
    pub roots: Vec<QueryNodeId>,
    /// Remaining nodes (ascending id order).
    pub nodes: Vec<QueryNodeId>,
    /// Children of each remaining node restricted to remaining nodes.
    pub children: HashMap<QueryNodeId, Vec<QueryNodeId>>,
    /// Output nodes that were removed because they had exactly one candidate,
    /// together with that candidate.
    pub constant_outputs: Vec<(QueryNodeId, NodeId)>,
}

impl ShrunkPrime {
    /// Computes the shrunk prime subtree given the pruned candidate sets.
    ///
    /// `shrink` disables the single-candidate removal when false (ablation).
    pub fn new(q: &Gtpq, prime: &PrimeSubtree, mat: &[Vec<NodeId>], shrink: bool) -> Self {
        // Restrict to descendants of the LCA of all output nodes.
        let outputs = q.output_nodes();
        let lca = outputs
            .iter()
            .copied()
            .reduce(|a, b| q.lowest_common_ancestor(a, b))
            .unwrap_or_else(|| q.root());
        let in_scope = |u: QueryNodeId| u == lca || q.is_ancestor(lca, u);

        let mut keep: Vec<QueryNodeId> = Vec::new();
        let mut constant_outputs: Vec<(QueryNodeId, NodeId)> = Vec::new();
        for &u in &prime.nodes {
            if !in_scope(u) {
                continue;
            }
            let single = mat[u.index()].len() == 1;
            if shrink && single {
                if q.is_output(u) {
                    constant_outputs.push((u, mat[u.index()][0]));
                }
                continue;
            }
            keep.push(u);
        }

        // Rebuild the child relation among kept nodes: a kept node's shrunk
        // parent is its nearest kept prime ancestor *with no removed node in
        // between that breaks the chain*; since removal of an intermediate
        // node always disconnects (the paper enumerates components
        // separately), a kept node whose prime parent was removed or out of
        // scope becomes a component root.
        let kept_set: Vec<bool> = {
            let mut s = vec![false; q.size()];
            for &u in &keep {
                s[u.index()] = true;
            }
            s
        };
        let mut children: HashMap<QueryNodeId, Vec<QueryNodeId>> = HashMap::new();
        let mut roots: Vec<QueryNodeId> = Vec::new();
        for &u in &keep {
            children.entry(u).or_default();
            let parent_kept = q
                .parent(u)
                .filter(|p| prime.contains(*p) && in_scope(*p))
                .filter(|p| kept_set[p.index()]);
            match parent_kept {
                Some(p) => children.entry(p).or_default().push(u),
                None => roots.push(u),
            }
        }

        Self {
            roots,
            nodes: keep,
            children,
            constant_outputs,
        }
    }

    /// The shrunk children of `u`.
    pub fn children_of(&self, u: QueryNodeId) -> &[QueryNodeId] {
        self.children.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of remaining nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether everything was shrunk away (all outputs had a single candidate).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::example_query;

    use super::*;

    #[test]
    fn prime_subtree_of_example_query() {
        let q = example_query();
        let prime = PrimeSubtree::new(&q);
        // Outputs are u2 and u4 (ids 1 and 3); paths add the root and u3 (id 2).
        let expected: Vec<QueryNodeId> = vec![0, 1, 2, 3].into_iter().map(QueryNodeId).collect();
        assert_eq!(prime.nodes, expected);
        assert_eq!(prime.len(), 4);
        assert!(prime.contains(QueryNodeId(2)));
        assert!(!prime.contains(QueryNodeId(5)));
        assert_eq!(
            prime.children_of(QueryNodeId(0)),
            &[QueryNodeId(1), QueryNodeId(2)]
        );
        assert_eq!(prime.children_of(QueryNodeId(2)), &[QueryNodeId(3)]);
        assert!(!prime.is_empty());
    }

    #[test]
    fn shrinking_removes_single_candidate_nodes() {
        let q = example_query();
        let prime = PrimeSubtree::new(&q);
        // Fake candidate sets: root has 1 candidate, u2 has 2, u3 has 1, u4 has 3.
        let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
        mat[0] = vec![NodeId(0)];
        mat[1] = vec![NodeId(2), NodeId(7)];
        mat[2] = vec![NodeId(2)];
        mat[3] = vec![NodeId(10), NodeId(11), NodeId(13)];
        let shrunk = ShrunkPrime::new(&q, &prime, &mat, true);
        // Root and u3 disappear; u2 and u4 become separate component roots.
        assert_eq!(shrunk.nodes, vec![QueryNodeId(1), QueryNodeId(3)]);
        assert_eq!(shrunk.roots, vec![QueryNodeId(1), QueryNodeId(3)]);
        assert!(shrunk.constant_outputs.is_empty());
        // Without shrinking, the LCA of outputs is the root so everything stays.
        let unshrunk = ShrunkPrime::new(&q, &prime, &mat, false);
        assert_eq!(unshrunk.len(), 4);
        assert_eq!(unshrunk.roots, vec![QueryNodeId(0)]);
    }

    #[test]
    fn removed_output_nodes_become_constant_columns() {
        let q = example_query();
        let prime = PrimeSubtree::new(&q);
        let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
        mat[0] = vec![NodeId(0)];
        mat[1] = vec![NodeId(2)];
        mat[2] = vec![NodeId(2), NodeId(4)];
        mat[3] = vec![NodeId(10), NodeId(11)];
        let shrunk = ShrunkPrime::new(&q, &prime, &mat, true);
        assert_eq!(shrunk.constant_outputs, vec![(QueryNodeId(1), NodeId(2))]);
        assert!(shrunk.nodes.contains(&QueryNodeId(3)));
    }

    #[test]
    fn single_output_query_roots_at_the_output_lca() {
        use gtpq_logic::BoolExpr;
        use gtpq_query::{AttrPredicate, EdgeKind, GtpqBuilder};
        let mut b = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = b.root_id();
        let mid = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("b"));
        let out = b.backbone_child(mid, EdgeKind::Descendant, AttrPredicate::label("c"));
        let pred = b.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("d"));
        b.set_structural(root, BoolExpr::Var(pred.var()));
        b.mark_output(out);
        let q = b.build().unwrap();
        let prime = PrimeSubtree::new(&q);
        assert_eq!(prime.len(), 3, "root, mid and out are on the path");
        let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
        mat[root.index()] = vec![NodeId(0), NodeId(1)];
        mat[mid.index()] = vec![NodeId(2), NodeId(3)];
        mat[out.index()] = vec![NodeId(4), NodeId(5)];
        let shrunk = ShrunkPrime::new(&q, &prime, &mat, true);
        // The LCA of the single output is the output itself: ancestors drop out.
        assert_eq!(shrunk.nodes, vec![out]);
        assert_eq!(shrunk.roots, vec![out]);
    }
}
