//! The two-round pruning process (§4.2, Procedures 6 and 7).

use std::collections::HashSet;
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_logic::valuation::eval_with;
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId};
use gtpq_reach::{Probe, Reachability};

use crate::options::GteaOptions;
use crate::prime::PrimeSubtree;
use crate::stats::EvalStats;

/// Selects the initial candidate matching nodes `mat(u)` for every query node.
pub fn initial_candidates(q: &Gtpq, g: &DataGraph, stats: &mut EvalStats) -> Vec<Vec<NodeId>> {
    let start = Instant::now();
    let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
    for u in q.node_ids() {
        mat[u.index()] = q.candidates(g, u);
        stats.initial_candidates += mat[u.index()].len() as u64;
        stats.input_nodes += g.node_count() as u64;
    }
    stats.candidate_time += start.elapsed();
    mat
}

/// `PruneDownward` (Procedure 6): removes candidates that do not satisfy the
/// downward structural constraints of their query node.
///
/// Processes query nodes bottom-up; for every internal node `u` and candidate
/// `v`, a truth value is assigned to each child's variable from the
/// reachability of `v` into the (already pruned) candidate set of the child,
/// and `v` is kept only when the extended structural predicate `fext(u)`
/// evaluates to true.  AD children are answered through the backend's
/// prepared predecessor probe (merged contours + Proposition 7 on 3-hop);
/// PC children are answered exactly through the adjacency lists.
pub fn prune_downward<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
) {
    let start = Instant::now();
    // Delta, not reset: the index may be shared with concurrent queries
    // (QueryService), and a reset here would wipe their in-flight counts.
    let lookups_before = index.lookup_count();
    for u in q.bottom_up_order() {
        if q.node(u).is_leaf() {
            continue;
        }
        let fext = q.fext(u);
        let children = q.children(u).to_vec();

        // Per-child acceleration structures.
        let mut ad_probes: Vec<Option<Probe<'_>>> = Vec::with_capacity(children.len());
        let mut pc_sets: Vec<Option<HashSet<NodeId>>> = Vec::with_capacity(children.len());
        for &c in &children {
            match q.incoming_edge(c) {
                Some(EdgeKind::Child) => {
                    ad_probes.push(None);
                    pc_sets.push(Some(mat[c.index()].iter().copied().collect()));
                }
                _ => {
                    let probe = if options.use_contours {
                        Some(index.pred_probe(&mat[c.index()]))
                    } else {
                        None
                    };
                    ad_probes.push(probe);
                    pc_sets.push(None);
                }
            }
        }

        let candidates = std::mem::take(&mut mat[u.index()]);
        stats.input_nodes += candidates.len() as u64;
        let adjacency_lookups = std::cell::Cell::new(0u64);
        let mut kept = Vec::with_capacity(candidates.len());
        for v in candidates {
            let value = eval_with(&fext, &|var| {
                let child = QueryNodeId::from_var(var);
                let Some(pos) = children.iter().position(|&c| c == child) else {
                    return false;
                };
                match q.incoming_edge(child) {
                    Some(EdgeKind::Child) => {
                        let set = pc_sets[pos].as_ref().expect("PC child has a set");
                        adjacency_lookups.set(adjacency_lookups.get() + g.out_degree(v) as u64);
                        g.children(v).iter().any(|c| set.contains(c))
                    }
                    _ => match &ad_probes[pos] {
                        Some(probe) => probe(v),
                        None => mat[child.index()].iter().any(|&t| index.reaches(v, t)),
                    },
                }
            });
            if value {
                kept.push(v);
            }
        }
        stats.index_lookups += adjacency_lookups.get();
        mat[u.index()] = kept;
    }
    for u in q.node_ids() {
        stats.candidates_after_downward += mat[u.index()].len() as u64;
    }
    stats.index_lookups += index.lookup_count().saturating_sub(lookups_before);
    stats.prune_down_time += start.elapsed();
}

/// `PruneUpward` (Procedure 7): removes candidates of prime-subtree nodes that
/// are not reachable from any candidate of their prime parent.
///
/// Processes the prime subtree top-down; AD edges are answered through the
/// backend's prepared successor probe (merged contours on 3-hop), PC edges
/// exactly through the adjacency lists.
pub fn prune_upward<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    prime: &PrimeSubtree,
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
) {
    let start = Instant::now();
    let lookups_before = index.lookup_count();
    for &u in &prime.nodes {
        for &child in prime.children_of(u) {
            let candidates = std::mem::take(&mut mat[child.index()]);
            stats.input_nodes += candidates.len() as u64;
            let kept: Vec<NodeId> = match q.incoming_edge(child) {
                Some(EdgeKind::Child) => {
                    let parents: HashSet<NodeId> = mat[u.index()].iter().copied().collect();
                    candidates
                        .into_iter()
                        .filter(|&v| {
                            stats.index_lookups += g.in_degree(v) as u64;
                            g.parents(v).iter().any(|p| parents.contains(p))
                        })
                        .collect()
                }
                _ => {
                    if options.use_contours {
                        let probe = index.succ_probe(&mat[u.index()]);
                        candidates.into_iter().filter(|&v| probe(v)).collect()
                    } else {
                        candidates
                            .into_iter()
                            .filter(|&v| mat[u.index()].iter().any(|&s| index.reaches(s, v)))
                            .collect()
                    }
                }
            };
            mat[child.index()] = kept;
        }
    }
    for &u in &prime.nodes {
        stats.candidates_after_upward += mat[u.index()].len() as u64;
    }
    stats.index_lookups += index.lookup_count().saturating_sub(lookups_before);
    stats.prune_up_time += start.elapsed();
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_reach::ThreeHop;

    use super::*;

    #[test]
    fn downward_pruning_matches_naive_downward_semantics() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(&q, &g, &index, &options, &mut mat, &mut stats);
        let table = naive::downward_matches(&q, &g);
        for u in q.node_ids() {
            let expected: Vec<NodeId> =
                g.nodes().filter(|&v| table[u.index()][v.index()]).collect();
            assert_eq!(mat[u.index()], expected, "mismatch at {u}");
        }
        assert!(stats.initial_candidates > 0);
        assert!(stats.candidates_after_downward <= stats.initial_candidates);
    }

    #[test]
    fn downward_pruning_without_contours_gives_the_same_result() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let mut stats = EvalStats::default();
        let mut with_contours = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &GteaOptions::default(),
            &mut with_contours,
            &mut stats,
        );
        let mut without = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &GteaOptions::without_contours(),
            &mut without,
            &mut stats,
        );
        assert_eq!(with_contours, without);
    }

    #[test]
    fn upward_pruning_keeps_only_reachable_candidates() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(&q, &g, &index, &options, &mut mat, &mut stats);
        let prime = PrimeSubtree::new(&q);
        prune_upward(&q, &g, &index, &options, &prime, &mut mat, &mut stats);
        // Every surviving candidate of a prime child is reachable from a
        // surviving candidate of its prime parent.
        for &u in &prime.nodes {
            for &c in prime.children_of(u) {
                for &v in &mat[c.index()] {
                    assert!(
                        mat[u.index()]
                            .iter()
                            .any(|&p| gtpq_graph::traversal::is_reachable(&g, p, v)),
                        "candidate {v} of {c} unreachable from candidates of {u}"
                    );
                }
            }
        }
        // In the running example the root keeps v1 only, u2 keeps v3/v8, u4
        // keeps the three d1 nodes under v3.
        assert_eq!(mat[0], vec![NodeId(0)]);
        assert_eq!(mat[1], vec![NodeId(2), NodeId(7)]);
        assert_eq!(mat[3], vec![NodeId(10), NodeId(11), NodeId(13)]);
    }
}
