//! The two-round pruning process (§4.2, Procedures 6 and 7).

use std::ops::Range;
use std::time::Instant;

use gtpq_graph::{Condensation, DataGraph, NodeBitSet, NodeId};
use gtpq_logic::valuation::eval_with;
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId};
use gtpq_reach::{Probe, Reachability};

use crate::exec::{ExecCtl, Interrupt};
use crate::morsel;
use crate::options::GteaOptions;
use crate::plan::PruneStep;
use crate::prime::PrimeSubtree;
use crate::stats::{EvalStats, OperatorStats};

/// Candidate-set size from which parallel prune morsels are snapped to SCC
/// condensation boundaries: below this, the snap's component lookups cost
/// more than the locality they buy.
const SNAP_MIN_CANDIDATES: usize = 4096;

/// Morsel boundaries for one parallel prune round over `candidates`.  Large
/// rounds snap boundaries to the graph's SCC structure (candidate lists are
/// sorted by node id, so one component's candidates are contiguous whenever
/// node ids follow component layout) — one worker then owns each big
/// component's run of candidates, keeping its contour probes and adjacency
/// reads on one thread.  The condensation is built once and reused across
/// the round's steps.
fn prune_ranges(
    g: &DataGraph,
    candidates: &[NodeId],
    ctl: &ExecCtl,
    condensation: &mut Option<Condensation>,
) -> Vec<Range<usize>> {
    let ranges = morsel::morsel_ranges(candidates.len(), ctl.threads());
    if ctl.threads() <= 1 || candidates.len() < SNAP_MIN_CANDIDATES {
        return ranges;
    }
    let cond = condensation.get_or_insert_with(|| Condensation::new(g));
    morsel::snap_ranges(&ranges, |a, b| {
        cond.component_of(candidates[a]) == cond.component_of(candidates[b])
    })
}

/// Selects the initial candidate matching nodes `mat(u)` for every query node
/// through the graph's attribute inverted index.
///
/// Indexable predicates (equalities, integer ranges) are answered by
/// posting-list intersection without touching any node; only non-indexable
/// comparisons (`!=`, string ranges) verify an index-restricted superset per
/// node.  `stats.input_nodes` counts exactly the nodes whose attribute tuples
/// were read (the seed charged `|V|` once per query node, inflating the
/// figure-level `#input` metric `|Q|`-fold); index-served candidates and
/// scanned nodes are reported separately as `index_hits` / `scanned_nodes`,
/// and posting entries read count towards `index_lookups`.
pub fn initial_candidates(q: &Gtpq, g: &DataGraph, stats: &mut EvalStats) -> Vec<Vec<NodeId>> {
    let start = Instant::now();
    let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
    for u in q.node_ids() {
        let selection = q.candidates_indexed(g, u);
        crate::plan::record_selection(&selection, stats);
        mat[u.index()] = selection.nodes;
    }
    stats.candidate_time += start.elapsed();
    mat
}

/// `PruneDownward` (Procedure 6): removes candidates that do not satisfy the
/// downward structural constraints of their query node.
///
/// Processes the internal query nodes in the order given by `steps` — the
/// plan's (already normalized, children-first) downward-prune order; for
/// every internal node `u` and candidate `v`, a truth value is assigned to
/// each child's variable from the reachability of `v` into the (already
/// pruned) candidate set of the child, and `v` is kept only when the
/// extended structural predicate `fext(u)` evaluates to true.  AD children
/// are answered through the backend's prepared predecessor probe (merged
/// contours + Proposition 7 on 3-hop); PC children are answered exactly
/// through the adjacency lists.  One [`OperatorStats`] entry is recorded per
/// step.
///
/// `ctl` is polled once per candidate; an expired deadline or a triggered
/// cancellation aborts mid-round with an [`Interrupt`] (the candidate sets
/// are left in an unspecified but memory-safe state).  The round's rollups —
/// `candidates_after_downward`, the index-lookup delta and
/// `prune_down_time` — are recorded even for aborted rounds, over whatever
/// the candidate sets hold at the abort point.
#[allow(clippy::too_many_arguments)] // the evaluation pipeline state is explicit
pub fn prune_downward<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    steps: &[PruneStep],
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<(), Interrupt> {
    let start = Instant::now();
    // Delta, not reset: the index may be shared with concurrent queries
    // (QueryService), and a reset here would wipe their in-flight counts.
    let lookups_before = index.lookup_count();
    let result = prune_downward_inner(q, g, index, options, steps, mat, stats, ctl);
    for u in q.node_ids() {
        stats.candidates_after_downward += mat[u.index()].len() as u64;
    }
    stats.index_lookups += index.lookup_count().saturating_sub(lookups_before);
    stats.prune_down_time += start.elapsed();
    result
}

#[allow(clippy::too_many_arguments)] // mirrors the public entry point
fn prune_downward_inner<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    steps: &[PruneStep],
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<(), Interrupt> {
    // Scratch bitsets for PC-child candidate membership, hoisted out of the
    // loop and reused across every internal query node (cleared in
    // O(touched), not re-allocated).
    let mut pc_pool: Vec<NodeBitSet> = Vec::new();
    // SCC condensation for snapping morsel boundaries, built lazily for the
    // first large parallel round and shared across steps.
    let mut condensation: Option<Condensation> = None;
    for step in steps {
        let u = step.node;
        if u.index() >= q.size() || q.node(u).is_leaf() {
            continue;
        }
        let span = ctl.tracer().span_with(|| format!("prune_down {u}"));
        let op_start = Instant::now();
        let fext = q.fext(u);
        let children = q.children(u);

        // Per-child acceleration structures.
        let mut ad_probes: Vec<Option<Probe<'_>>> = Vec::with_capacity(children.len());
        let mut pc_slots: Vec<Option<usize>> = Vec::with_capacity(children.len());
        let mut pc_used = 0usize;
        for &c in children {
            match q.incoming_edge(c) {
                Some(EdgeKind::Child) => {
                    if pc_used == pc_pool.len() {
                        pc_pool.push(NodeBitSet::new(g.node_count()));
                    }
                    let bits = &mut pc_pool[pc_used];
                    bits.clear();
                    bits.extend_from_slice(&mat[c.index()]);
                    ad_probes.push(None);
                    pc_slots.push(Some(pc_used));
                    pc_used += 1;
                }
                _ => {
                    let probe = if options.use_contours {
                        Some(index.pred_probe(&mat[c.index()]))
                    } else {
                        None
                    };
                    ad_probes.push(probe);
                    pc_slots.push(None);
                }
            }
        }

        let candidates = std::mem::take(&mut mat[u.index()]);
        stats.input_nodes += candidates.len() as u64;
        let ranges = prune_ranges(g, &candidates, ctl, &mut condensation);
        let (candidates, adjacency_lookups) = {
            let mat_ref: &[Vec<NodeId>] = mat;
            let pool_ref: &[NodeBitSet] = &pc_pool;
            let keep = |v: NodeId, lookups: &std::cell::Cell<u64>| {
                eval_with(&fext, &|var| {
                    let child = QueryNodeId::from_var(var);
                    let Some(pos) = children.iter().position(|&c| c == child) else {
                        return false;
                    };
                    match q.incoming_edge(child) {
                        Some(EdgeKind::Child) => {
                            let bits =
                                &pool_ref[pc_slots[pos].expect("PC child has a bitset slot")];
                            lookups.set(lookups.get() + g.out_degree(v) as u64);
                            g.children(v).iter().any(|&c| bits.contains(c))
                        }
                        _ => match &ad_probes[pos] {
                            Some(probe) => probe(v),
                            None => mat_ref[child.index()].iter().any(|&t| index.reaches(v, t)),
                        },
                    }
                })
            };
            morsel::parallel_retain(candidates, &ranges, ctl, stats, keep)?
        };
        stats.index_lookups += adjacency_lookups;
        span.field("est_rows", step.estimated_rows);
        span.field("actual_rows", candidates.len());
        drop(span);
        stats.operators.push(OperatorStats {
            label: format!("PruneDown {u}"),
            estimated_rows: step.estimated_rows,
            actual_rows: candidates.len() as u64,
            time: op_start.elapsed(),
        });
        let emptied_backbone = candidates.is_empty() && q.is_backbone(u);
        mat[u.index()] = candidates;
        // A backbone node with no candidates forces an empty answer, and
        // later steps can only shrink their own sets — skip them.  This is
        // where the plan's selectivity ordering pays: cheap, selective nodes
        // run first, so doomed queries bail before the expensive ones.
        if emptied_backbone {
            break;
        }
    }
    Ok(())
}

/// `PruneUpward` (Procedure 7): removes candidates of prime-subtree nodes that
/// are not reachable from any candidate of their prime parent.
///
/// Processes the prime subtree top-down; AD edges are answered through the
/// backend's prepared successor probe (merged contours on 3-hop), PC edges
/// exactly through the adjacency lists.  Recorded as one `PruneUp` operator
/// whose actual rows are the surviving prime-subtree candidates;
/// `estimated_rows` is the plan's survivor estimate (0 for unplanned calls).
/// As with [`prune_downward`], the round's rollups and `prune_up_time` are
/// recorded even when the round is aborted mid-way.
#[allow(clippy::too_many_arguments)] // mirrors prune_downward plus the plan estimate
pub fn prune_upward<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    prime: &PrimeSubtree,
    estimated_rows: u64,
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<(), Interrupt> {
    let start = Instant::now();
    let lookups_before = index.lookup_count();
    let result = prune_upward_inner(q, g, index, options, prime, mat, stats, ctl);
    for &u in &prime.nodes {
        stats.candidates_after_upward += mat[u.index()].len() as u64;
    }
    stats.index_lookups += index.lookup_count().saturating_sub(lookups_before);
    stats.operators.push(OperatorStats {
        label: "PruneUp".to_owned(),
        estimated_rows,
        actual_rows: stats.candidates_after_upward,
        time: start.elapsed(),
    });
    stats.prune_up_time += start.elapsed();
    result
}

#[allow(clippy::too_many_arguments)] // mirrors the public entry point
fn prune_upward_inner<R: Reachability + ?Sized>(
    q: &Gtpq,
    g: &DataGraph,
    index: &R,
    options: &GteaOptions,
    prime: &PrimeSubtree,
    mat: &mut [Vec<NodeId>],
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<(), Interrupt> {
    // One parent-membership bitset reused across every prime edge.
    let mut parent_bits = NodeBitSet::new(g.node_count());
    let mut condensation: Option<Condensation> = None;
    for &u in &prime.nodes {
        for &child in prime.children_of(u) {
            let candidates = std::mem::take(&mut mat[child.index()]);
            stats.input_nodes += candidates.len() as u64;
            let ranges = prune_ranges(g, &candidates, ctl, &mut condensation);
            let (kept, lookups) = match q.incoming_edge(child) {
                Some(EdgeKind::Child) => {
                    parent_bits.clear();
                    parent_bits.extend_from_slice(&mat[u.index()]);
                    let bits = &parent_bits;
                    morsel::parallel_retain(candidates, &ranges, ctl, stats, |v, lookups| {
                        lookups.set(lookups.get() + g.in_degree(v) as u64);
                        g.parents(v).iter().any(|&p| bits.contains(p))
                    })?
                }
                _ => {
                    if options.use_contours {
                        let probe = index.succ_probe(&mat[u.index()]);
                        morsel::parallel_retain(candidates, &ranges, ctl, stats, |v, _| probe(v))?
                    } else {
                        let parents = &mat[u.index()];
                        morsel::parallel_retain(candidates, &ranges, ctl, stats, |v, _| {
                            parents.iter().any(|&s| index.reaches(s, v))
                        })?
                    }
                }
            };
            stats.index_lookups += lookups;
            mat[child.index()] = kept;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::naive;
    use gtpq_reach::ThreeHop;

    use super::*;

    #[test]
    fn downward_pruning_matches_naive_downward_semantics() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let table = naive::downward_matches(&q, &g);
        for u in q.node_ids() {
            let expected: Vec<NodeId> =
                g.nodes().filter(|&v| table[u.index()][v.index()]).collect();
            assert_eq!(mat[u.index()], expected, "mismatch at {u}");
        }
        assert!(stats.initial_candidates > 0);
        assert!(stats.candidates_after_downward <= stats.initial_candidates);
    }

    #[test]
    fn candidate_selection_counts_only_touched_nodes() {
        let g = example_graph();
        let q = example_query();
        let mut stats = EvalStats::default();
        let mat = initial_candidates(&q, &g, &mut stats);
        // The seed charged |V| once per query node; the indexed path reads
        // posting lists instead, so `#input` stays below the |Q|·|V| blowup.
        assert!(
            stats.input_nodes < (q.size() * g.node_count()) as u64,
            "input_nodes = {} for |Q| = {}, |V| = {}",
            stats.input_nodes,
            q.size(),
            g.node_count()
        );
        // During selection, exactly the individually verified nodes count as
        // data accesses (the example query's prefix predicates are string
        // ranges, which verify an index-restricted superset).
        assert_eq!(stats.input_nodes, stats.scanned_nodes);
        assert!(stats.index_lookups > 0);
        // The indexed selection equals the full scan.
        for u in q.node_ids() {
            assert_eq!(mat[u.index()], q.candidates(&g, u), "mismatch at {u}");
        }

        // A pure label-equality query is served entirely from the index.
        let mut b = gtpq_query::GtpqBuilder::new(gtpq_query::AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(
            root,
            EdgeKind::Descendant,
            gtpq_query::AttrPredicate::label("b1"),
        );
        b.mark_output(child);
        let eq_query = b.build().unwrap();
        let mut eq_stats = EvalStats::default();
        let eq_mat = initial_candidates(&eq_query, &g, &mut eq_stats);
        assert_eq!(eq_stats.scanned_nodes, 0);
        assert_eq!(eq_stats.input_nodes, 0);
        assert_eq!(eq_stats.index_hits, eq_stats.initial_candidates);
        assert_eq!(eq_stats.index_serve_rate(), 1.0);
        for u in eq_query.node_ids() {
            assert_eq!(eq_mat[u.index()], eq_query.candidates(&g, u));
        }
    }

    #[test]
    fn downward_pruning_without_contours_gives_the_same_result() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let mut stats = EvalStats::default();
        let mut with_contours = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &GteaOptions::default(),
            &PruneStep::bottom_up(&q),
            &mut with_contours,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let mut without = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &GteaOptions::without_contours(),
            &PruneStep::bottom_up(&q),
            &mut without,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        assert_eq!(with_contours, without);
    }

    #[test]
    fn upward_pruning_keeps_only_reachable_candidates() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let prime = PrimeSubtree::new(&q);
        prune_upward(
            &q,
            &g,
            &index,
            &options,
            &prime,
            0,
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        // Every surviving candidate of a prime child is reachable from a
        // surviving candidate of its prime parent.
        for &u in &prime.nodes {
            for &c in prime.children_of(u) {
                for &v in &mat[c.index()] {
                    assert!(
                        mat[u.index()]
                            .iter()
                            .any(|&p| gtpq_graph::traversal::is_reachable(&g, p, v)),
                        "candidate {v} of {c} unreachable from candidates of {u}"
                    );
                }
            }
        }
        // In the running example the root keeps v1 only, u2 keeps v3/v8, u4
        // keeps the three d1 nodes under v3.
        assert_eq!(mat[0], vec![NodeId(0)]);
        assert_eq!(mat[1], vec![NodeId(2), NodeId(7)]);
        assert_eq!(mat[3], vec![NodeId(10), NodeId(11), NodeId(13)]);
    }
}
