//! GTEA — the GTPQ evaluation algorithm of the paper (§4), behind a
//! cost-based query planner.
//!
//! Evaluation is split into *planning* and *execution*: the [`plan`] module
//! builds an explicit physical-operator plan ([`QueryPlan`]) from data-graph
//! statistics (inverted-index posting lengths predict per-query-node
//! candidate counts), and the engine executes it.  [`GteaEngine::evaluate`]
//! is exactly "build the default plan, execute it";
//! [`GteaEngine::evaluate_planned`] executes an explicit plan, which the
//! query service uses for plan caching and per-query backend selection and
//! the tests use to prove that any plan returns the same answer.
//!
//! The executed pipeline evaluates a [`Gtpq`](gtpq_query::Gtpq) over a
//! [`DataGraph`](gtpq_graph::DataGraph) in four steps:
//!
//! 1. **Candidate selection** — `mat(u) = {v | v ∼ u}` for every query node,
//!    each through the plan's access path (index scan or full scan).
//! 2. **Two-round pruning** — [`prune::prune_downward`] removes candidates
//!    that violate *downward* structural constraints (the subtree pattern
//!    below their query node, including disjunction and negation), then
//!    [`prune::prune_upward`] removes candidates of the *prime subtree* that
//!    are not reachable from any candidate of their parent.  Both rounds use
//!    the 3-hop index and the contour merging of Procedure 2 instead of
//!    pairwise reachability probes.
//! 3. **Maximal matching graph** — matches of the *shrunk prime subtree* are
//!    represented as a graph (each data node stored once, one edge per
//!    matched query edge) rather than as tuples, the paper's key device for
//!    keeping intermediate results small.
//! 4. **Result enumeration** — [`collect`] walks the matching graph once and
//!    assembles the output tuples, adding back the constant columns of
//!    output nodes that were shrunk away.
//!
//! Parent-child (PC) query edges are supported with the strategy of §4.4:
//! they are treated as AD edges during pruning unless their variable occurs
//! under negation (those are checked exactly), and adjacency is enforced when
//! the matching graph is built.
//!
//! [`EvalStats`] records the counters behind the paper's I/O-cost experiment
//! (Fig. 10): data nodes accessed, index elements looked up, and the size of
//! the intermediate representation.

pub mod collect;
pub mod engine;
pub mod exec;
pub mod matching;
pub(crate) mod morsel;
pub mod options;
pub(crate) mod parallel;
pub mod plan;
pub mod prime;
pub mod prune;
pub mod stats;
pub mod stream;

pub use engine::{Aborted, ExecOptions, Execution, GteaEngine};
pub use exec::{CancelToken, ExecCtl, Interrupt, WorkerCtl};
// Re-exported so `ExecCtl::with_tracer` callers need no direct `gtpq-obs`
// dependency.
pub use gtpq_obs::{SpanCollector, Trace, Tracer};
pub use options::GteaOptions;
pub use plan::{AccessPath, CandidateStep, Planner, PruneStep, QueryPlan};
pub use stats::{EvalStats, OperatorStats};
pub use stream::{MatchStream, StreamSource};
