//! Evaluation options (used by the ablation benchmarks).

/// Tuning knobs of the GTEA engine.
///
/// Defaults correspond to the algorithm exactly as described in the paper;
/// the flags exist so the ablation benchmarks can quantify each design
/// decision (DESIGN.md §3).
#[derive(Clone, Copy, Debug)]
pub struct GteaOptions {
    /// Run the upward pruning round (Procedure 7).  Disabling it leaves more
    /// candidates in the matching graph but still produces correct answers.
    pub upward_pruning: bool,
    /// Use merged contours (Procedure 2) for set reachability during pruning.
    /// When disabled, the engine probes the 3-hop index pairwise per
    /// candidate/target, as a traditional structural-join algorithm would.
    pub use_contours: bool,
    /// Shrink the prime subtree by removing query nodes with a single
    /// remaining candidate (§4.3).  Disabling keeps the full prime subtree.
    pub shrink_prime_subtree: bool,
}

impl Default for GteaOptions {
    fn default() -> Self {
        Self {
            upward_pruning: true,
            use_contours: true,
            shrink_prime_subtree: true,
        }
    }
}

impl GteaOptions {
    /// The configuration used by the ablation that disables the upward round.
    pub fn without_upward_pruning() -> Self {
        Self {
            upward_pruning: false,
            ..Self::default()
        }
    }

    /// The configuration used by the ablation that replaces contour merging
    /// with pairwise index probes.
    pub fn without_contours() -> Self {
        Self {
            use_contours: false,
            ..Self::default()
        }
    }

    /// The configuration used by the ablation that keeps the full prime subtree.
    pub fn without_shrinking() -> Self {
        Self {
            shrink_prime_subtree: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let o = GteaOptions::default();
        assert!(o.upward_pruning && o.use_contours && o.shrink_prime_subtree);
    }

    #[test]
    fn ablation_constructors_flip_one_flag() {
        assert!(!GteaOptions::without_upward_pruning().upward_pruning);
        assert!(!GteaOptions::without_contours().use_contours);
        assert!(!GteaOptions::without_shrinking().shrink_prime_subtree);
    }
}
