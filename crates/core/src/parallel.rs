//! Order-preserving parallel result enumeration.
//!
//! The serial enumerator ([`MatchStream`]) already yields rows in
//! materialized-`ResultSet` order.  This module splits the widest shrunk
//! component's root candidates into contiguous partitions, runs one
//! `MatchStream` per partition on a scoped worker thread, and k-way-merges
//! the partition streams with adjacent-duplicate elimination — the same
//! dedup rule the stream's internal merges use.  Because every partition
//! stream is sorted and distinct, and rows duplicated across partitions
//! land adjacent in the merged order, the merged output is bit-for-bit the
//! serial stream: limit/offset pushdown, deadlines, cancellation and result
//! order are all preserved.
//!
//! Early termination: once the consumer has its `offset + limit` rows (plus
//! the one look-ahead row deciding truncation), it trips a consumer-side
//! *stop* token ([`ExecCtl::with_stop`]) that only the worker controls
//! carry, so the workers wind down without the request itself looking
//! cancelled.  Workers under a limit also cap their own production at
//! `offset + limit + 1` rows — any row of the global top-k is in some
//! partition's top-k.

use std::collections::VecDeque;
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gtpq_graph::NodeId;

use crate::exec::{CancelToken, ExecCtl, Interrupt};
use crate::stream::{MatchStream, StreamSource};

/// Rows per channel message: big enough to amortize channel traffic, small
/// enough that partition heads reach the merge quickly.
const BATCH: usize = 32;
/// Bounded channel capacity in batches — workers run at most this far ahead
/// of the merge before blocking (bounded per-partition intermediates).
const CHANNEL_BATCHES: usize = 8;
/// How long the consumer blocks on a partition channel before re-polling
/// the request control for cancellation/deadline.
const POLL: Duration = Duration::from_millis(5);

enum Msg {
    Batch(Vec<Vec<NodeId>>),
    Done(Report),
    Fail(Interrupt, Report),
}

/// What one partition worker did, for stats aggregation.
#[derive(Clone, Copy, Debug, Default)]
struct Report {
    rows: u64,
    busy: Duration,
}

/// Outcome of a parallel enumeration, successful or interrupted.
#[derive(Debug, Default)]
pub(crate) struct ParallelCollect {
    /// The windowed output rows (offset applied, at most `limit`).
    pub rows: Vec<Vec<NodeId>>,
    /// Whether a row beyond the window proved the answer truncated.
    pub truncated: bool,
    /// Distinct rows pulled at the merge level, offset-skipped and
    /// look-ahead rows included — the parallel counterpart of the serial
    /// stream's `rows_enumerated`.
    pub merged_rows: u64,
    /// Rows produced by the partition workers before merging.
    pub worker_rows: u64,
    /// Busy time summed over the partition workers.
    pub busy: Duration,
    /// Partition workers spawned.
    pub workers: u64,
    /// High-water mark of rows buffered at the consumer awaiting merge.
    pub max_queue_depth: u64,
    /// Wall time of the whole parallel enumeration.
    pub enumerate_time: Duration,
    /// Wall time to the first merged row (zero when the answer is empty).
    pub time_to_first_row: Duration,
}

struct PartState {
    rx: mpsc::Receiver<Msg>,
    buf: VecDeque<Vec<NodeId>>,
    finished: bool,
    report: Report,
    failed: Option<Interrupt>,
}

/// Splits `0..width` into exactly `parts` contiguous, non-empty ranges
/// (`parts` must not exceed `width`).
fn partition_ranges(width: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let base = width / parts;
    let rem = width % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

fn run_partition(
    i: usize,
    source: Arc<StreamSource>,
    range: std::ops::Range<usize>,
    parts: crate::exec::WorkerCtl,
    cap: Option<usize>,
    tx: SyncSender<Msg>,
    collector: &gtpq_obs::SpanCollector,
) {
    let tracer = collector.tracer();
    let span = tracer.span_with(|| format!("partition {i}"));
    span.field("range", format_args!("{}..{}", range.start, range.end));
    let mut stream = MatchStream::partitioned(source, range, parts.ctl());
    let mut batch: Vec<Vec<NodeId>> = Vec::with_capacity(BATCH);
    let mut produced = 0usize;
    let outcome = loop {
        if cap.is_some_and(|c| produced >= c) {
            break Ok(());
        }
        match stream.next_row() {
            Ok(Some(row)) => {
                produced += 1;
                batch.push(row);
                if batch.len() >= BATCH && tx.send(Msg::Batch(std::mem::take(&mut batch))).is_err()
                {
                    // Consumer went away; treat as a clean stop.
                    break Ok(());
                }
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    if !batch.is_empty() {
        let _ = tx.send(Msg::Batch(std::mem::take(&mut batch)));
    }
    let report = Report {
        rows: stream.rows_enumerated(),
        busy: stream.enumerate_time(),
    };
    span.field("rows", report.rows);
    drop(span);
    collector.absorb(tracer);
    let _ = tx.send(match outcome {
        Ok(()) => Msg::Done(report),
        Err(e) => Msg::Fail(e, report),
    });
}

/// Blocks until partition `state` has a buffered row or is finished,
/// re-polling the request control between channel waits.  Returns the
/// change in the number of buffered rows.
fn refill(state: &mut PartState, ctl: &ExecCtl) -> Result<u64, Interrupt> {
    let mut gained = 0u64;
    while state.buf.is_empty() && !state.finished {
        match state.rx.recv_timeout(POLL) {
            Ok(Msg::Batch(rows)) => {
                gained += rows.len() as u64;
                state.buf.extend(rows);
            }
            Ok(Msg::Done(report)) => {
                state.finished = true;
                state.report = report;
            }
            Ok(Msg::Fail(interrupt, report)) => {
                state.finished = true;
                state.report = report;
                state.failed = Some(interrupt);
            }
            Err(RecvTimeoutError::Timeout) => ctl.check()?,
            Err(RecvTimeoutError::Disconnected) => state.finished = true,
        }
    }
    Ok(gained)
}

/// Drains a partition to its terminal message so its report is captured,
/// discarding any rows still in flight.  Only called after the stop token
/// tripped, so the worker is already winding down.
fn drain(state: &mut PartState) {
    while !state.finished {
        match state.rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Msg::Batch(_)) => {}
            Ok(Msg::Done(report)) => {
                state.finished = true;
                state.report = report;
            }
            Ok(Msg::Fail(interrupt, report)) => {
                state.finished = true;
                state.report = report;
                state.failed = Some(interrupt);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => state.finished = true,
        }
    }
}

/// Enumerates `source` across `parts` partition workers and merges their
/// streams in order, applying the `offset`/`limit` window exactly like the
/// serial collect loop.  Returns the (possibly partial) telemetry along
/// with the interrupt, if any — the caller folds the telemetry into
/// [`EvalStats`](crate::EvalStats) either way.
pub(crate) fn enumerate_parallel(
    source: &Arc<StreamSource>,
    parts: usize,
    limit: Option<usize>,
    offset: usize,
    ctl: &ExecCtl,
) -> (Option<Interrupt>, ParallelCollect) {
    let width = source.partition_width();
    debug_assert!(width >= 1, "parallel enumeration needs a partition axis");
    let parts = parts.min(width).max(1);
    let ranges = partition_ranges(width, parts);
    let cap = limit.map(|l| offset.saturating_add(l).saturating_add(1));
    let stop = CancelToken::new();
    let collector = ctl.tracer().collector();
    let worker_parts = ctl.worker().with_stop(stop.clone());
    let start = Instant::now();

    let mut out = ParallelCollect {
        workers: parts as u64,
        ..ParallelCollect::default()
    };
    let mut interrupt: Option<Interrupt> = None;

    let mut states: Vec<PartState> = thread::scope(|scope| {
        let mut states = Vec::with_capacity(parts);
        for (i, range) in ranges.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Msg>(CHANNEL_BATCHES);
            let source = Arc::clone(source);
            let wctl = worker_parts.clone();
            let collector = &collector;
            scope.spawn(move || run_partition(i, source, range, wctl, cap, tx, collector));
            states.push(PartState {
                rx,
                buf: VecDeque::new(),
                finished: false,
                report: Report::default(),
                failed: None,
            });
        }

        // Ordered k-way merge with adjacent-duplicate elimination, windowed
        // exactly like the serial collect loop.
        let mut buffered = 0u64;
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(Vec<NodeId>, usize)>> =
            std::collections::BinaryHeap::new();
        let merge = |states: &mut Vec<PartState>,
                     heap: &mut std::collections::BinaryHeap<_>,
                     buffered: &mut u64,
                     out: &mut ParallelCollect|
         -> Result<(), Interrupt> {
            for (i, state) in states.iter_mut().enumerate() {
                *buffered += refill(state, ctl)?;
                out.max_queue_depth = out.max_queue_depth.max(*buffered);
                if let Some(interrupt) = state.failed {
                    return Err(interrupt);
                }
                if let Some(row) = state.buf.pop_front() {
                    *buffered -= 1;
                    heap.push(std::cmp::Reverse((row, i)));
                }
            }
            let mut last: Option<Vec<NodeId>> = None;
            let mut skipped = 0usize;
            while let Some(std::cmp::Reverse((row, i))) = heap.pop() {
                let state = &mut states[i];
                *buffered += refill(state, ctl)?;
                out.max_queue_depth = out.max_queue_depth.max(*buffered);
                if let Some(interrupt) = state.failed {
                    return Err(interrupt);
                }
                if let Some(next) = state.buf.pop_front() {
                    *buffered -= 1;
                    heap.push(std::cmp::Reverse((next, i)));
                }
                if last.as_ref() == Some(&row) {
                    continue;
                }
                out.merged_rows += 1;
                if out.merged_rows == 1 {
                    out.time_to_first_row = start.elapsed();
                }
                if skipped < offset {
                    skipped += 1;
                    last = Some(row);
                    continue;
                }
                if limit.is_some_and(|l| out.rows.len() >= l) {
                    // The look-ahead row proving truncation, counted in
                    // `merged_rows` just like the serial loop counts it.
                    out.truncated = true;
                    return Ok(());
                }
                last = Some(row.clone());
                out.rows.push(row);
            }
            Ok(())
        };
        if let Err(e) = merge(&mut states, &mut heap, &mut buffered, &mut out) {
            interrupt = Some(e);
        }

        // Stop the workers (limit satisfied, or propagating an interrupt)
        // and collect every report; workers wind down at their next poll.
        stop.cancel();
        for state in &mut states {
            drain(state);
        }
        states
    });

    // A worker failure caused by our own stop token is not an interrupt;
    // anything else (deadline, request cancellation) is.
    for state in &mut states {
        out.worker_rows += state.report.rows;
        out.busy += state.report.busy;
        if let (None, Some(failed)) = (interrupt, state.failed) {
            interrupt = Some(failed);
        }
    }
    if interrupt == Some(Interrupt::Cancelled) {
        // Distinguish a real request cancellation/timeout from workers that
        // merely observed our stop token: re-poll the parent control.
        interrupt = ctl.check().err();
    }
    ctl.tracer().adopt(&collector);
    out.enumerate_time = start.elapsed();
    (interrupt, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ranges_cover_exactly() {
        for width in [1usize, 2, 3, 7, 100, 101] {
            for parts in 1..=width.min(9) {
                let ranges = partition_ranges(width, parts);
                assert_eq!(ranges.len(), parts);
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
                assert_eq!(flat, (0..width).collect::<Vec<_>>());
            }
        }
    }
}
