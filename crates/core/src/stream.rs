//! Pull-based, ranked result enumeration (`MatchStream`).
//!
//! The seed's `CollectResults` materialized every partial of every shrunk
//! component and took their full Cartesian product before the first tuple was
//! visible.  `MatchStream` replaces that with *ranked enumeration* over the
//! maximal matching graph: distinct output tuples are produced one at a time,
//! **in exactly the order a materialized `ResultSet` would iterate them**
//! (lexicographic over the output coordinates), so `LIMIT`/`OFFSET` push down
//! into the executor — pulling `offset + limit` rows does only the work those
//! rows need, instead of the full product.
//!
//! The machinery is a tree of lazy sorted lists:
//!
//! * a **node list** for a `(query node, candidate)` pair enumerates the
//!   distinct output projections of the subtree match, sorted; it is the
//!   ordered product of the node's own column and one **child list** per
//!   shrunk child (memoized and shared across parents, like the paper's
//!   merged sub-results),
//! * a **child list** is the ordered, deduplicating merge of the node lists
//!   of the data nodes the matching graph points to,
//! * the **top level** is the ordered product across shrunk components (plus
//!   the constant columns of shrunk-away output nodes).
//!
//! Ordered products are enumerated A*-style: a frontier heap of index
//! vectors, popping the smallest assembled projection and pushing its
//! one-step successors.  Sortedness is preserved because components and
//! subtrees own *disjoint* output coordinates: growing one factor's
//! sub-projection grows the assembled projection in output-coordinate
//! lexicographic order, whatever the interleaving.
//!
//! Every pull polls the stream's [`ExecCtl`], so deadlines and cancellation
//! interrupt enumeration mid-way with a clean [`Interrupt`].

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::ops::Range;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtpq_graph::NodeId;
use gtpq_query::{Gtpq, QueryNodeId};

use crate::exec::{ExecCtl, Interrupt};
use crate::matching::MatchingGraph;
use crate::prime::ShrunkPrime;

/// Per-pull spans are recorded for the first this-many pulls of a traced
/// stream; later pulls go untraced so an unbounded enumeration cannot grow
/// the trace without bound (and so tracing a large answer stays cheap: each
/// pull span costs an allocation, which would dominate small queries).
const TRACED_PULLS: u64 = 16;

/// A partial output projection: `(output coordinate, data node)` pairs,
/// sorted by coordinate.  Two partials over the same coordinate set compare
/// exactly like the corresponding result-tuple slices.
type Partial = Vec<(usize, NodeId)>;

/// A shared, lazily produced sorted list of partials.
type ListHandle = Rc<RefCell<LazyList>>;

/// The immutable, `Send + Sync` inputs of result enumeration: the shrunk
/// prime subtree, the maximal matching graph, the pruned candidate sets and
/// the output-coordinate layout.
///
/// Extracted from [`MatchStream`] so parallel enumeration can share one
/// source across worker threads behind an `Arc`, each worker building its
/// own (thread-local, `Rc`-based) stream over a *partition* of the widest
/// component's root candidates.
pub struct StreamSource {
    shrunk: ShrunkPrime,
    matching: MatchingGraph,
    mat: Vec<Vec<NodeId>>,
    /// Output-coordinate of each query node (`None` for non-output nodes).
    rank: Vec<Option<usize>>,
    /// Constant columns of shrunk-away output nodes.
    constants: Partial,
    output_len: usize,
    /// Index (into `shrunk.roots`) of the component with the most root
    /// candidates — the axis partitioned streams split on.
    axis: Option<usize>,
}

impl StreamSource {
    /// Captures the enumeration inputs.  `mat` must hold the candidate sets
    /// *after* both prune rounds, and `matching` the maximal matching graph
    /// built from them.
    pub fn new(
        q: &Gtpq,
        shrunk: ShrunkPrime,
        matching: MatchingGraph,
        mat: Vec<Vec<NodeId>>,
    ) -> Self {
        let outputs = q.output_nodes();
        let mut rank: Vec<Option<usize>> = vec![None; q.size()];
        for (i, &u) in outputs.iter().enumerate() {
            rank[u.index()] = Some(i);
        }
        let constants: Partial = shrunk
            .constant_outputs
            .iter()
            .filter_map(|&(u, v)| rank[u.index()].map(|r| (r, v)))
            .collect();
        // First-widest wins so the axis is deterministic across runs.
        let mut axis: Option<(usize, usize)> = None;
        for (i, r) in shrunk.roots.iter().enumerate() {
            let width = mat[r.index()].len();
            if axis.is_none_or(|(_, best)| width > best) {
                axis = Some((i, width));
            }
        }
        Self {
            shrunk,
            matching,
            mat,
            rank,
            constants,
            output_len: outputs.len(),
            axis: axis.map(|(i, _)| i),
        }
    }

    /// Number of output coordinates per row.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// How many top-level units the partition axis (the component with the
    /// most root candidates) offers: the upper bound on useful enumeration
    /// partitions.  Zero when every component was shrunk away.
    pub fn partition_width(&self) -> usize {
        self.axis
            .map(|i| self.mat[self.shrunk.roots[i].index()].len())
            .unwrap_or(0)
    }
}

/// Immutable context shared by every lazy list of one stream: the shared
/// source plus this stream's thread-local memo table.
struct StreamCtx {
    source: Arc<StreamSource>,
    /// Memoized node lists, shared across every parent that points at the
    /// same `(query node, candidate)` pair.
    memo: RefCell<HashMap<(QueryNodeId, NodeId), ListHandle>>,
}

impl std::ops::Deref for StreamCtx {
    type Target = StreamSource;

    fn deref(&self) -> &StreamSource {
        &self.source
    }
}

/// A sorted list of distinct partials, extended on demand by its producer.
struct LazyList {
    items: Vec<Rc<Partial>>,
    /// `None` once the list is fully produced.
    producer: Option<Producer>,
}

impl LazyList {
    fn fixed(items: Vec<Rc<Partial>>) -> Self {
        Self {
            items,
            producer: None,
        }
    }

    fn handle(self) -> ListHandle {
        Rc::new(RefCell::new(self))
    }
}

enum Producer {
    Merge(MergeState),
    Product(ProductState),
}

/// Ordered, deduplicating k-way merge over sorted source lists.
struct MergeState {
    /// `(source list, cursor of the next item to read)`.
    sources: Vec<(ListHandle, usize)>,
    heap: BinaryHeap<Reverse<(Rc<Partial>, usize)>>,
    initialized: bool,
}

/// Ordered product over sorted factor lists, A*-style.
struct ProductState {
    /// Coordinates contributed by the product owner itself (the node's own
    /// output column, or the constant columns at the top level).
    own: Partial,
    factors: Vec<ListHandle>,
    heap: BinaryHeap<Reverse<(Partial, Vec<usize>)>>,
    visited: HashSet<Vec<usize>>,
    initialized: bool,
}

impl ProductState {
    fn new(own: Partial, factors: Vec<ListHandle>) -> Self {
        Self {
            own,
            factors,
            heap: BinaryHeap::new(),
            visited: HashSet::new(),
            initialized: false,
        }
    }

    /// Assembles the partial at index vector `idxs`; every factor item is
    /// already produced (or is produced now, for the advanced coordinate).
    fn assemble(&self, idxs: &[usize], ctl: &ExecCtl) -> Result<Option<Partial>, Interrupt> {
        let mut out = self.own.clone();
        for (factor, &i) in self.factors.iter().zip(idxs) {
            match pull(factor, i, ctl)? {
                Some(part) => out.extend_from_slice(&part),
                None => return Ok(None),
            }
        }
        out.sort_unstable();
        Ok(Some(out))
    }

    fn produce(&mut self, ctl: &ExecCtl) -> Result<Option<Rc<Partial>>, Interrupt> {
        if !self.initialized {
            self.initialized = true;
            let idxs = vec![0; self.factors.len()];
            if let Some(first) = self.assemble(&idxs, ctl)? {
                self.visited.insert(idxs.clone());
                self.heap.push(Reverse((first, idxs)));
            }
        }
        let Some(Reverse((item, idxs))) = self.heap.pop() else {
            return Ok(None);
        };
        for c in 0..self.factors.len() {
            let mut succ = idxs.clone();
            succ[c] += 1;
            if self.visited.contains(&succ) {
                continue;
            }
            if let Some(assembled) = self.assemble(&succ, ctl)? {
                self.visited.insert(succ.clone());
                self.heap.push(Reverse((assembled, succ)));
            }
        }
        Ok(Some(Rc::new(item)))
    }
}

impl MergeState {
    fn new(sources: Vec<ListHandle>) -> Self {
        Self {
            sources: sources.into_iter().map(|s| (s, 0)).collect(),
            heap: BinaryHeap::new(),
            initialized: false,
        }
    }

    fn produce(
        &mut self,
        last: Option<&Partial>,
        ctl: &ExecCtl,
    ) -> Result<Option<Rc<Partial>>, Interrupt> {
        if !self.initialized {
            self.initialized = true;
            for i in 0..self.sources.len() {
                let head = pull(&self.sources[i].0, 0, ctl)?;
                if let Some(item) = head {
                    self.heap.push(Reverse((item, i)));
                }
            }
        }
        loop {
            let Some(Reverse((item, i))) = self.heap.pop() else {
                return Ok(None);
            };
            let (source, cursor) = &mut self.sources[i];
            *cursor += 1;
            let source = Rc::clone(source);
            let cursor = *cursor;
            if let Some(next) = pull(&source, cursor, ctl)? {
                self.heap.push(Reverse((next, i)));
            }
            // Equal projections reached through different candidates
            // deduplicate here (the lists themselves are distinct).
            if last != Some(item.as_ref()) {
                return Ok(Some(item));
            }
        }
    }
}

/// Returns the `idx`-th item of `list`, producing items on demand; `None`
/// when the list has fewer than `idx + 1` items.
fn pull(list: &ListHandle, idx: usize, ctl: &ExecCtl) -> Result<Option<Rc<Partial>>, Interrupt> {
    loop {
        {
            let borrowed = list.borrow();
            if let Some(item) = borrowed.items.get(idx) {
                return Ok(Some(Rc::clone(item)));
            }
            if borrowed.producer.is_none() {
                return Ok(None);
            }
        }
        ctl.check_sampled()?;
        // Produce exactly one more item.  The recursive pulls inside the
        // producer only ever touch lists of strictly deeper query nodes, so
        // re-borrowing `list` is impossible.
        let mut borrowed = list.borrow_mut();
        let LazyList { items, producer } = &mut *borrowed;
        let last = items.last().map(Rc::clone);
        let produced = match producer.as_mut().expect("checked above") {
            Producer::Merge(m) => m.produce(last.as_deref(), ctl)?,
            Producer::Product(p) => p.produce(ctl)?,
        };
        match produced {
            Some(item) => {
                debug_assert!(
                    last.is_none_or(|prev| *prev < *item),
                    "lazy lists must produce strictly ascending partials"
                );
                items.push(item);
            }
            None => *producer = None,
        }
    }
}

/// Builds (or reuses) the memoized node list of `(u, v)`.
fn node_list(ctx: &Rc<StreamCtx>, u: QueryNodeId, v: NodeId) -> ListHandle {
    if let Some(existing) = ctx.memo.borrow().get(&(u, v)) {
        return Rc::clone(existing);
    }
    let own: Partial = match ctx.rank[u.index()] {
        Some(rank) => vec![(rank, v)],
        None => Vec::new(),
    };
    let children = ctx.shrunk.children_of(u);
    let list = if children.is_empty() {
        LazyList::fixed(vec![Rc::new(own)])
    } else {
        let branches = ctx.matching.branches_of(u, v);
        let factors: Vec<ListHandle> = (0..children.len())
            .map(|ci| {
                let pointed: &[NodeId] = branches.map(|b| b[ci].as_slice()).unwrap_or(&[]);
                let sources: Vec<ListHandle> = pointed
                    .iter()
                    .map(|&v2| node_list(ctx, children[ci], v2))
                    .collect();
                LazyList {
                    items: Vec::new(),
                    producer: Some(Producer::Merge(MergeState::new(sources))),
                }
                .handle()
            })
            .collect();
        LazyList {
            items: Vec::new(),
            producer: Some(Producer::Product(ProductState::new(own, factors))),
        }
    };
    let handle = list.handle();
    ctx.memo.borrow_mut().insert((u, v), Rc::clone(&handle));
    handle
}

/// A pull-based iterator over the distinct result tuples of one evaluated
/// query, produced in [`ResultSet`](gtpq_query::ResultSet) iteration order.
///
/// Built by [`GteaEngine::match_stream`](crate::GteaEngine::match_stream)
/// after candidate selection, pruning and matching-graph construction; each
/// [`next_row`](Self::next_row) call does only the enumeration work that row
/// needs, which is what makes `LIMIT` pushdown and time-to-first-row cheap.
pub struct MatchStream {
    top: ListHandle,
    cursor: usize,
    output_len: usize,
    ctl: ExecCtl,
    rows_enumerated: u64,
    enumerate_time: Duration,
    time_to_first_row: Duration,
}

impl MatchStream {
    /// Builds the stream over a pruned candidate graph.  `mat` must hold the
    /// candidate sets *after* both prune rounds, and `matching` the maximal
    /// matching graph built from them.
    pub fn build(
        q: &Gtpq,
        shrunk: ShrunkPrime,
        matching: MatchingGraph,
        mat: Vec<Vec<NodeId>>,
        ctl: ExecCtl,
    ) -> Self {
        Self::from_source(Arc::new(StreamSource::new(q, shrunk, matching, mat)), ctl)
    }

    /// Builds the stream over a prepared (possibly shared) source.
    pub fn from_source(source: Arc<StreamSource>, ctl: ExecCtl) -> Self {
        Self::over(source, None, ctl)
    }

    /// Builds a stream restricted to the root candidates at positions
    /// `part` of the source's partition axis (the widest component); the
    /// other components enumerate in full.  The union of the streams over a
    /// partition of `0..partition_width()`, merged in order with
    /// adjacent-duplicate elimination, is bit-for-bit the serial stream.
    pub(crate) fn partitioned(source: Arc<StreamSource>, part: Range<usize>, ctl: ExecCtl) -> Self {
        Self::over(source, Some(part), ctl)
    }

    fn over(source: Arc<StreamSource>, part: Option<Range<usize>>, ctl: ExecCtl) -> Self {
        let output_len = source.output_len;
        let constants = source.constants.clone();
        let ctx = Rc::new(StreamCtx {
            source,
            memo: RefCell::new(HashMap::new()),
        });
        // One deduplicating merge per shrunk component (over the component
        // root's candidates), combined by an ordered product with the
        // constant columns attached.  Zero components (everything shrunk
        // away) yield exactly the constants tuple, matching the
        // materializing semantics.
        let components: Vec<ListHandle> = ctx
            .shrunk
            .roots
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let all = ctx.mat[r.index()].as_slice();
                let cands: &[NodeId] = match (&part, ctx.axis) {
                    (Some(range), Some(axis)) if axis == i => &all[range.clone()],
                    _ => all,
                };
                let sources: Vec<ListHandle> =
                    cands.iter().map(|&v| node_list(&ctx, r, v)).collect();
                LazyList {
                    items: Vec::new(),
                    producer: Some(Producer::Merge(MergeState::new(sources))),
                }
                .handle()
            })
            .collect();
        let top = LazyList {
            items: Vec::new(),
            producer: Some(Producer::Product(ProductState::new(constants, components))),
        }
        .handle();
        Self {
            top,
            cursor: 0,
            output_len,
            ctl,
            rows_enumerated: 0,
            enumerate_time: Duration::ZERO,
            time_to_first_row: Duration::ZERO,
        }
    }

    /// A stream that yields no rows (pruning proved the answer empty).
    pub fn empty(q: &Gtpq, ctl: ExecCtl) -> Self {
        Self {
            top: LazyList::fixed(Vec::new()).handle(),
            cursor: 0,
            output_len: q.output_nodes().len(),
            ctl,
            rows_enumerated: 0,
            enumerate_time: Duration::ZERO,
            time_to_first_row: Duration::ZERO,
        }
    }

    /// Produces the next result tuple, in materialized-`ResultSet` order;
    /// `Ok(None)` once the answer is exhausted, `Err` when the deadline
    /// passes or the request is cancelled mid-enumeration.
    ///
    /// When the stream's control carries an enabled tracer, each of the
    /// first `TRACED_PULLS` (16) pulls records a `pull N` span.
    pub fn next_row(&mut self) -> Result<Option<Vec<NodeId>>, Interrupt> {
        let _span =
            (self.ctl.tracer().is_enabled() && self.rows_enumerated < TRACED_PULLS).then(|| {
                let n = self.rows_enumerated;
                self.ctl.tracer().span_with(|| format!("pull {n}"))
            });
        let start = Instant::now();
        let outcome = loop {
            match pull(&self.top, self.cursor, &self.ctl) {
                Err(e) => break Err(e),
                Ok(None) => break Ok(None),
                Ok(Some(partial)) => {
                    self.cursor += 1;
                    self.rows_enumerated += 1;
                    // Every component plus the constants covers every output
                    // coordinate exactly once; anything else would be a
                    // pruning bug, so the row is dropped rather than padded.
                    debug_assert_eq!(partial.len(), self.output_len);
                    if partial.len() != self.output_len {
                        continue;
                    }
                    let mut row = vec![NodeId(0); self.output_len];
                    for &(rank, v) in partial.iter() {
                        row[rank] = v;
                    }
                    break Ok(Some(row));
                }
            }
        };
        let elapsed = start.elapsed();
        self.enumerate_time += elapsed;
        if self.rows_enumerated == 1 && self.time_to_first_row == Duration::ZERO {
            self.time_to_first_row = self.enumerate_time;
        }
        outcome
    }

    /// Rows pulled from the enumerator so far (emitted plus any the caller
    /// skipped over an `OFFSET`).
    pub fn rows_enumerated(&self) -> u64 {
        self.rows_enumerated
    }

    /// Wall time spent inside [`next_row`](Self::next_row) so far.
    pub fn enumerate_time(&self) -> Duration {
        self.enumerate_time
    }

    /// Wall time from the first [`next_row`](Self::next_row) call to the
    /// first produced row (zero until then).
    pub fn time_to_first_row(&self) -> Duration {
        self.time_to_first_row
    }
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_answer_pairs, example_graph, example_query};
    use gtpq_reach::ThreeHop;

    use crate::options::GteaOptions;
    use crate::plan::PruneStep;
    use crate::prime::{PrimeSubtree, ShrunkPrime};
    use crate::prune::{initial_candidates, prune_downward, prune_upward};
    use crate::stats::EvalStats;

    use super::*;

    fn pruned_example() -> (Gtpq, ShrunkPrime, MatchingGraph, Vec<Vec<NodeId>>) {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let ctl = ExecCtl::unbounded();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
            &ctl,
        )
        .unwrap();
        let prime = PrimeSubtree::new(&q);
        prune_upward(
            &q, &g, &index, &options, &prime, 0, &mut mat, &mut stats, &ctl,
        )
        .unwrap();
        let shrunk = ShrunkPrime::new(&q, &prime, &mat, true);
        let matching =
            MatchingGraph::build(&q, &g, &index, &shrunk, &mat, &mut stats, &ctl).unwrap();
        (q, shrunk, matching, mat)
    }

    #[test]
    fn stream_emits_the_example_answer_in_sorted_order() {
        let (q, shrunk, matching, mat) = pruned_example();
        let mut stream = MatchStream::build(&q, shrunk, matching, mat, ExecCtl::unbounded());
        let mut rows = Vec::new();
        while let Some(row) = stream.next_row().unwrap() {
            rows.push(row);
        }
        let mut expected: Vec<Vec<NodeId>> = example_answer_pairs()
            .into_iter()
            .map(|(a, b)| vec![NodeId(a - 1), NodeId(b - 1)])
            .collect();
        expected.sort();
        assert_eq!(rows, expected, "sorted order and exact multiset");
        assert_eq!(stream.rows_enumerated(), expected.len() as u64);
        assert!(stream.time_to_first_row() <= stream.enumerate_time());
    }

    #[test]
    fn stream_respects_cancellation() {
        let (q, shrunk, matching, mat) = pruned_example();
        let token = crate::exec::CancelToken::new();
        token.cancel();
        let ctl = ExecCtl::unbounded().with_cancel(token);
        let mut stream = MatchStream::build(&q, shrunk, matching, mat, ctl);
        assert_eq!(stream.next_row(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let q = example_query();
        let mut stream = MatchStream::empty(&q, ExecCtl::unbounded());
        assert_eq!(stream.next_row(), Ok(None));
        assert_eq!(stream.rows_enumerated(), 0);
    }

    #[test]
    fn partitioned_streams_union_to_the_serial_stream() {
        let (q, shrunk, matching, mat) = pruned_example();
        let source = Arc::new(StreamSource::new(&q, shrunk, matching, mat));
        let drain = |mut s: MatchStream| {
            let mut rows = Vec::new();
            while let Some(row) = s.next_row().unwrap() {
                rows.push(row);
            }
            rows
        };
        let serial = drain(MatchStream::from_source(
            Arc::clone(&source),
            ExecCtl::unbounded(),
        ));
        assert!(!serial.is_empty());
        let width = source.partition_width();
        assert!(width >= 1);
        for parts in 1..=width {
            let ranges = crate::morsel::morsel_ranges(width, parts);
            let mut union: Vec<Vec<NodeId>> = Vec::new();
            for range in ranges {
                let stream =
                    MatchStream::partitioned(Arc::clone(&source), range, ExecCtl::unbounded());
                let rows = drain(stream);
                // Each partition is itself sorted and distinct.
                assert!(rows.windows(2).all(|w| w[0] < w[1]));
                union.extend(rows);
            }
            union.sort();
            union.dedup();
            assert_eq!(union, serial, "partition count {parts}");
        }
    }
}
