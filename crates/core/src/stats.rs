//! Evaluation statistics (the paper's I/O-cost metrics, Appendix C.1).

use std::time::Duration;

/// Counters and timings collected during one evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Number of data-node accesses (`#input` in Fig. 10): candidates scanned
    /// during candidate selection and the two pruning rounds.
    pub input_nodes: u64,
    /// Number of index elements looked up (`#index` in Fig. 10): 3-hop hop-list
    /// entries read plus adjacency entries scanned for PC edges.
    pub index_lookups: u64,
    /// Size of the intermediate results (`#intermediate` in Fig. 10): twice the
    /// number of nodes plus edges of the maximal matching graph, following the
    /// paper's accounting.
    pub intermediate_size: u64,
    /// Total number of initial candidate matching nodes (Σ |mat(u)|).
    pub initial_candidates: u64,
    /// Initial candidates served without per-node attribute checks
    /// (posting-list intersections, or trivially for wildcard predicates).
    pub index_hits: u64,
    /// Nodes whose attribute tuples were individually checked during
    /// candidate selection (verification of non-indexable comparisons).
    pub scanned_nodes: u64,
    /// Candidates remaining after the downward pruning round.
    pub candidates_after_downward: u64,
    /// Candidates of the prime subtree remaining after the upward round.
    pub candidates_after_upward: u64,
    /// Number of query nodes in the prime subtree.
    pub prime_subtree_size: u64,
    /// Number of query nodes in the shrunk prime subtree.
    pub shrunk_subtree_size: u64,
    /// Number of result tuples produced.
    pub result_tuples: u64,
    /// Time spent selecting candidates.
    pub candidate_time: Duration,
    /// Time spent in the downward pruning round.
    pub prune_down_time: Duration,
    /// Time spent in the upward pruning round.
    pub prune_up_time: Duration,
    /// Time spent building the maximal matching graph.
    pub matching_graph_time: Duration,
    /// Time spent enumerating results.
    pub enumerate_time: Duration,
}

impl EvalStats {
    /// Total pruning (filtering) time — the quantity compared against
    /// TwigStackD's pre-filtering in Fig. 9(d).
    pub fn filtering_time(&self) -> Duration {
        self.prune_down_time + self.prune_up_time
    }

    /// Total evaluation time.
    pub fn total_time(&self) -> Duration {
        self.candidate_time
            + self.prune_down_time
            + self.prune_up_time
            + self.matching_graph_time
            + self.enumerate_time
    }

    /// Fraction of candidates removed by the two pruning rounds, over the
    /// query nodes of the prime subtree (1.0 = everything pruned).
    pub fn pruning_ratio(&self) -> f64 {
        if self.initial_candidates == 0 {
            return 0.0;
        }
        1.0 - self.candidates_after_downward as f64 / self.initial_candidates as f64
    }

    /// Fraction of initial candidates served straight from the attribute
    /// inverted index (1.0 = no node scanned during candidate selection).
    pub fn index_serve_rate(&self) -> f64 {
        serve_rate(self.index_hits, self.scanned_nodes)
    }
}

/// Shared serve-rate formula: index-served over everything touched during
/// candidate selection (0.0 when idle).  Used by [`EvalStats`] and by the
/// service-level metrics snapshot so the two reports cannot drift apart.
pub fn serve_rate(index_hits: u64, scanned_nodes: u64) -> f64 {
    let touched = index_hits + scanned_nodes;
    if touched == 0 {
        return 0.0;
    }
    index_hits as f64 / touched as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let stats = EvalStats {
            initial_candidates: 100,
            candidates_after_downward: 25,
            prune_down_time: Duration::from_millis(3),
            prune_up_time: Duration::from_millis(2),
            enumerate_time: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(stats.filtering_time(), Duration::from_millis(5));
        assert_eq!(stats.total_time(), Duration::from_millis(10));
        assert!((stats.pruning_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(EvalStats::default().pruning_ratio(), 0.0);
    }

    #[test]
    fn index_serve_rate_splits_hits_and_scans() {
        let stats = EvalStats {
            index_hits: 30,
            scanned_nodes: 10,
            ..Default::default()
        };
        assert!((stats.index_serve_rate() - 0.75).abs() < 1e-9);
        assert_eq!(EvalStats::default().index_serve_rate(), 0.0);
    }
}
