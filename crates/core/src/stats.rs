//! Evaluation statistics (the paper's I/O-cost metrics, Appendix C.1).

use std::time::Duration;

/// Estimated-vs-actual cardinality and wall time of one physical operator.
///
/// Recorded by the plan executor for every candidate-selection step, every
/// downward-prune step, the upward round, the matching-graph build and the
/// collect phase, in execution order.  `estimated_rows` comes from the plan's
/// cost model, `actual_rows` is what the operator really produced — the pair
/// is the feedback signal for judging (and later improving) the cost model.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OperatorStats {
    /// Stable operator label (`IndexScan u0`, `PruneDown u2`, `PruneUp`,
    /// `MatchingGraph`, `Collect`), matching the plan's rendering.
    pub label: String,
    /// Rows the planner estimated this operator would produce.
    pub estimated_rows: u64,
    /// Rows the operator actually produced.
    pub actual_rows: u64,
    /// Wall time spent in the operator.
    pub time: Duration,
}

impl OperatorStats {
    /// Relative cardinality estimation error `|est − actual| / max(actual, 1)`.
    pub fn relative_error(&self) -> f64 {
        let actual = self.actual_rows.max(1) as f64;
        (self.estimated_rows as f64 - self.actual_rows as f64).abs() / actual
    }
}

/// Counters and timings collected during one evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalStats {
    /// Number of data-node accesses (`#input` in Fig. 10): candidates scanned
    /// during candidate selection and the two pruning rounds.
    pub input_nodes: u64,
    /// Number of index elements looked up (`#index` in Fig. 10): 3-hop hop-list
    /// entries read plus adjacency entries scanned for PC edges.
    pub index_lookups: u64,
    /// Size of the intermediate results (`#intermediate` in Fig. 10): twice the
    /// number of nodes plus edges of the maximal matching graph, following the
    /// paper's accounting.
    pub intermediate_size: u64,
    /// Total number of initial candidate matching nodes (Σ |mat(u)|).
    pub initial_candidates: u64,
    /// Initial candidates served without per-node attribute checks
    /// (posting-list intersections, or trivially for wildcard predicates).
    pub index_hits: u64,
    /// Nodes whose attribute tuples were individually checked during
    /// candidate selection (verification of non-indexable comparisons).
    pub scanned_nodes: u64,
    /// Indexed vectors discarded by the pivot filter's triangle-inequality
    /// check during `sim(...)` candidate selection — each one an exact
    /// distance computation avoided.
    pub sim_pivot_filtered: u64,
    /// Indexed vectors that survived the pivot filter and were verified with
    /// an exact distance / cosine computation.
    pub sim_verified: u64,
    /// Candidates remaining after the downward pruning round.
    pub candidates_after_downward: u64,
    /// Candidates of the prime subtree remaining after the upward round.
    pub candidates_after_upward: u64,
    /// Number of query nodes in the prime subtree.
    pub prime_subtree_size: u64,
    /// Number of query nodes in the shrunk prime subtree.
    pub shrunk_subtree_size: u64,
    /// Number of result tuples produced.
    pub result_tuples: u64,
    /// Epoch of the graph snapshot the query evaluated against (0 for
    /// static, never-mutated graphs).  Set by the query service; lets a
    /// caller verify which generation of a live graph answered.
    pub graph_epoch: u64,
    /// Rows pulled from the streaming enumerator, including rows skipped by
    /// an `OFFSET` and the one look-ahead row that decides truncation.  With
    /// a pushed-down `LIMIT` this stays near `offset + limit + 1`; without
    /// one it equals the full answer size — the headline counter for how
    /// much enumeration work limit pushdown avoided.
    pub enumerated_rows: u64,
    /// Time spent selecting candidates.
    pub candidate_time: Duration,
    /// Time spent in the downward pruning round.
    pub prune_down_time: Duration,
    /// Time spent in the upward pruning round.
    pub prune_up_time: Duration,
    /// Time spent building the maximal matching graph.
    pub matching_graph_time: Duration,
    /// Time spent enumerating results.
    pub enumerate_time: Duration,
    /// Wall time from the start of enumeration to the first produced row
    /// (zero when the answer is empty) — the streaming latency headline.
    pub time_to_first_row: Duration,
    /// Time spent building the query plan (zero when a pre-built plan was
    /// executed via `evaluate_planned`).
    pub plan_time: Duration,
    /// Largest number of worker threads any parallel stage of this
    /// evaluation actually used (0 = the whole run stayed serial).
    pub parallel_workers: u64,
    /// Morsels dispatched to workers across all parallel stages.
    pub morsels_dispatched: u64,
    /// Total busy time summed over the workers of all parallel stages.  Can
    /// exceed the wall-clock stage times; `worker_busy_time / stage time`
    /// approximates the effective parallel speedup.
    pub worker_busy_time: Duration,
    /// Rows produced by partition enumerators before the ordered merge
    /// (≥ `enumerated_rows` under parallel enumeration; 0 when serial).
    pub worker_rows: u64,
    /// High-water mark of rows buffered but not yet merged during parallel
    /// enumeration — how far ahead of the consumer the workers ran.
    pub max_queue_depth: u64,
    /// Per-operator estimated-vs-actual cardinalities and wall times, in
    /// execution order.
    pub operators: Vec<OperatorStats>,
}

impl EvalStats {
    /// Total pruning (filtering) time — the quantity compared against
    /// TwigStackD's pre-filtering in Fig. 9(d).
    pub fn filtering_time(&self) -> Duration {
        self.prune_down_time + self.prune_up_time
    }

    /// Total evaluation time, planning included.
    pub fn total_time(&self) -> Duration {
        self.plan_time
            + self.candidate_time
            + self.prune_down_time
            + self.prune_up_time
            + self.matching_graph_time
            + self.enumerate_time
    }

    /// Sum of estimated rows across recorded operators.
    pub fn estimated_rows(&self) -> u64 {
        self.operators.iter().map(|o| o.estimated_rows).sum()
    }

    /// Sum of actual rows across recorded operators.
    pub fn actual_rows(&self) -> u64 {
        self.operators.iter().map(|o| o.actual_rows).sum()
    }

    /// Sum of `|estimated − actual|` across recorded operators — the
    /// cancellation-proof absolute error the service metrics aggregate
    /// (an over-estimate cannot hide an under-estimate).
    pub fn absolute_estimation_error(&self) -> u64 {
        self.operators
            .iter()
            .map(|o| o.estimated_rows.abs_diff(o.actual_rows))
            .sum()
    }

    /// Mean relative cardinality-estimation error over the recorded
    /// operators (0.0 when none were recorded — e.g. on a cache hit).
    pub fn estimation_error(&self) -> f64 {
        if self.operators.is_empty() {
            return 0.0;
        }
        self.operators
            .iter()
            .map(OperatorStats::relative_error)
            .sum::<f64>()
            / self.operators.len() as f64
    }

    /// Fraction of candidates removed by the two pruning rounds, over the
    /// query nodes of the prime subtree (1.0 = everything pruned).
    pub fn pruning_ratio(&self) -> f64 {
        if self.initial_candidates == 0 {
            return 0.0;
        }
        1.0 - self.candidates_after_downward as f64 / self.initial_candidates as f64
    }

    /// Fraction of initial candidates served straight from the attribute
    /// inverted index (1.0 = no node scanned during candidate selection).
    pub fn index_serve_rate(&self) -> f64 {
        serve_rate(self.index_hits, self.scanned_nodes)
    }

    /// Fraction of sim-indexed vectors the pivot filter discarded without an
    /// exact distance computation (0.0 when no `sim(...)` predicate ran).
    /// The headline number for how much work the block-and-verify filter
    /// saved over verifying every indexed vector.
    pub fn sim_filter_selectivity(&self) -> f64 {
        serve_rate(self.sim_pivot_filtered, self.sim_verified)
    }
}

/// Shared serve-rate formula: index-served over everything touched during
/// candidate selection (0.0 when idle).  Used by [`EvalStats`] and by the
/// service-level metrics snapshot so the two reports cannot drift apart.
pub fn serve_rate(index_hits: u64, scanned_nodes: u64) -> f64 {
    let touched = index_hits + scanned_nodes;
    if touched == 0 {
        return 0.0;
    }
    index_hits as f64 / touched as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let stats = EvalStats {
            initial_candidates: 100,
            candidates_after_downward: 25,
            prune_down_time: Duration::from_millis(3),
            prune_up_time: Duration::from_millis(2),
            enumerate_time: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(stats.filtering_time(), Duration::from_millis(5));
        assert_eq!(stats.total_time(), Duration::from_millis(10));
        assert!((stats.pruning_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(EvalStats::default().pruning_ratio(), 0.0);
    }

    #[test]
    fn operator_rollups_and_estimation_error() {
        let stats = EvalStats {
            operators: vec![
                OperatorStats {
                    label: "IndexScan u0".into(),
                    estimated_rows: 10,
                    actual_rows: 10,
                    time: Duration::from_millis(1),
                },
                OperatorStats {
                    label: "PruneDown u0".into(),
                    estimated_rows: 6,
                    actual_rows: 4,
                    time: Duration::from_millis(2),
                },
            ],
            plan_time: Duration::from_millis(1),
            ..Default::default()
        };
        assert_eq!(stats.estimated_rows(), 16);
        assert_eq!(stats.actual_rows(), 14);
        // Errors: 0.0 and 0.5 → mean 0.25.
        assert!((stats.estimation_error() - 0.25).abs() < 1e-9);
        assert_eq!(stats.total_time(), Duration::from_millis(1));
        assert_eq!(EvalStats::default().estimation_error(), 0.0);
        // actual = 0 divides by 1, not by zero.
        let zero = OperatorStats {
            estimated_rows: 3,
            ..Default::default()
        };
        assert!((zero.relative_error() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn index_serve_rate_splits_hits_and_scans() {
        let stats = EvalStats {
            index_hits: 30,
            scanned_nodes: 10,
            ..Default::default()
        };
        assert!((stats.index_serve_rate() - 0.75).abs() < 1e-9);
        assert_eq!(EvalStats::default().index_serve_rate(), 0.0);
    }

    #[test]
    fn sim_filter_selectivity_splits_filtered_and_verified() {
        let stats = EvalStats {
            sim_pivot_filtered: 90,
            sim_verified: 10,
            ..Default::default()
        };
        assert!((stats.sim_filter_selectivity() - 0.9).abs() < 1e-9);
        assert_eq!(EvalStats::default().sim_filter_selectivity(), 0.0);
    }
}
