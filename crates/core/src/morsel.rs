//! Morsel-driven parallel-for over candidate slices.
//!
//! The pruning rounds, matching-graph construction and full-scan candidate
//! selection all share one shape: a pure per-item function applied to a large
//! slice of candidates.  This module splits such a slice into fixed-size
//! *morsels* and runs them on scoped worker threads with work stealing (an
//! atomic cursor over the morsel list), then reassembles the per-morsel
//! outputs in input order — so a parallel round produces bit-for-bit the same
//! result as the serial loop it replaces.
//!
//! Workers rebuild their own [`ExecCtl`] from the parent's `Send` parts
//! ([`ExecCtl::worker`]) and poll it per item, so deadlines and cancellation
//! keep their serial responsiveness.  Per-worker side counters (index
//! lookups) ride in a `Cell` and are summed after the join — order
//! independent, hence deterministic.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use crate::exec::{ExecCtl, Interrupt};
use crate::stats::EvalStats;

/// Morsels handed out per worker thread: small enough to steal, large enough
/// to amortize the cursor bump.
const MORSELS_PER_WORKER: usize = 4;

/// What one parallel round did, folded into [`EvalStats`] by
/// [`fold_round`].
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RoundStats {
    /// Worker threads the round spawned.
    pub workers: u64,
    /// Morsels processed.
    pub morsels: u64,
    /// Busy time summed over the workers.
    pub busy: Duration,
    /// Side-counter total (adjacency/index lookups) summed over the workers.
    pub lookups: u64,
}

/// Folds one round's telemetry into the evaluation stats.  Lookups are *not*
/// folded here — callers add them to whichever counter the serial code used.
pub(crate) fn fold_round(stats: &mut EvalStats, round: &RoundStats) {
    stats.parallel_workers = stats.parallel_workers.max(round.workers);
    stats.morsels_dispatched += round.morsels;
    stats.worker_busy_time += round.busy;
}

/// Splits `0..len` into contiguous morsel ranges sized for `threads`
/// workers.  Ranges are non-empty, ordered and exactly cover `0..len`.
pub(crate) fn morsel_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.max(1);
    let size = len.div_ceil(threads * MORSELS_PER_WORKER).max(1);
    (0..len)
        .step_by(size)
        .map(|start| start..(start + size).min(len))
        .collect()
}

/// Extends each morsel boundary forward while the items on both sides of it
/// belong to the same group (`same_group(i, j)` compares items at positions
/// `i` and `j`), merging away any range the extension swallowed.  Used to
/// snap prune morsels to SCC-condensation boundaries so one worker handles a
/// whole strongly connected component's worth of candidates.
pub(crate) fn snap_ranges(
    ranges: &[Range<usize>],
    same_group: impl Fn(usize, usize) -> bool,
) -> Vec<Range<usize>> {
    let Some(last) = ranges.last() else {
        return Vec::new();
    };
    let len = last.end;
    let mut out: Vec<Range<usize>> = Vec::with_capacity(ranges.len());
    let mut start = 0usize;
    for range in ranges {
        let mut end = range.end.max(start);
        while end > start && end < len && same_group(end - 1, end) {
            end += 1;
        }
        if end > start {
            out.push(start..end);
            start = end;
        }
    }
    if start < len {
        out.push(start..len);
    }
    out
}

/// Applies `f` to every item of `items` across `ctl.threads()` scoped worker
/// threads and returns the outputs in input order, plus the round's
/// telemetry.
///
/// `f` receives the item and a per-worker side counter (for lookup
/// accounting); it must be pure with respect to item order.  Workers poll a
/// rebuilt control per item and the first interrupt (by worker index) wins;
/// partial outputs are discarded on interrupt, matching the serial loops
/// which also abandon their partially filtered state.
pub(crate) fn parallel_map<T, U, F>(
    items: &[T],
    ranges: &[Range<usize>],
    ctl: &ExecCtl,
    f: F,
) -> Result<(Vec<U>, RoundStats), Interrupt>
where
    T: Sync,
    U: Send,
    F: Fn(&T, &Cell<u64>) -> U + Sync,
{
    struct WorkerOutcome<U> {
        chunks: Vec<(usize, Vec<U>)>,
        lookups: u64,
        busy: Duration,
        fail: Option<Interrupt>,
    }

    let workers = ctl.threads().min(ranges.len()).max(1);
    let parts = ctl.worker();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let parts = &parts;
    let cursor = &cursor;
    let outcomes: Vec<WorkerOutcome<U>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let start = Instant::now();
                    let wctl = parts.ctl();
                    let counter = Cell::new(0u64);
                    let mut chunks: Vec<(usize, Vec<U>)> = Vec::new();
                    let mut fail = None;
                    'steal: loop {
                        let m = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges.get(m) else {
                            break;
                        };
                        let mut out = Vec::with_capacity(range.len());
                        for item in &items[range.clone()] {
                            if let Err(e) = wctl.check_sampled() {
                                fail = Some(e);
                                break 'steal;
                            }
                            out.push(f(item, &counter));
                        }
                        chunks.push((m, out));
                    }
                    WorkerOutcome {
                        chunks,
                        lookups: counter.get(),
                        busy: start.elapsed(),
                        fail,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });

    let mut round = RoundStats {
        workers: workers as u64,
        ..RoundStats::default()
    };
    let mut fail = None;
    let mut chunks = Vec::new();
    for outcome in outcomes {
        round.busy += outcome.busy;
        round.lookups += outcome.lookups;
        round.morsels += outcome.chunks.len() as u64;
        if fail.is_none() {
            fail = outcome.fail;
        }
        chunks.extend(outcome.chunks);
    }
    if let Some(interrupt) = fail {
        return Err(interrupt);
    }
    chunks.sort_unstable_by_key(|&(m, _)| m);
    let mut out = Vec::with_capacity(items.len());
    for (_, chunk) in chunks {
        out.extend(chunk);
    }
    Ok((out, round))
}

/// Filters `items` by `keep`, fanning out over `ranges` when the control
/// allows (`ctl.threads() > 1` and more than one morsel) and falling back to
/// the serial loop otherwise.  Both paths poll per item and run the same
/// `keep` closure, so the kept sequence is identical; the returned `u64` is
/// the side-counter total (adjacency lookups) either way.
///
/// The gate is deliberately structural — any splittable input parallelizes —
/// so property tests on small graphs exercise the parallel code paths; the
/// *cost-based* decision of whether a query is worth fanning out at all
/// happens in the planner/service layer before `threads` ever exceeds 1.
pub(crate) fn parallel_retain<T, F>(
    items: Vec<T>,
    ranges: &[Range<usize>],
    ctl: &ExecCtl,
    stats: &mut EvalStats,
    keep: F,
) -> Result<(Vec<T>, u64), Interrupt>
where
    T: Copy + Send + Sync,
    F: Fn(T, &Cell<u64>) -> bool + Sync,
{
    if ctl.threads() > 1 && ranges.len() > 1 {
        let (flags, round) = parallel_map(&items, ranges, ctl, |&v, counter| keep(v, counter))?;
        fold_round(stats, &round);
        let kept = items
            .iter()
            .zip(&flags)
            .filter(|&(_, &flag)| flag)
            .map(|(&v, _)| v)
            .collect();
        Ok((kept, round.lookups))
    } else {
        let counter = Cell::new(0u64);
        let mut kept = Vec::with_capacity(items.len());
        for &v in &items {
            ctl.check_sampled()?;
            if keep(v, &counter) {
                kept.push(v);
            }
        }
        Ok((kept, counter.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::CancelToken;

    fn flatten(ranges: &[Range<usize>]) -> Vec<usize> {
        ranges.iter().flat_map(|r| r.clone()).collect()
    }

    #[test]
    fn ranges_cover_the_domain_exactly() {
        for len in [0usize, 1, 2, 3, 7, 64, 1000, 1001] {
            for threads in [1usize, 2, 4, 8] {
                let ranges = morsel_ranges(len, threads);
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert_eq!(flatten(&ranges), (0..len).collect::<Vec<_>>());
            }
        }
        assert!(morsel_ranges(0, 4).is_empty());
        // Large inputs produce more morsels than workers, so stealing has
        // something to steal.
        assert!(morsel_ranges(1000, 4).len() > 4);
    }

    #[test]
    fn snapping_never_splits_a_group() {
        // Groups by value: boundaries may only sit where the value changes.
        let groups = [0, 0, 0, 1, 1, 1, 1, 2, 3, 3, 3, 3, 3, 4];
        for threads in [2usize, 3, 5] {
            let ranges = morsel_ranges(groups.len(), threads);
            let snapped = snap_ranges(&ranges, |a, b| groups[a] == groups[b]);
            assert_eq!(flatten(&snapped), (0..groups.len()).collect::<Vec<_>>());
            for r in &snapped {
                if r.end < groups.len() {
                    assert_ne!(groups[r.end - 1], groups[r.end], "split at {r:?}");
                }
            }
        }
        // One giant group collapses to a single range.
        let ranges = morsel_ranges(16, 4);
        let snapped = snap_ranges(&ranges, |_, _| true);
        assert_eq!(snapped, vec![0..16]);
        assert!(snap_ranges(&[], |_, _| true).is_empty());
    }

    #[test]
    fn parallel_map_matches_serial_order_and_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let ctl = ExecCtl::unbounded().with_threads(4);
        let ranges = morsel_ranges(items.len(), ctl.threads());
        let (out, round) = parallel_map(&items, &ranges, &ctl, |&x, lookups| {
            lookups.set(lookups.get() + 2);
            x * 3 + 1
        })
        .unwrap();
        assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        assert_eq!(round.lookups, 2000);
        assert_eq!(round.morsels as usize, ranges.len());
        assert_eq!(round.workers, 4);
        assert!(round.busy > Duration::ZERO);
        let mut stats = EvalStats::default();
        fold_round(&mut stats, &round);
        assert_eq!(stats.parallel_workers, 4);
        assert_eq!(stats.morsels_dispatched, round.morsels);
    }

    #[test]
    fn parallel_map_propagates_interrupts() {
        let items: Vec<u64> = (0..100).collect();
        let token = CancelToken::new();
        token.cancel();
        let ctl = ExecCtl::unbounded().with_cancel(token).with_threads(4);
        let ranges = morsel_ranges(items.len(), ctl.threads());
        let err = parallel_map(&items, &ranges, &ctl, |&x, _| x).unwrap_err();
        assert_eq!(err, Interrupt::Cancelled);

        let ctl = ExecCtl::unbounded()
            .with_timeout(Duration::ZERO)
            .with_threads(2);
        let err = parallel_map(&items, &ranges, &ctl, |&x, _| x).unwrap_err();
        assert_eq!(err, Interrupt::Timeout);
    }

    #[test]
    fn retain_parallel_equals_retain_serial() {
        let items: Vec<u64> = (0..500).collect();
        let keep = |x: u64, counter: &Cell<u64>| {
            counter.set(counter.get() + 1);
            x.is_multiple_of(3)
        };
        let serial_ctl = ExecCtl::unbounded();
        let ranges = morsel_ranges(items.len(), 8);
        let mut stats = EvalStats::default();
        let (serial, serial_lookups) =
            parallel_retain(items.clone(), &ranges, &serial_ctl, &mut stats, keep).unwrap();
        assert_eq!(stats.parallel_workers, 0, "serial path records no workers");
        let parallel_ctl = ExecCtl::unbounded().with_threads(8);
        let (parallel, parallel_lookups) =
            parallel_retain(items, &ranges, &parallel_ctl, &mut stats, keep).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_lookups, parallel_lookups);
        assert!(stats.parallel_workers > 1);
    }
}
