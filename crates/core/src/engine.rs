//! The GTEA evaluation engine.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use gtpq_graph::DataGraph;
use gtpq_query::{Gtpq, ResultSet};
use gtpq_reach::{Reachability, ThreeHop};

use crate::exec::{ExecCtl, Interrupt};
use crate::matching::MatchingGraph;
use crate::options::GteaOptions;
use crate::parallel::enumerate_parallel;
use crate::plan::{execute_candidates, Planner, QueryPlan};
use crate::prime::{PrimeSubtree, ShrunkPrime};
use crate::prune::{prune_downward, prune_upward};
use crate::stats::{EvalStats, OperatorStats};
use crate::stream::{MatchStream, StreamSource};

/// Row-window and control parameters of one [`GteaEngine::execute`] call.
///
/// The default is the legacy behaviour: no limit, no offset, unbounded
/// control, serial execution.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Stop after this many rows have been *emitted* (post-offset).  `None`
    /// materializes the full answer.
    pub limit: Option<usize>,
    /// Skip this many leading rows of the answer (they are still enumerated,
    /// and counted by [`EvalStats::enumerated_rows`]).
    pub offset: usize,
    /// Deadline / cancellation control polled by every pipeline stage.
    pub ctl: ExecCtl,
    /// Intra-query parallelism degree: pipeline stages split their work into
    /// morsels across up to this many worker threads, and enumeration runs
    /// one partitioned stream per worker behind an ordered merge.  `1` (the
    /// default) is fully serial.  The engine applies it structurally
    /// whenever the input is splittable — cost-based gating (is this query
    /// worth fanning out?) belongs to the caller, see
    /// [`QueryPlan::recommended_threads`].
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            limit: None,
            offset: 0,
            ctl: ExecCtl::default(),
            threads: 1,
        }
    }
}

impl ExecOptions {
    /// No limit, no offset, never interrupted.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Sets the row limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the row offset.
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Sets the execution control.
    pub fn with_ctl(mut self, ctl: ExecCtl) -> Self {
        self.ctl = ctl;
        self
    }

    /// Sets the intra-query parallelism degree (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// An evaluation that was interrupted before completing, together with the
/// statistics of the work it *did* perform.
///
/// Stage timings accumulate up to the abort point (the aborted stage's
/// elapsed time included), so a service can account for the cost of
/// timed-out and cancelled requests instead of losing it.
#[derive(Clone, Debug)]
pub struct Aborted {
    /// Why the evaluation stopped.
    pub interrupt: Interrupt,
    /// Statistics accumulated before the interrupt (boxed to keep the
    /// `Err` variant small).
    pub stats: Box<EvalStats>,
}

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.interrupt.fmt(f)
    }
}

impl std::error::Error for Aborted {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.interrupt)
    }
}

/// The outcome of one [`GteaEngine::execute`] call.
#[derive(Clone, Debug)]
pub struct Execution {
    /// The emitted rows: the requested `offset..offset + limit` window of
    /// the full answer, in its materialized order.
    pub results: ResultSet,
    /// Statistics of the run (planning time excluded; the caller owns it).
    pub stats: EvalStats,
    /// Whether the row limit cut enumeration short — `true` exactly when at
    /// least one more row exists beyond the emitted window.
    pub truncated: bool,
}

/// Evaluates GTPQs over one data graph.
///
/// The engine is generic over its [`Reachability`] backend `R`; the default
/// is the paper's 3-hop index, built once per graph when the engine is
/// created.  Evaluation time reported by the benchmarks therefore excludes
/// index construction, matching the paper's methodology.  Use
/// [`with_backend`](Self::with_backend) to plug in another index (or a shared
/// `Arc<dyn Reachability + Send + Sync>` — the query service does exactly
/// that to reuse one index across concurrent queries).
pub struct GteaEngine<'g, R: Reachability = ThreeHop> {
    graph: &'g DataGraph,
    index: R,
    options: GteaOptions,
}

impl<'g> GteaEngine<'g, ThreeHop> {
    /// Builds the engine (and its 3-hop reachability index) for `graph`.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self::with_options(graph, GteaOptions::default())
    }

    /// Builds the engine with explicit options (used by the ablation benches).
    pub fn with_options(graph: &'g DataGraph, options: GteaOptions) -> Self {
        Self::with_backend(graph, ThreeHop::new(graph), options)
    }
}

impl<'g, R: Reachability> GteaEngine<'g, R> {
    /// Builds the engine around an existing reachability backend.
    ///
    /// `index` must have been built for (the condensation of) `graph`;
    /// answers are undefined otherwise.
    pub fn with_backend(graph: &'g DataGraph, index: R, options: GteaOptions) -> Self {
        Self {
            graph,
            index,
            options,
        }
    }

    /// The data graph the engine evaluates against.
    pub fn graph(&self) -> &DataGraph {
        self.graph
    }

    /// The underlying reachability index.
    pub fn index(&self) -> &R {
        &self.index
    }

    /// The evaluation options.
    pub fn options(&self) -> &GteaOptions {
        &self.options
    }

    /// Builds the cost-based plan the engine would execute for `q` (the
    /// planner orders prune work by estimated candidate-set size; it
    /// recommends no backend switch because the engine's backend is fixed —
    /// the query service plans with a graph profile to get one).
    pub fn plan(&self, q: &Gtpq) -> QueryPlan {
        Planner::new(self.graph).plan(q)
    }

    /// Evaluates `q`, returning only the answer.
    pub fn evaluate(&self, q: &Gtpq) -> ResultSet {
        self.evaluate_with_stats(q).0
    }

    /// Evaluates `q`: builds the default cost-based plan, then executes it.
    /// The returned statistics include planning time and per-operator
    /// estimated-vs-actual cardinalities.
    pub fn evaluate_with_stats(&self, q: &Gtpq) -> (ResultSet, EvalStats) {
        let plan_start = Instant::now();
        let plan = self.plan(q);
        let plan_time = plan_start.elapsed();
        let (results, mut stats) = self.evaluate_planned(q, &plan);
        stats.plan_time = plan_time;
        (results, stats)
    }

    /// Executes an explicit physical plan for `q`.
    ///
    /// The answer is identical to [`evaluate`](Self::evaluate) for *any*
    /// plan: candidate steps missing from the plan default to index scans
    /// and the downward-prune order is repaired to a valid children-first
    /// order.  Only performance (and the recorded estimates) can
    /// differ.  The plan's backend recommendation is ignored here — the
    /// engine probes whatever index it was built with; the query service
    /// resolves recommendations against its shared-index catalog.
    pub fn evaluate_planned(&self, q: &Gtpq, plan: &QueryPlan) -> (ResultSet, EvalStats) {
        let exec = self
            .execute(q, plan, ExecOptions::unbounded())
            .expect("unbounded execution cannot be interrupted");
        (exec.results, exec.stats)
    }

    /// Executes `plan` with a row window and an execution control: the
    /// request-level entry point behind `QueryService::submit`.
    ///
    /// `limit`/`offset` push down into result enumeration — the underlying
    /// [`MatchStream`] stops after `offset + limit` distinct rows (plus one
    /// look-ahead row to decide [`Execution::truncated`]) instead of
    /// materializing the full answer — and the deadline/cancellation control
    /// is polled by candidate selection, both prune rounds, matching-graph
    /// construction and enumeration.
    ///
    /// An interrupted run returns [`Aborted`] carrying the statistics of the
    /// work completed before the interrupt (partial stage timings included).
    pub fn execute(
        &self,
        q: &Gtpq,
        plan: &QueryPlan,
        options: ExecOptions,
    ) -> Result<Execution, Aborted> {
        let ExecOptions {
            limit,
            offset,
            ctl,
            threads,
        } = options;
        let ctl = ctl.with_threads(threads);
        let tracer = ctl.tracer().clone();
        let mut stats = EvalStats::default();
        let source = match self.match_stream_inner(q, plan, &ctl, &mut stats) {
            Ok(source) => source,
            Err(interrupt) => {
                return Err(Aborted {
                    interrupt,
                    stats: Box::new(stats),
                })
            }
        };
        let span = tracer.span("enumerate");
        let mut results = ResultSet::new(q.output_nodes().to_vec());
        let mut truncated = false;
        let mut interrupted = None;
        // The Collect operator reports what the enumerator was asked to do:
        // under a limit it produces at most the window (plus the look-ahead
        // row), so the full-answer estimate is capped accordingly — a
        // perfectly estimated plan must not read as an estimation error just
        // because the request stopped early.
        let window_cap = limit.map(|l| (offset.saturating_add(l).saturating_add(1)) as u64);
        let collect_estimated = window_cap.map_or(plan.collect_estimated_rows, |cap| {
            plan.collect_estimated_rows.min(cap)
        });
        let parts = source
            .as_ref()
            .map_or(0, |s| ctl.threads().min(s.partition_width()));
        if parts > 1 {
            // Partitioned enumeration behind an order-preserving merge: one
            // `MatchStream` per partition of the widest component's root
            // candidates, k-way merged with the same adjacent-dedup rule the
            // serial stream applies internally — bit-for-bit serial order.
            let source = source.as_ref().expect("parts > 1 implies a source");
            let (interrupt, collect) = enumerate_parallel(source, parts, limit, offset, &ctl);
            interrupted = interrupt;
            span.field("rows", collect.merged_rows);
            span.field("partitions", collect.workers);
            for row in collect.rows {
                results.insert(row);
            }
            truncated = collect.truncated;
            stats.enumerated_rows += collect.merged_rows;
            stats.enumerate_time += collect.enumerate_time;
            stats.time_to_first_row = collect.time_to_first_row;
            stats.worker_rows += collect.worker_rows;
            stats.worker_busy_time += collect.busy;
            stats.parallel_workers = stats.parallel_workers.max(collect.workers);
            stats.morsels_dispatched += collect.workers;
            stats.max_queue_depth = stats.max_queue_depth.max(collect.max_queue_depth);
            stats.operators.push(OperatorStats {
                label: "Collect".to_owned(),
                estimated_rows: collect_estimated,
                actual_rows: collect.merged_rows,
                time: collect.enumerate_time,
            });
        } else {
            let mut stream = match source {
                Some(source) => MatchStream::from_source(source, ctl.clone()),
                None => MatchStream::empty(q, ctl.clone()),
            };
            let mut skipped = 0usize;
            loop {
                match stream.next_row() {
                    Err(e) => {
                        interrupted = Some(e);
                        break;
                    }
                    Ok(None) => break,
                    Ok(Some(row)) => {
                        if skipped < offset {
                            skipped += 1;
                            continue;
                        }
                        if limit.is_some_and(|l| results.len() >= l) {
                            // The look-ahead row proves more rows exist past
                            // the window.
                            truncated = true;
                            break;
                        }
                        results.insert(row);
                    }
                }
            }
            span.field("rows", stream.rows_enumerated());
            stats.enumerated_rows += stream.rows_enumerated();
            stats.enumerate_time += stream.enumerate_time();
            stats.time_to_first_row = stream.time_to_first_row();
            stats.operators.push(OperatorStats {
                label: "Collect".to_owned(),
                estimated_rows: collect_estimated,
                actual_rows: stream.rows_enumerated(),
                time: stream.enumerate_time(),
            });
        }
        drop(span);
        stats.result_tuples = results.len() as u64;
        if let Some(interrupt) = interrupted {
            return Err(Aborted {
                interrupt,
                stats: Box::new(stats),
            });
        }
        Ok(Execution {
            results,
            stats,
            truncated,
        })
    }

    /// Runs the pipeline up to (and including) the maximal matching graph
    /// and returns a pull-based [`MatchStream`] over the answer, plus the
    /// statistics of the completed stages.
    ///
    /// Rows are produced on demand in materialized-`ResultSet` order; the
    /// first [`MatchStream::next_row`] call does only the work the first row
    /// needs, which is what the time-to-first-row benchmark measures.
    ///
    /// An interrupted run returns [`Aborted`] carrying the statistics of the
    /// stages completed (and partially completed) before the interrupt.
    pub fn match_stream(
        &self,
        q: &Gtpq,
        plan: &QueryPlan,
        ctl: ExecCtl,
    ) -> Result<(MatchStream, EvalStats), Aborted> {
        let mut stats = EvalStats::default();
        match self.match_stream_inner(q, plan, &ctl, &mut stats) {
            Ok(Some(source)) => Ok((MatchStream::from_source(source, ctl), stats)),
            Ok(None) => Ok((MatchStream::empty(q, ctl), stats)),
            Err(interrupt) => Err(Aborted {
                interrupt,
                stats: Box::new(stats),
            }),
        }
    }

    /// The pipeline body of [`match_stream`](Self::match_stream): statistics
    /// accumulate into the caller-owned `stats` so an interrupt loses none of
    /// the partial figures.  Returns the prepared enumeration source, or
    /// `None` when pruning proved the answer empty.
    fn match_stream_inner(
        &self,
        q: &Gtpq,
        plan: &QueryPlan,
        ctl: &ExecCtl,
        stats: &mut EvalStats,
    ) -> Result<Option<Arc<StreamSource>>, Interrupt> {
        let g = self.graph;

        // Step 1: candidate selection along the plan's access paths.
        let span = ctl.tracer().span("candidates");
        let mut mat = execute_candidates(q, g, plan, stats, ctl)?;
        span.field("initial_candidates", stats.initial_candidates);
        drop(span);

        // A backbone node with no candidates at all cannot gain any during
        // pruning: the answer is empty before any reachability work starts.
        if q.node_ids()
            .filter(|&u| q.is_backbone(u))
            .any(|u| mat[u.index()].is_empty())
        {
            return Ok(None);
        }

        // Step 2a: downward structural constraints, in plan order.
        let span = ctl.tracer().span("prune_down");
        let steps = plan.normalized_prune_down(q);
        prune_downward(
            q,
            g,
            &self.index,
            &self.options,
            &steps,
            &mut mat,
            stats,
            ctl,
        )?;
        span.field("survivors", stats.candidates_after_downward);
        drop(span);

        // Early exit: every backbone node needs at least one candidate.
        if q.node_ids()
            .filter(|&u| q.is_backbone(u))
            .any(|u| mat[u.index()].is_empty())
        {
            return Ok(None);
        }

        // Step 2b: upward structural constraints on the prime subtree.
        let prime = PrimeSubtree::new(q);
        stats.prime_subtree_size = prime.len() as u64;
        if self.options.upward_pruning {
            let span = ctl.tracer().span("prune_up");
            prune_upward(
                q,
                g,
                &self.index,
                &self.options,
                &prime,
                plan.upward_estimated_rows,
                &mut mat,
                stats,
                ctl,
            )?;
            span.field("est_rows", plan.upward_estimated_rows);
            span.field("survivors", stats.candidates_after_upward);
            drop(span);
            if prime.nodes.iter().any(|&u| mat[u.index()].is_empty()) {
                return Ok(None);
            }
        }

        // Step 3: shrunk prime subtree and its maximal matching graph.
        let span = ctl.tracer().span("matching");
        let shrunk = ShrunkPrime::new(q, &prime, &mat, self.options.shrink_prime_subtree);
        stats.shrunk_subtree_size = shrunk.len() as u64;
        let matching_start = Instant::now();
        let matching = MatchingGraph::build(q, g, &self.index, &shrunk, &mat, stats, ctl)?;
        span.field("est_rows", plan.matching_estimated_rows);
        span.field("nodes", matching.node_count);
        span.field("edges", matching.edge_count);
        drop(span);
        stats.operators.push(OperatorStats {
            label: "MatchingGraph".to_owned(),
            estimated_rows: plan.matching_estimated_rows,
            actual_rows: (matching.node_count + matching.edge_count) as u64,
            time: matching_start.elapsed(),
        });

        // Step 4 is pulled by the caller: the source enumerates the answer.
        Ok(Some(Arc::new(StreamSource::new(q, shrunk, matching, mat))))
    }
}

#[cfg(test)]
mod tests {
    use gtpq_graph::{GraphBuilder, NodeId};
    use gtpq_logic::BoolExpr;
    use gtpq_query::fixtures::{example_answer_pairs, example_graph, example_query};
    use gtpq_query::{naive, AttrPredicate, EdgeKind, GtpqBuilder};

    use super::*;

    #[test]
    fn engine_reproduces_the_running_example() {
        let g = example_graph();
        let q = example_query();
        let engine = GteaEngine::new(&g);
        let (results, stats) = engine.evaluate_with_stats(&q);
        let expected = example_answer_pairs();
        assert_eq!(results.len(), expected.len());
        for (a, b) in expected {
            assert!(results.contains(&[NodeId(a - 1), NodeId(b - 1)]));
        }
        assert!(stats.total_time() > std::time::Duration::ZERO);
        assert!(stats.prime_subtree_size >= stats.shrunk_subtree_size);
        assert_eq!(stats.result_tuples, results.len() as u64);
    }

    #[test]
    fn engine_agrees_with_naive_on_the_example_for_all_option_combinations() {
        let g = example_graph();
        let q = example_query();
        let expected = naive::evaluate(&q, &g);
        for options in [
            GteaOptions::default(),
            GteaOptions::without_upward_pruning(),
            GteaOptions::without_contours(),
            GteaOptions::without_shrinking(),
        ] {
            let engine = GteaEngine::with_options(&g, options);
            let got = engine.evaluate(&q);
            assert!(got.same_answer(&expected), "options {options:?}");
        }
    }

    #[test]
    fn empty_answer_when_a_backbone_node_has_no_candidates() {
        let g = example_graph();
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = b.root_id();
        let child = b.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("zzz"));
        b.mark_output(child);
        let q = b.build().unwrap();
        let engine = GteaEngine::new(&g);
        assert!(engine.evaluate(&q).is_empty());
    }

    #[test]
    fn pc_edges_are_enforced_exactly() {
        // a -> b, a -> c -> b2: `a / b` must only match the direct child.
        let mut gb = GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        let b2 = gb.add_node_with_label("b");
        gb.add_edge(a, b1);
        gb.add_edge(a, c);
        gb.add_edge(c, b2);
        let g = gb.build();
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Child, AttrPredicate::label("b"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let engine = GteaEngine::new(&g);
        let results = engine.evaluate(&q);
        let expected = naive::evaluate(&q, &g);
        assert!(results.same_answer(&expected));
        assert_eq!(results.len(), 1);
        assert!(results.contains(&[a, b1]));
    }

    #[test]
    fn negated_pc_child_is_handled_exactly() {
        // Query: a with NO b child (PC edge under negation). a1 has a b child,
        // a2 only has a b descendant (through c), a3 has nothing.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node_with_label("a");
        let a2 = gb.add_node_with_label("a");
        let a3 = gb.add_node_with_label("a");
        let b1 = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        let b2 = gb.add_node_with_label("b");
        gb.add_edge(a1, b1);
        gb.add_edge(a2, c);
        gb.add_edge(c, b2);
        let _ = a3;
        let g = gb.build();
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a"));
        let root = qb.root_id();
        let p = qb.predicate_child(root, EdgeKind::Child, AttrPredicate::label("b"));
        qb.set_structural(root, BoolExpr::not(BoolExpr::Var(p.var())));
        qb.mark_output(root);
        let q = qb.build().unwrap();
        let engine = GteaEngine::new(&g);
        let results = engine.evaluate(&q);
        let expected = naive::evaluate(&q, &g);
        assert!(results.same_answer(&expected));
        assert_eq!(results.len(), 2);
        assert!(results.contains(&[a2]));
        assert!(results.contains(&[a3]));
    }

    #[test]
    fn union_conjunctive_and_negation_queries_agree_with_naive() {
        let g = example_graph();
        let engine = GteaEngine::new(&g);
        // Disjunction: a1 root with (c-child-with-e2) OR (b-descendant).
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = qb.root_id();
        let pc = qb.predicate_child(
            root,
            EdgeKind::Descendant,
            gtpq_query::fixtures::label_prefix("c"),
        );
        let pb = qb.predicate_child(
            root,
            EdgeKind::Descendant,
            gtpq_query::fixtures::label_prefix("b"),
        );
        qb.set_structural(
            root,
            BoolExpr::or2(BoolExpr::Var(pc.var()), BoolExpr::Var(pb.var())),
        );
        qb.mark_output(root);
        let q = qb.build().unwrap();
        assert!(engine.evaluate(&q).same_answer(&naive::evaluate(&q, &g)));

        // Negation: a1 nodes with no g1 descendant.
        let mut qb = GtpqBuilder::new(AttrPredicate::label("a1"));
        let root = qb.root_id();
        let pg = qb.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("g1"));
        qb.set_structural(root, BoolExpr::not(BoolExpr::Var(pg.var())));
        qb.mark_output(root);
        let q = qb.build().unwrap();
        let results = engine.evaluate(&q);
        assert!(results.same_answer(&naive::evaluate(&q, &g)));
    }

    #[test]
    fn engine_agrees_with_naive_for_every_reachability_backend() {
        let g = example_graph();
        let queries = [example_query(), {
            let mut qb = GtpqBuilder::new(AttrPredicate::label("a1"));
            let root = qb.root_id();
            let pg = qb.predicate_child(root, EdgeKind::Descendant, AttrPredicate::label("g1"));
            qb.set_structural(root, BoolExpr::not(BoolExpr::Var(pg.var())));
            qb.mark_output(root);
            qb.build().unwrap()
        }];
        for q in &queries {
            let expected = naive::evaluate(q, &g);
            for kind in ["closure", "3hop", "chain", "contour", "sspi"] {
                let index = gtpq_reach::build_index(kind, &g);
                let engine = GteaEngine::with_backend(&g, index, GteaOptions::default());
                let got = engine.evaluate(q);
                assert!(
                    got.same_answer(&expected),
                    "backend {kind} disagrees with naive"
                );
            }
        }
    }

    #[test]
    fn planned_evaluation_matches_default_for_perturbed_plans() {
        let g = example_graph();
        let q = example_query();
        let engine = GteaEngine::new(&g);
        let expected = engine.evaluate(&q);

        // The default plan round-trips.
        let plan = engine.plan(&q);
        assert!(engine.evaluate_planned(&q, &plan).0.same_answer(&expected));

        // Shuffled prune order is repaired by the executor.
        let mut shuffled = plan.clone();
        shuffled.prune_down.reverse();
        assert!(engine
            .evaluate_planned(&q, &shuffled)
            .0
            .same_answer(&expected));

        // Forced full scans select identical candidates.
        let mut scans = plan.clone();
        for step in &mut scans.candidates {
            step.access = crate::plan::AccessPath::FullScan;
        }
        let (results, stats) = engine.evaluate_planned(&q, &scans);
        assert!(results.same_answer(&expected));
        assert!(stats.scanned_nodes >= (q.size() * g.node_count()) as u64);

        // The fixed seed pipeline agrees too.
        let fixed = QueryPlan::fixed_pipeline(&q);
        assert!(engine.evaluate_planned(&q, &fixed).0.same_answer(&expected));
    }

    #[test]
    fn stats_record_planning_and_operators() {
        let g = example_graph();
        let q = example_query();
        let engine = GteaEngine::new(&g);
        let (_, stats) = engine.evaluate_with_stats(&q);
        // One operator per candidate step, per internal-node prune step,
        // plus PruneUp, MatchingGraph and Collect.
        let internal = q.node_ids().filter(|&u| !q.node(u).is_leaf()).count();
        assert_eq!(stats.operators.len(), q.size() + internal + 3);
        assert!(stats
            .operators
            .iter()
            .any(|o| o.label.starts_with("IndexScan")));
        assert!(stats.operators.iter().any(|o| o.label == "Collect"));
        // Candidate estimates are upper bounds, so never below the actuals.
        for o in stats.operators.iter().filter(|o| o.label.contains("Scan")) {
            assert!(o.estimated_rows >= o.actual_rows, "{}", o.label);
        }
        // evaluate_planned alone reports no plan time; evaluate does.
        let (_, planned_stats) = engine.evaluate_planned(&q, &engine.plan(&q));
        assert_eq!(planned_stats.plan_time, std::time::Duration::ZERO);
    }

    #[test]
    fn zero_budget_aborts_with_stats() {
        let g = example_graph();
        let q = example_query();
        let engine = GteaEngine::new(&g);
        let plan = engine.plan(&q);
        let ctl = ExecCtl::unbounded().with_timeout(std::time::Duration::ZERO);
        let err = engine
            .execute(&q, &plan, ExecOptions::unbounded().with_ctl(ctl))
            .unwrap_err();
        assert_eq!(err.interrupt, Interrupt::Timeout);
        assert!(err.to_string().contains("deadline"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn mid_pipeline_abort_keeps_partial_stats() {
        // A backend that cancels the request on its first reachability probe:
        // candidate selection completes untouched, the downward prune round
        // aborts mid-way — deterministically, without timing games.
        struct CancelOnProbe {
            inner: ThreeHop,
            token: crate::exec::CancelToken,
        }
        impl Reachability for CancelOnProbe {
            fn reaches(&self, u: NodeId, v: NodeId) -> bool {
                self.token.cancel();
                self.inner.reaches(u, v)
            }
            fn index_entries(&self) -> usize {
                self.inner.index_entries()
            }
            fn name(&self) -> &'static str {
                "cancel-on-probe"
            }
        }
        let g = example_graph();
        let q = example_query();
        let token = crate::exec::CancelToken::new();
        let index = CancelOnProbe {
            inner: ThreeHop::new(&g),
            token: token.clone(),
        };
        let engine = GteaEngine::with_backend(&g, index, GteaOptions::default());
        let plan = engine.plan(&q);
        let ctl = ExecCtl::unbounded().with_cancel(token);
        let err = engine
            .execute(&q, &plan, ExecOptions::unbounded().with_ctl(ctl))
            .unwrap_err();
        assert_eq!(err.interrupt, Interrupt::Cancelled);
        // The completed candidate stage kept its figures...
        assert!(err.stats.initial_candidates > 0);
        assert!(err.stats.operators.iter().any(|o| o.label.contains("Scan")));
        // ...and the aborted prune round still recorded its elapsed time.
        assert!(err.stats.prune_down_time > std::time::Duration::ZERO);
        assert!(err.stats.total_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn traced_execution_records_nested_stage_spans() {
        let g = example_graph();
        let q = example_query();
        let engine = GteaEngine::new(&g);
        let plan = engine.plan(&q);
        let tracer = crate::Tracer::enabled();
        let root = tracer.span("request");
        let ctl = ExecCtl::unbounded().with_tracer(tracer.clone());
        let exec = engine
            .execute(&q, &plan, ExecOptions::unbounded().with_ctl(ctl))
            .unwrap();
        drop(root);
        let trace = tracer.finish().unwrap();
        // Every pipeline stage recorded a span under the request root.
        for stage in [
            "candidates",
            "prune_down",
            "prune_up",
            "matching",
            "enumerate",
        ] {
            let span = trace
                .span(stage)
                .unwrap_or_else(|| panic!("missing {stage}"));
            assert_eq!(span.parent, Some(0), "{stage} nests under the root");
        }
        // Operator spans carry estimate/actual fields.
        let op = trace
            .spans
            .iter()
            .find(|s| s.name.starts_with("IndexScan"))
            .expect("per-operator span");
        assert!(op.fields.iter().any(|(k, _)| *k == "est_rows"));
        assert!(op.fields.iter().any(|(k, _)| *k == "actual_rows"));
        // Per-pull spans nest under `enumerate`.
        let enumerate_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "enumerate")
            .unwrap();
        let pulls = trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("pull "))
            .count();
        assert!(pulls > 0, "per-pull spans recorded");
        assert!(trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("pull "))
            .all(|s| s.parent == Some(enumerate_idx)));
        // The stage spans tile the root: they sum to no more than its
        // duration, and each nests inside it.
        let root_span = trace.root().unwrap();
        let stage_sum: std::time::Duration = trace.children_of(0).map(|s| s.dur).sum();
        assert!(stage_sum <= root_span.dur);
        // An untraced run is unaffected.
        let plain = engine.execute(&q, &plan, ExecOptions::unbounded()).unwrap();
        assert_eq!(plain.results.len(), exec.results.len());
    }

    #[test]
    fn cyclic_graph_is_supported() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node_with_label("a");
        let b = gb.add_node_with_label("b");
        let c = gb.add_node_with_label("c");
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        gb.add_edge(c, a);
        let g = gb.build();
        let mut qb = GtpqBuilder::new(AttrPredicate::label("b"));
        let root = qb.root_id();
        let child = qb.backbone_child(root, EdgeKind::Descendant, AttrPredicate::label("a"));
        qb.mark_output(root);
        qb.mark_output(child);
        let q = qb.build().unwrap();
        let engine = GteaEngine::new(&g);
        let results = engine.evaluate(&q);
        assert!(results.same_answer(&naive::evaluate(&q, &g)));
        assert_eq!(results.len(), 1);
    }
}
