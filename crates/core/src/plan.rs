//! Cost-based query planning: an explicit physical-operator plan IR plus the
//! planner that builds one from data-graph statistics.
//!
//! The seed engine ran one hard-wired pipeline (candidates → prune down →
//! prune up → match → collect) with the candidate and prune work ordered by
//! query-node id.  This module makes the pipeline an explicit, inspectable
//! value — a [`QueryPlan`] — chosen per query by a [`Planner`]:
//!
//! * **Candidate selection** becomes one operator per query node: an
//!   [`AccessPath::IndexScan`] (posting-list intersection through the
//!   attribute inverted index), an [`AccessPath::PivotScan`] (pivot-filtered
//!   similarity selection for predicates with `sim(...)` conjuncts), or an
//!   [`AccessPath::FullScan`] (predicate test per node).  The planner
//!   estimates each node's candidate count from posting lengths and
//!   pivot-table statistics ([`Gtpq::estimate_candidates`]) and falls back
//!   to a full scan only when the index cannot restrict the node set
//!   meaningfully.
//! * **Downward pruning** is ordered by estimated candidate-set size instead
//!   of query-node id: among the internal nodes whose (internal) children
//!   have already been processed, the cheapest is pruned first, so small
//!   candidate sets shrink their parents before the expensive nodes run.
//!   Any requested order is repaired to a valid children-first order by
//!   [`QueryPlan::normalized_prune_down`], which makes arbitrary plan
//!   perturbations safe to execute.
//! * **The reachability backend** is recommended per query: the planner
//!   estimates the number of set-probe calls the prune rounds will issue and
//!   weights each backend's [`cost hints`](BackendKind::cost_hints) by it
//!   (pre-built indexes have their construction cost treated as sunk).  The
//!   engine itself executes on whatever backend it holds; the query service
//!   resolves the recommendation against its shared-index catalog.
//!
//! The executor records estimated-vs-actual cardinalities and per-operator
//! wall times into [`EvalStats::operators`](crate::EvalStats), which both
//! `:explain analyze` and the plan-quality benchmarks read back.

use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{CandidateSelection, EdgeKind, Gtpq, QueryNodeId};
use gtpq_reach::{select_backend_for_query, BackendKind, GraphProfile};

use crate::exec::{ExecCtl, Interrupt};
use crate::morsel;
use crate::prime::PrimeSubtree;
use crate::stats::{EvalStats, OperatorStats};

/// Folds one indexed candidate selection into the evaluation counters —
/// shared by [`execute_candidates`] and
/// [`prune::initial_candidates`](crate::prune::initial_candidates) so the
/// two paths cannot drift in how they account index hits vs scanned nodes.
pub(crate) fn record_selection(selection: &CandidateSelection, stats: &mut EvalStats) {
    stats.initial_candidates += selection.nodes.len() as u64;
    stats.input_nodes += selection.verified;
    stats.scanned_nodes += selection.verified;
    stats.index_lookups += selection.posting_entries;
    stats.sim_pivot_filtered += selection.sim_pivot_filtered;
    stats.sim_verified += selection.sim_verified;
    if selection.from_index {
        stats.index_hits += selection.nodes.len() as u64;
    }
}

/// How one query node's initial candidates are selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Posting-list intersection through the attribute inverted index
    /// (per-node verification only for non-indexable comparisons).
    IndexScan,
    /// Pivot-filtered similarity selection: the predicate carries `sim(...)`
    /// conjuncts served by the graph's [`gtpq_graph::SimTable`]s — triangle-
    /// inequality pruning over precomputed pivot distances, exact
    /// verification only for survivors, intersected with any posting-backed
    /// scalar comparisons.
    PivotScan,
    /// Predicate test against every data node.
    FullScan,
}

impl AccessPath {
    /// The operator name used in plan rendering and operator stats.
    pub fn name(self) -> &'static str {
        match self {
            AccessPath::IndexScan => "IndexScan",
            AccessPath::PivotScan => "PivotScan",
            AccessPath::FullScan => "FullScan",
        }
    }
}

/// One candidate-selection operator.
#[derive(Clone, Debug)]
pub struct CandidateStep {
    /// The query node whose candidates this step selects.
    pub node: QueryNodeId,
    /// The chosen access path.
    pub access: AccessPath,
    /// Estimated number of candidates produced.
    pub estimated_rows: u64,
}

/// One downward-prune operator (an internal query node).
#[derive(Clone, Copy, Debug)]
pub struct PruneStep {
    /// The internal query node whose candidate set this step prunes.
    pub node: QueryNodeId,
    /// Estimated number of candidates surviving the step.
    pub estimated_rows: u64,
}

impl PruneStep {
    /// The seed's prune order: every internal node, bottom-up by query-node
    /// id, with no estimates.  The planner-less baseline order.
    pub fn bottom_up(q: &Gtpq) -> Vec<PruneStep> {
        q.bottom_up_order()
            .into_iter()
            .filter(|&u| !q.node(u).is_leaf())
            .map(|node| PruneStep {
                node,
                estimated_rows: 0,
            })
            .collect()
    }
}

/// The planner's reachability-backend recommendation.
#[derive(Clone, Copy, Debug)]
pub struct PlannedBackend {
    /// Recommended backend; `None` means "use whatever the engine holds"
    /// (the planner had no graph profile to weigh backends with).
    pub kind: Option<BackendKind>,
    /// One-line justification, for `:explain` and logs.
    pub reason: &'static str,
}

/// An explicit physical plan for one query: the operator pipeline the engine
/// executes, with per-operator cardinality estimates.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Candidate selection, one step per query node, in execution order.
    pub candidates: Vec<CandidateStep>,
    /// Downward-prune steps over internal query nodes.  Executed in a
    /// children-first repair of this order (see
    /// [`normalized_prune_down`](Self::normalized_prune_down)).
    ///
    /// There is deliberately no switch for the upward round: it is
    /// load-bearing for correctness (the shrunk-prime Cartesian product
    /// assumes upward-pruned candidate sets), so a plan may only carry its
    /// estimate, not disable it.
    pub prune_down: Vec<PruneStep>,
    /// Estimated candidates surviving the upward round (over prime nodes).
    pub upward_estimated_rows: u64,
    /// Estimated size (nodes + edges) of the maximal matching graph.
    pub matching_estimated_rows: u64,
    /// Estimated number of result tuples.
    pub collect_estimated_rows: u64,
    /// Estimated number of reachability set-probe calls both prune rounds
    /// will issue — the weight behind the backend recommendation.
    pub estimated_probes: u64,
    /// The backend recommendation.
    pub backend: PlannedBackend,
}

impl QueryPlan {
    /// The seed's hard-wired pipeline as an explicit plan: index scans
    /// everywhere, prune order by query-node id (bottom-up), no backend
    /// recommendation, no estimates.  Used as the planner-less baseline by
    /// the plan-quality benchmarks and tests.
    pub fn fixed_pipeline(q: &Gtpq) -> Self {
        QueryPlan {
            candidates: q
                .node_ids()
                .map(|node| CandidateStep {
                    node,
                    access: AccessPath::IndexScan,
                    estimated_rows: 0,
                })
                .collect(),
            prune_down: PruneStep::bottom_up(q),
            upward_estimated_rows: 0,
            matching_estimated_rows: 0,
            collect_estimated_rows: 0,
            estimated_probes: 0,
            backend: PlannedBackend {
                kind: None,
                reason: "fixed pipeline (no planning)",
            },
        }
    }

    /// The intra-query parallelism degree worth using for this plan:
    /// `requested` workers when the estimated work is large enough to
    /// amortize the fan-out, 1 (serial) otherwise.
    ///
    /// The weight is the same one behind the backend recommendation —
    /// [`estimated_probes`](Self::estimated_probes), the predicted
    /// reachability work of both prune rounds — plus the estimated matching
    /// graph and result sizes.  A cheap query (point lookups, guaranteed-empty
    /// postings) stays serial no matter how many threads the caller offers:
    /// morsel dispatch, worker scratch, and the ordered merge all cost more
    /// than the work they would split.
    pub fn recommended_threads(&self, requested: usize) -> usize {
        /// Below this many estimated probes + rows, fan-out overhead wins.
        const MIN_PARALLEL_WORK: u64 = 10_000;
        let work = self
            .estimated_probes
            .saturating_add(self.matching_estimated_rows)
            .saturating_add(self.collect_estimated_rows);
        if work < MIN_PARALLEL_WORK {
            1
        } else {
            requested.max(1)
        }
    }

    /// Repairs [`prune_down`](Self::prune_down) into a valid execution order:
    /// children before parents (downward pruning is exact only bottom-up),
    /// honouring the plan's relative order among independent nodes, with any
    /// internal nodes missing from the plan appended bottom-up.
    ///
    /// This is what makes arbitrary plan perturbations safe: a shuffled or
    /// truncated prune list still executes as *some* children-first order, so
    /// the answer cannot change — only the pruning efficiency can.
    pub fn normalized_prune_down(&self, q: &Gtpq) -> Vec<PruneStep> {
        let internal: Vec<QueryNodeId> = q
            .bottom_up_order()
            .into_iter()
            .filter(|&u| !q.node(u).is_leaf())
            .collect();
        // Requested sequence: first occurrence wins, unknown nodes dropped,
        // missing internal nodes appended in bottom-up order (estimate 0).
        let mut requested: Vec<PruneStep> = Vec::with_capacity(internal.len());
        for step in &self.prune_down {
            if internal.contains(&step.node) && !requested.iter().any(|s| s.node == step.node) {
                requested.push(*step);
            }
        }
        for &u in &internal {
            if !requested.iter().any(|s| s.node == u) {
                requested.push(PruneStep {
                    node: u,
                    estimated_rows: 0,
                });
            }
        }
        // Greedy topological emit: repeatedly take the first requested step
        // whose internal children have all been emitted.  Terminates because
        // the query is a tree (some leaf-most requested node is always
        // ready); O(n²) on query sizes that are tens of nodes at most.
        let mut order: Vec<PruneStep> = Vec::with_capacity(requested.len());
        let mut done = vec![false; q.size()];
        while order.len() < requested.len() {
            let next = requested
                .iter()
                .position(|s| {
                    !done[s.node.index()]
                        && q.children(s.node)
                            .iter()
                            .all(|&c| q.node(c).is_leaf() || done[c.index()])
                })
                .expect("a tree always has a ready internal node");
            done[requested[next].node.index()] = true;
            order.push(requested[next]);
        }
        order
    }

    /// Renders the plan as an indented operator tree with estimates, e.g.
    ///
    /// ```text
    /// QueryPlan (backend: closure — per-query: …; est. probes 42)
    ///   IndexScan u1 [label = b1]      est 2 rows
    ///   …
    ///   PruneDown u0                   est 1 rows
    ///   PruneUp (prime subtree)        est 3 rows
    ///   MatchingGraph                  est 6 rows
    ///   Collect                        est 4 rows
    /// ```
    pub fn render(&self, q: &Gtpq) -> String {
        self.render_lines(q, None)
    }

    /// Like [`render`](Self::render), but appends each operator's actual row
    /// count from an executed run's recorded operator stats (matched by
    /// operator label; operators the run never reached — e.g. after an
    /// empty-candidate early exit — show only their estimate).
    pub fn render_with_actuals(&self, q: &Gtpq, stats: &EvalStats) -> String {
        self.render_lines(q, Some(stats))
    }

    fn render_lines(&self, q: &Gtpq, stats: Option<&EvalStats>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let backend = match self.backend.kind {
            Some(kind) => kind.as_str(),
            None => "engine default",
        };
        let _ = writeln!(
            out,
            "QueryPlan (backend: {backend} — {}; est. probes {})",
            self.backend.reason, self.estimated_probes
        );
        let actual = |label: &str| -> String {
            match stats.and_then(|s| s.operators.iter().find(|o| o.label == label)) {
                Some(o) => format!(" → actual {} rows in {:.3?}", o.actual_rows, o.time),
                None => String::new(),
            }
        };
        for step in &self.candidates {
            let label = format!("{} {}", step.access.name(), step.node);
            let detail = format!("[{}]", q.node(step.node).attr);
            let _ = writeln!(
                out,
                "  {label:<14} {detail:<28} est {} rows{}",
                step.estimated_rows,
                actual(&label),
            );
        }
        for step in self.normalized_prune_down(q) {
            let label = format!("PruneDown {}", step.node);
            let _ = writeln!(
                out,
                "  {label:<43} est {} rows{}",
                step.estimated_rows,
                actual(&label),
            );
        }
        let _ = writeln!(
            out,
            "  {:<43} est {} rows{}",
            "PruneUp (prime subtree)",
            self.upward_estimated_rows,
            actual("PruneUp"),
        );
        let _ = writeln!(
            out,
            "  {:<43} est {} rows{}",
            "MatchingGraph",
            self.matching_estimated_rows,
            actual("MatchingGraph"),
        );
        let _ = write!(
            out,
            "  {:<43} est {} rows{}",
            "Collect",
            self.collect_estimated_rows,
            actual("Collect"),
        );
        out
    }
}

/// Builds [`QueryPlan`]s for one data graph.
///
/// Construction is cheap (no graph analysis); per-query planning costs
/// O(|Q| · comparisons · log) posting-length probes.  Hand the planner a
/// [`GraphProfile`] (computed once per graph) to enable per-query backend
/// recommendations, and the set of already-built backends so their
/// construction cost counts as sunk.
#[derive(Clone, Debug)]
pub struct Planner<'g> {
    graph: &'g DataGraph,
    profile: Option<GraphProfile>,
    prebuilt: Vec<BackendKind>,
}

impl<'g> Planner<'g> {
    /// A planner with no graph profile: plans order work by selectivity but
    /// recommend no backend switch.
    pub fn new(graph: &'g DataGraph) -> Self {
        Self {
            graph,
            profile: None,
            prebuilt: Vec::new(),
        }
    }

    /// Enables backend recommendations from a precomputed profile.
    pub fn with_profile(mut self, profile: GraphProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Declares backends whose indexes already exist (sunk build cost).
    pub fn with_prebuilt(mut self, kinds: &[BackendKind]) -> Self {
        self.prebuilt = kinds.to_vec();
        self
    }

    /// Builds the cost-based plan for `q`.
    pub fn plan(&self, q: &Gtpq) -> QueryPlan {
        let g = self.graph;
        let n = g.node_count() as u64;

        // Per-node candidate estimates from posting lengths.
        let est: Vec<u64> = q
            .node_ids()
            .map(|u| q.estimate_candidates(g, u) as u64)
            .collect();

        // Access paths: index scans unless the predicate needs per-node
        // verification *and* the index restricts less than ~10% of the node
        // table — then the posting intersection is pure overhead on top of a
        // near-full verification scan.
        let mut candidates: Vec<CandidateStep> = q
            .node_ids()
            .map(|u| {
                let attr = &q.node(u).attr;
                let indexable = attr.is_fully_indexable();
                let access = if !attr.sims.is_empty() {
                    // Similarity conjuncts always go through the pivot
                    // filter; its estimate (from the pivot-table statistics)
                    // already reflects how selective the sim predicates are.
                    AccessPath::PivotScan
                } else if !attr.comparisons.is_empty() && !indexable && est[u.index()] * 10 >= n * 9
                {
                    AccessPath::FullScan
                } else {
                    AccessPath::IndexScan
                };
                CandidateStep {
                    node: u,
                    access,
                    estimated_rows: est[u.index()],
                }
            })
            .collect();
        // Cheapest selections first: the executor stops at the first empty
        // backbone selection, so a guaranteed-empty posting (estimate 0 is
        // an upper bound) answers the whole query with one probe.
        candidates.sort_by_key(|s| s.estimated_rows);

        // Crude post-prune survivor estimate: every child constraint roughly
        // halves a candidate set, capped at 1/16th.  Deliberately simple —
        // the executor records the actuals so the model can be judged.
        let est_out = |u: QueryNodeId| -> u64 {
            let shift = q.children(u).len().min(4) as u32;
            (est[u.index()] >> shift).max(1)
        };

        // Downward prune steps: children-first, cheapest candidate set first
        // among the ready nodes (normalized_prune_down preserves this order
        // because it is already a valid children-first order).
        let mut internal: Vec<QueryNodeId> =
            q.node_ids().filter(|&u| !q.node(u).is_leaf()).collect();
        let mut prune_down: Vec<PruneStep> = Vec::with_capacity(internal.len());
        let mut done = vec![false; q.size()];
        while !internal.is_empty() {
            let ready = internal
                .iter()
                .enumerate()
                .filter(|(_, &u)| {
                    q.children(u)
                        .iter()
                        .all(|&c| q.node(c).is_leaf() || done[c.index()])
                })
                .min_by_key(|(_, &u)| est[u.index()])
                .map(|(i, _)| i)
                .expect("a tree always has a ready internal node");
            let u = internal.swap_remove(ready);
            done[u.index()] = true;
            prune_down.push(PruneStep {
                node: u,
                estimated_rows: est_out(u),
            });
        }

        // Probe estimate: downward issues one prepared-probe call per
        // candidate of an internal node per AD child; upward one per
        // candidate of each prime child reached through an AD edge.
        let prime = PrimeSubtree::new(q);
        let mut probes: u64 = 0;
        for u in q.node_ids() {
            if q.node(u).is_leaf() {
                continue;
            }
            let ad_children = q
                .children(u)
                .iter()
                .filter(|&&c| q.incoming_edge(c) != Some(EdgeKind::Child))
                .count() as u64;
            probes = probes.saturating_add(est[u.index()].saturating_mul(ad_children));
        }
        let mut upward_estimated_rows: u64 = 0;
        for &u in &prime.nodes {
            upward_estimated_rows = upward_estimated_rows.saturating_add(est_out(u));
            for &c in prime.children_of(u) {
                if q.incoming_edge(c) != Some(EdgeKind::Child) {
                    probes = probes.saturating_add(est_out(c));
                }
            }
        }

        let backend = match &self.profile {
            Some(profile) => {
                let sel = select_backend_for_query(profile, probes, &self.prebuilt);
                PlannedBackend {
                    kind: Some(sel.kind),
                    reason: sel.reason,
                }
            }
            None => PlannedBackend {
                kind: None,
                reason: "engine-default backend (no graph profile)",
            },
        };

        let matching_estimated_rows = upward_estimated_rows.saturating_mul(2);
        let collect_estimated_rows = q
            .output_nodes()
            .iter()
            .map(|&u| est_out(u))
            .fold(1u64, u64::saturating_mul)
            .min(1 << 40);

        QueryPlan {
            candidates,
            prune_down,
            upward_estimated_rows,
            matching_estimated_rows,
            collect_estimated_rows,
            estimated_probes: probes,
            backend,
        }
    }
}

/// Executes the candidate-selection operators of `plan` in plan order,
/// returning the initial `mat(u)` sets and recording one operator per step.
///
/// Selection stops as soon as a *backbone* node selects zero candidates: a
/// backbone node needs an image in every match, so the answer is empty no
/// matter what the remaining nodes would select, and the engine returns
/// before any of the unselected (left empty) sets are read.  The planner
/// orders steps by ascending estimate, so guaranteed-empty postings
/// (estimate 0 — the estimate is an upper bound) bail out after one probe.
///
/// Robust against hand-written plans: query nodes missing from the plan are
/// appended as index scans, steps naming unknown nodes are ignored, and
/// duplicate steps keep the first occurrence.
///
/// `ctl` is polled at every step boundary; deadline expiry or cancellation
/// aborts with an [`Interrupt`].  `stats.candidate_time` accumulates the
/// elapsed time either way, so aborted requests keep their partial figures.
pub fn execute_candidates(
    q: &Gtpq,
    g: &DataGraph,
    plan: &QueryPlan,
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<Vec<Vec<NodeId>>, Interrupt> {
    let start = Instant::now();
    let result = execute_candidates_inner(q, g, plan, stats, ctl);
    stats.candidate_time += start.elapsed();
    result
}

fn execute_candidates_inner(
    q: &Gtpq,
    g: &DataGraph,
    plan: &QueryPlan,
    stats: &mut EvalStats,
    ctl: &ExecCtl,
) -> Result<Vec<Vec<NodeId>>, Interrupt> {
    let mut order: Vec<CandidateStep> = Vec::with_capacity(q.size());
    let mut seen = vec![false; q.size()];
    for step in &plan.candidates {
        if step.node.index() < q.size() && !seen[step.node.index()] {
            seen[step.node.index()] = true;
            order.push(step.clone());
        }
    }
    for u in q.node_ids() {
        if !seen[u.index()] {
            order.push(CandidateStep {
                node: u,
                access: AccessPath::IndexScan,
                estimated_rows: 0,
            });
        }
    }
    let mut mat: Vec<Vec<NodeId>> = vec![Vec::new(); q.size()];
    for step in &order {
        ctl.check()?;
        let u = step.node;
        let span = ctl
            .tracer()
            .span_with(|| format!("{} {}", step.access.name(), u));
        let op_start = Instant::now();
        let nodes = match step.access {
            // A pivot scan is the indexed selection with sim conjuncts in
            // the predicate: `select_candidates` routes them through the
            // graph's pivot tables and reports the filter counters, which
            // `record_selection` folds into the sim stats.
            AccessPath::IndexScan | AccessPath::PivotScan => {
                let selection = q.candidates_indexed(g, u);
                record_selection(&selection, stats);
                selection.nodes
            }
            AccessPath::FullScan => {
                stats.input_nodes += g.node_count() as u64;
                stats.scanned_nodes += g.node_count() as u64;
                let nodes = if ctl.threads() > 1 {
                    // The candidate domain of a full scan is the whole node
                    // table, so it partitions trivially into fixed-size
                    // morsels; the order-preserving filter keeps the output
                    // identical to the serial `q.candidates` scan.
                    let all: Vec<NodeId> = g.nodes().collect();
                    let ranges = morsel::morsel_ranges(all.len(), ctl.threads());
                    let (kept, _) = morsel::parallel_retain(all, &ranges, ctl, stats, |v, _| {
                        q.matches_attr(g, v, u)
                    })?;
                    kept
                } else {
                    q.candidates(g, u)
                };
                stats.initial_candidates += nodes.len() as u64;
                nodes
            }
        };
        span.field("est_rows", step.estimated_rows);
        span.field("actual_rows", nodes.len());
        drop(span);
        stats.operators.push(OperatorStats {
            label: format!("{} {}", step.access.name(), u),
            estimated_rows: step.estimated_rows,
            actual_rows: nodes.len() as u64,
            time: op_start.elapsed(),
        });
        let emptied_backbone = nodes.is_empty() && q.is_backbone(u);
        mat[u.index()] = nodes;
        if emptied_backbone {
            break;
        }
    }
    Ok(mat)
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_query::{AttrPredicate, CmpOp, GtpqBuilder};

    use super::*;

    #[test]
    fn default_plan_orders_prune_by_selectivity_and_stays_topological() {
        let g = example_graph();
        let q = example_query();
        let plan = Planner::new(&g).plan(&q);
        assert_eq!(plan.candidates.len(), q.size());
        // Every internal node appears exactly once.
        let internal: Vec<QueryNodeId> = q.node_ids().filter(|&u| !q.node(u).is_leaf()).collect();
        assert_eq!(plan.prune_down.len(), internal.len());
        // Children-first: every step's internal children precede it.
        let pos = |u: QueryNodeId| plan.prune_down.iter().position(|s| s.node == u).unwrap();
        for &u in &internal {
            for &c in q.children(u) {
                if !q.node(c).is_leaf() {
                    assert!(pos(c) < pos(u), "{c} must be pruned before {u}");
                }
            }
        }
        assert!(plan.estimated_probes > 0);
    }

    #[test]
    fn estimates_upper_bound_actual_candidates() {
        let g = example_graph();
        let q = example_query();
        let plan = Planner::new(&g).plan(&q);
        for step in &plan.candidates {
            let actual = q.candidates(&g, step.node).len() as u64;
            assert!(
                step.estimated_rows >= actual,
                "{}: est {} < actual {}",
                step.node,
                step.estimated_rows,
                actual
            );
        }
    }

    #[test]
    fn full_scan_is_chosen_only_when_the_index_cannot_restrict() {
        let g = example_graph();
        // Label prefixes are string ranges (non-indexable) over the label
        // name posting, which covers every node — the planner should scan.
        let mut b = GtpqBuilder::new(AttrPredicate::any().and(
            gtpq_graph::LABEL_ATTR,
            CmpOp::Ge,
            gtpq_graph::AttrValue::str(""),
        ));
        b.mark_output(b.root_id());
        let q = b.build().unwrap();
        let plan = Planner::new(&g).plan(&q);
        assert_eq!(plan.candidates[0].access, AccessPath::FullScan);
        // A selective equality stays on the index.
        let mut b = GtpqBuilder::new(AttrPredicate::label("a1"));
        b.mark_output(b.root_id());
        let q = b.build().unwrap();
        let plan = Planner::new(&g).plan(&q);
        assert_eq!(plan.candidates[0].access, AccessPath::IndexScan);
    }

    #[test]
    fn sim_predicates_plan_and_execute_as_pivot_scans() {
        // 16 nodes with 4-dim embeddings in two well-separated clusters.
        let mut b = gtpq_graph::GraphBuilder::new();
        for i in 0..16u32 {
            let base = if i % 2 == 0 { 0.0f32 } else { 8.0 };
            b.add_node_with_attrs([
                ("label", gtpq_graph::AttrValue::str("doc")),
                (
                    "emb",
                    gtpq_graph::AttrValue::Vec(vec![base + i as f32 * 0.01, base, 0.0, 1.0]),
                ),
            ]);
        }
        let g = b.build();
        let q: Gtpq = "[label = doc, sim(emb, [0, 0, 0, 1]) < 1]*"
            .parse()
            .unwrap();
        let plan = Planner::new(&g).plan(&q);
        assert_eq!(plan.candidates[0].access, AccessPath::PivotScan);
        assert!(plan.render(&q).contains("PivotScan u0"));

        let mut stats = EvalStats::default();
        let mat = execute_candidates(&q, &g, &plan, &mut stats, &ExecCtl::unbounded()).unwrap();
        // Exactly the even (near-origin) cluster survives.
        assert_eq!(mat[0].len(), 8);
        assert!(mat[0].iter().all(|v| v.0 % 2 == 0));
        // The pivot filter discarded the far cluster without verification,
        // and the counters add up to the indexed vector count.
        assert!(stats.sim_verified >= 8);
        assert_eq!(stats.sim_verified + stats.sim_pivot_filtered, 16);
        assert!(stats.sim_filter_selectivity() > 0.0);
        // `:explain analyze` gets an estimate-vs-actual row for the scan,
        // and the estimation-error rollup folds it in.
        let rendered = plan.render_with_actuals(&q, &stats);
        assert!(
            rendered.contains("PivotScan u0") && rendered.contains("actual 8 rows"),
            "{rendered}"
        );
        assert!(stats.operators.iter().any(|o| o.label == "PivotScan u0"));
        let est = plan.candidates[0].estimated_rows;
        assert!(est >= 8, "pivot estimate {est} must upper-bound the answer");
    }

    #[test]
    fn recommended_threads_keeps_cheap_plans_serial() {
        let g = example_graph();
        let q = example_query();
        // The fixed pipeline carries no estimates: always serial.
        assert_eq!(QueryPlan::fixed_pipeline(&q).recommended_threads(8), 1);
        // The running example is tiny — far below the fan-out threshold.
        let mut plan = Planner::new(&g).plan(&q);
        assert_eq!(plan.recommended_threads(8), 1);
        // Inflate the estimated work: the requested degree passes through.
        plan.estimated_probes = 1_000_000;
        assert_eq!(plan.recommended_threads(8), 8);
        assert_eq!(plan.recommended_threads(0), 1);
    }

    #[test]
    fn full_scans_parallelize_without_changing_the_result() {
        let g = example_graph();
        let q = example_query();
        let mut plan = Planner::new(&g).plan(&q);
        for step in &mut plan.candidates {
            step.access = AccessPath::FullScan;
        }
        let mut serial_stats = EvalStats::default();
        let serial =
            execute_candidates(&q, &g, &plan, &mut serial_stats, &ExecCtl::unbounded()).unwrap();
        let mut par_stats = EvalStats::default();
        let ctl = ExecCtl::unbounded().with_threads(4);
        let parallel = execute_candidates(&q, &g, &plan, &mut par_stats, &ctl).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats.scanned_nodes, par_stats.scanned_nodes);
        assert_eq!(
            serial_stats.initial_candidates,
            par_stats.initial_candidates
        );
    }

    #[test]
    fn normalization_repairs_shuffled_and_truncated_orders() {
        let g = example_graph();
        let q = example_query();
        let mut plan = Planner::new(&g).plan(&q);
        plan.prune_down.reverse();
        let order = plan.normalized_prune_down(&q);
        let pos = |u: QueryNodeId| order.iter().position(|s| s.node == u).unwrap();
        for step in &order {
            for &c in q.children(step.node) {
                if !q.node(c).is_leaf() {
                    assert!(pos(c) < pos(step.node));
                }
            }
        }
        // Truncated: missing internal nodes are appended.
        plan.prune_down.truncate(1);
        assert_eq!(
            plan.normalized_prune_down(&q).len(),
            q.node_ids().filter(|&u| !q.node(u).is_leaf()).count()
        );
        // Garbage steps are ignored.
        plan.prune_down.push(PruneStep {
            node: QueryNodeId(999),
            estimated_rows: 1,
        });
        assert!(plan
            .normalized_prune_down(&q)
            .iter()
            .all(|s| s.node.index() < q.size()));
    }

    #[test]
    fn backend_recommendation_requires_a_profile() {
        let g = example_graph();
        let q = example_query();
        let plan = Planner::new(&g).plan(&q);
        assert!(plan.backend.kind.is_none());
        let profile = GraphProfile::compute(&g);
        let plan = Planner::new(&g)
            .with_profile(profile)
            .with_prebuilt(&[BackendKind::ThreeHop])
            .plan(&q);
        assert!(plan.backend.kind.is_some());
        assert!(!plan.backend.reason.is_empty());
    }

    #[test]
    fn fixed_pipeline_mirrors_the_seed_shape() {
        let g = example_graph();
        let q = example_query();
        let plan = QueryPlan::fixed_pipeline(&q);
        assert_eq!(plan.candidates.len(), q.size());
        assert!(plan
            .candidates
            .iter()
            .all(|s| s.access == AccessPath::IndexScan));
        assert!(plan.backend.kind.is_none());
        // Its prune order is already children-first, so normalization is a
        // no-op reordering-wise.
        let normalized = plan.normalized_prune_down(&q);
        let ids: Vec<QueryNodeId> = plan.prune_down.iter().map(|s| s.node).collect();
        let norm_ids: Vec<QueryNodeId> = normalized.iter().map(|s| s.node).collect();
        assert_eq!(ids, norm_ids);
        let _ = g;
    }

    #[test]
    fn rendering_mentions_every_operator() {
        let g = example_graph();
        let q = example_query();
        let plan = Planner::new(&g).plan(&q);
        let text = plan.render(&q);
        assert!(text.contains("QueryPlan"));
        assert!(text.contains("IndexScan u0"));
        assert!(text.contains("PruneDown"));
        assert!(text.contains("PruneUp"));
        assert!(text.contains("MatchingGraph"));
        assert!(text.contains("Collect"));
        assert!(text.contains("est. probes"));
    }

    #[test]
    fn execute_candidates_defaults_missing_steps_to_index_scans() {
        let g = example_graph();
        let q = example_query();
        let mut plan = Planner::new(&g).plan(&q);
        plan.candidates.clear();
        let mut stats = EvalStats::default();
        let mat = execute_candidates(&q, &g, &plan, &mut stats, &ExecCtl::unbounded()).unwrap();
        for u in q.node_ids() {
            assert_eq!(mat[u.index()], q.candidates(&g, u));
        }
        assert_eq!(stats.operators.len(), q.size());
    }
}
