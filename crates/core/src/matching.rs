//! The maximal matching graph (§4.3).
//!
//! Instead of materializing intermediate matches as tuples, GTEA groups the
//! surviving candidates by query node and connects a pair of data nodes by an
//! edge whenever the corresponding query nodes are connected in the (shrunk)
//! prime subtree and the data nodes satisfy the edge's relationship.  Each
//! data node is stored at most once per query node and each relationship by a
//! single edge, so the representation is at most quadratic even when the
//! number of matches is exponential.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

use gtpq_graph::{DataGraph, NodeId};
use gtpq_query::{EdgeKind, Gtpq, QueryNodeId};
use gtpq_reach::Reachability;

use crate::exec::{ExecCtl, Interrupt};
use crate::morsel;
use crate::prime::ShrunkPrime;
use crate::stats::EvalStats;

/// The maximal matching graph of a shrunk prime subtree.
#[derive(Clone, Debug, Default)]
pub struct MatchingGraph {
    /// Branch lists: for a `(query node, candidate)` pair, one list of matched
    /// data nodes per shrunk child (in the order of
    /// [`ShrunkPrime::children_of`]).
    branches: HashMap<(QueryNodeId, NodeId), Vec<Vec<NodeId>>>,
    /// Number of data-node occurrences in the graph.
    pub node_count: usize,
    /// Number of edges in the graph.
    pub edge_count: usize,
}

impl MatchingGraph {
    /// Builds the matching graph for the shrunk prime subtree.
    ///
    /// `ctl` is polled once per `(query node, candidate)` pair; deadline
    /// expiry or cancellation aborts with an [`Interrupt`].
    /// `stats.matching_graph_time` (and the lookup / intermediate-size
    /// rollups, over the partially built graph) are recorded either way.
    #[allow(clippy::too_many_arguments)] // the evaluation pipeline state is explicit
    pub fn build<R: Reachability + ?Sized>(
        q: &Gtpq,
        g: &DataGraph,
        index: &R,
        shrunk: &ShrunkPrime,
        mat: &[Vec<NodeId>],
        stats: &mut EvalStats,
        ctl: &ExecCtl,
    ) -> Result<Self, Interrupt> {
        let start = Instant::now();
        let lookups_before = index.lookup_count();
        let mut graph = MatchingGraph::default();
        let result = graph.fill(q, g, index, shrunk, mat, stats, ctl);
        stats.index_lookups += index.lookup_count().saturating_sub(lookups_before);
        stats.intermediate_size += 2 * (graph.node_count + graph.edge_count) as u64;
        stats.matching_graph_time += start.elapsed();
        result.map(|()| graph)
    }

    #[allow(clippy::too_many_arguments)] // mirrors the public entry point
    fn fill<R: Reachability + ?Sized>(
        &mut self,
        q: &Gtpq,
        g: &DataGraph,
        index: &R,
        shrunk: &ShrunkPrime,
        mat: &[Vec<NodeId>],
        stats: &mut EvalStats,
        ctl: &ExecCtl,
    ) -> Result<(), Interrupt> {
        let graph = self;
        for &u in &shrunk.nodes {
            graph.node_count += mat[u.index()].len();
            let children = shrunk.children_of(u).to_vec();
            if children.is_empty() {
                continue;
            }
            // Precompute candidate sets of children for PC adjacency checks.
            let child_sets: Vec<HashSet<NodeId>> = children
                .iter()
                .map(|c| mat[c.index()].iter().copied().collect())
                .collect();
            // The per-candidate branch lists are independent of each other,
            // so the candidate domain splits into morsels; outputs come back
            // in input order and fold into the graph exactly as the serial
            // loop would.  PC adjacency lookups ride the per-worker side
            // counter; reachability-probe counts are picked up by the
            // `lookup_count` delta in [`MatchingGraph::build`].
            let candidates = &mat[u.index()];
            let per_candidate = |&v: &NodeId, lookups: &Cell<u64>| -> Vec<Vec<NodeId>> {
                let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(children.len());
                for (ci, &child) in children.iter().enumerate() {
                    let matched: Vec<NodeId> = match q.incoming_edge(child) {
                        Some(EdgeKind::Child) => {
                            lookups.set(lookups.get() + g.out_degree(v) as u64);
                            g.children(v)
                                .iter()
                                .copied()
                                .filter(|c| child_sets[ci].contains(c))
                                .collect()
                        }
                        _ => {
                            let probe = index.source_probe(v);
                            mat[child.index()]
                                .iter()
                                .copied()
                                .filter(|&t| probe(t))
                                .collect()
                        }
                    };
                    lists.push(matched);
                }
                lists
            };
            let ranges = morsel::morsel_ranges(candidates.len(), ctl.threads());
            let (all_lists, pc_lookups) = if ctl.threads() > 1 && ranges.len() > 1 {
                let (all_lists, round) =
                    morsel::parallel_map(candidates, &ranges, ctl, per_candidate)?;
                morsel::fold_round(stats, &round);
                (all_lists, round.lookups)
            } else {
                let counter = Cell::new(0u64);
                let mut all_lists = Vec::with_capacity(candidates.len());
                for v in candidates {
                    ctl.check_sampled()?;
                    all_lists.push(per_candidate(v, &counter));
                }
                (all_lists, counter.get())
            };
            stats.index_lookups += pc_lookups;
            for (&v, lists) in candidates.iter().zip(all_lists) {
                graph.edge_count += lists.iter().map(Vec::len).sum::<usize>();
                graph.branches.insert((u, v), lists);
            }
        }
        Ok(())
    }

    /// The branch lists of a `(query node, candidate)` pair; one inner list per
    /// shrunk child of the query node.
    pub fn branches_of(&self, u: QueryNodeId, v: NodeId) -> Option<&Vec<Vec<NodeId>>> {
        self.branches.get(&(u, v))
    }
}

#[cfg(test)]
mod tests {
    use gtpq_query::fixtures::{example_graph, example_query};
    use gtpq_reach::ThreeHop;

    use crate::options::GteaOptions;
    use crate::plan::PruneStep;
    use crate::prime::{PrimeSubtree, ShrunkPrime};
    use crate::prune::{initial_candidates, prune_downward, prune_upward};

    use super::*;

    #[test]
    fn matching_graph_of_the_running_example() {
        let g = example_graph();
        let q = example_query();
        let index = ThreeHop::new(&g);
        let options = GteaOptions::default();
        let mut stats = EvalStats::default();
        let mut mat = initial_candidates(&q, &g, &mut stats);
        prune_downward(
            &q,
            &g,
            &index,
            &options,
            &PruneStep::bottom_up(&q),
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let prime = PrimeSubtree::new(&q);
        prune_upward(
            &q,
            &g,
            &index,
            &options,
            &prime,
            0,
            &mut mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        let shrunk = ShrunkPrime::new(&q, &prime, &mat, false);
        let graph = MatchingGraph::build(
            &q,
            &g,
            &index,
            &shrunk,
            &mat,
            &mut stats,
            &ExecCtl::unbounded(),
        )
        .unwrap();
        // Root candidate v1 has two branch lists (u2 and u3 children).
        let root_branches = graph.branches_of(QueryNodeId(0), NodeId(0)).unwrap();
        assert_eq!(root_branches.len(), 2);
        assert_eq!(root_branches[0], vec![NodeId(2), NodeId(7)]);
        assert_eq!(root_branches[1], vec![NodeId(2)]);
        // u3's candidate v3 points to the three d1 nodes for u4.
        let u3_branches = graph.branches_of(QueryNodeId(2), NodeId(2)).unwrap();
        assert_eq!(u3_branches[0], vec![NodeId(10), NodeId(11), NodeId(13)]);
        assert!(graph.node_count >= 6);
        assert!(graph.edge_count >= 6);
        assert!(stats.intermediate_size > 0);
    }
}
