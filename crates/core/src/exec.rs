//! Execution control: deadlines and cooperative cancellation.
//!
//! Every stage of the evaluation pipeline (candidate selection, both prune
//! rounds, matching-graph construction and result enumeration) polls an
//! [`ExecCtl`] and aborts with an [`Interrupt`] when the request's deadline
//! has passed or its [`CancelToken`] was triggered.  The polls are designed
//! to be cheap enough for inner loops: an unbounded control is two `Option`
//! checks, and bounded controls read the wall clock only at operator
//! boundaries plus every [`SAMPLE_EVERY`]-th inner-loop iteration.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtpq_obs::Tracer;

/// Inner-loop polls between wall-clock reads in [`ExecCtl::check_sampled`].
pub const SAMPLE_EVERY: u32 = 64;

/// Why an evaluation stopped before producing its complete answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The deadline passed while the evaluation was still running.
    Timeout,
    /// The request's [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Timeout => write!(f, "evaluation deadline exceeded"),
            Interrupt::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// A shared flag that cancels an in-flight evaluation from another thread.
///
/// Cloning shares the flag: cancel any clone and every evaluation polling a
/// control built from it stops at its next poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers the token; every control holding it reports
    /// [`Interrupt::Cancelled`] on its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been triggered.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-evaluation deadline + cancellation control, polled by every pipeline
/// stage.
///
/// Neither `Send` nor `Sync` (it keeps an interior poll counter and an
/// `Rc`-shared [`Tracer`]); build one per evaluation and share the underlying
/// [`CancelToken`] across threads instead.
///
/// The control also carries the request's tracer: every pipeline stage polls
/// the control anyway, so riding the tracer along gives each stage span
/// recording without widening any signature.  The default tracer is disabled
/// and costs nothing.
#[derive(Clone, Debug, Default)]
pub struct ExecCtl {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    polls: Cell<u32>,
    tracer: Tracer,
}

impl ExecCtl {
    /// A control that never interrupts — the default for the legacy
    /// `evaluate*` entry points.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Adds an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a deadline `budget` from now.
    pub fn with_timeout(self, budget: Duration) -> Self {
        let now = Instant::now();
        self.with_deadline(now.checked_add(budget).unwrap_or(now))
    }

    /// Adds a cancellation token (shared with the party that may cancel).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a tracer; every pipeline stage records its spans through it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer the pipeline records spans through (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether this control can never interrupt.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Full poll for operator boundaries: always checks the cancellation
    /// flag and, when a deadline is set, the wall clock.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::Timeout);
            }
        }
        Ok(())
    }

    /// Sampled poll for inner loops: the cancellation flag is checked on
    /// every call, the wall clock only every [`SAMPLE_EVERY`]-th call (and on
    /// the first, so a zero budget trips immediately).
    pub fn check_sampled(&self) -> Result<(), Interrupt> {
        if self.is_unbounded() {
            return Ok(());
        }
        let polls = self.polls.get();
        self.polls.set(polls.wrapping_add(1));
        if self.deadline.is_some() && !polls.is_multiple_of(SAMPLE_EVERY) {
            // Between clock reads, still honour cancellation (atomic load).
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(Interrupt::Cancelled);
                }
            }
            return Ok(());
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_interrupts() {
        let ctl = ExecCtl::unbounded();
        assert!(ctl.is_unbounded());
        for _ in 0..1000 {
            assert_eq!(ctl.check(), Ok(()));
            assert_eq!(ctl.check_sampled(), Ok(()));
        }
    }

    #[test]
    fn zero_budget_times_out_on_the_first_poll() {
        let ctl = ExecCtl::unbounded().with_timeout(Duration::ZERO);
        assert_eq!(ctl.check(), Err(Interrupt::Timeout));
        let ctl = ExecCtl::unbounded().with_timeout(Duration::ZERO);
        assert_eq!(ctl.check_sampled(), Err(Interrupt::Timeout));
    }

    #[test]
    fn generous_budget_does_not_interrupt() {
        let ctl = ExecCtl::unbounded().with_timeout(Duration::from_secs(3600));
        assert!(!ctl.is_unbounded());
        for _ in 0..2 * SAMPLE_EVERY {
            assert_eq!(ctl.check_sampled(), Ok(()));
        }
    }

    #[test]
    fn cancellation_is_seen_by_every_poll_flavour() {
        let token = CancelToken::new();
        let ctl = ExecCtl::unbounded()
            .with_cancel(token.clone())
            .with_timeout(Duration::from_secs(3600));
        assert_eq!(ctl.check(), Ok(()));
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(ctl.check(), Err(Interrupt::Cancelled));
        // Sampled polls see it even between clock reads.
        for _ in 0..3 {
            assert_eq!(ctl.check_sampled(), Err(Interrupt::Cancelled));
        }
    }

    #[test]
    fn interrupts_render_as_errors() {
        assert!(Interrupt::Timeout.to_string().contains("deadline"));
        assert!(Interrupt::Cancelled.to_string().contains("cancelled"));
    }
}
