//! Execution control: deadlines and cooperative cancellation.
//!
//! Every stage of the evaluation pipeline (candidate selection, both prune
//! rounds, matching-graph construction and result enumeration) polls an
//! [`ExecCtl`] and aborts with an [`Interrupt`] when the request's deadline
//! has passed or its [`CancelToken`] was triggered.  The polls are designed
//! to be cheap enough for inner loops: an unbounded control is two `Option`
//! checks, and bounded controls read the wall clock only at operator
//! boundaries plus every [`SAMPLE_EVERY`]-th inner-loop iteration.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gtpq_obs::Tracer;

/// Inner-loop polls between wall-clock reads in [`ExecCtl::check_sampled`].
pub const SAMPLE_EVERY: u32 = 64;

/// Why an evaluation stopped before producing its complete answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The deadline passed while the evaluation was still running.
    Timeout,
    /// The request's [`CancelToken`] was triggered.
    Cancelled,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Timeout => write!(f, "evaluation deadline exceeded"),
            Interrupt::Cancelled => write!(f, "evaluation cancelled"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// A shared flag that cancels an in-flight evaluation from another thread.
///
/// Cloning shares the flag: cancel any clone and every evaluation polling a
/// control built from it stops at its next poll.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers the token; every control holding it reports
    /// [`Interrupt::Cancelled`] on its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been triggered.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-evaluation deadline + cancellation control, polled by every pipeline
/// stage.
///
/// Neither `Send` nor `Sync` (it keeps an interior poll counter and an
/// `Rc`-shared [`Tracer`]); build one per evaluation and share the underlying
/// [`CancelToken`] across threads instead.  Worker threads of a
/// morsel-parallel stage rebuild their own controls from the `Send`
/// ingredients via [`worker`](Self::worker).
///
/// The control also carries the request's tracer: every pipeline stage polls
/// the control anyway, so riding the tracer along gives each stage span
/// recording without widening any signature.  The default tracer is disabled
/// and costs nothing.  It also carries the requested intra-query parallelism
/// degree ([`threads`](Self::threads)), so every stage can decide whether to
/// fan out without widening its signature either.
#[derive(Clone, Debug)]
pub struct ExecCtl {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// A second cancellation slot, triggered by the *consumer* side of a
    /// partitioned enumeration to stop its worker streams early (limit
    /// satisfied).  Kept separate from `cancel` so a consumer-initiated stop
    /// cannot be mistaken for a request-level cancellation.
    stop: Option<CancelToken>,
    threads: usize,
    polls: Cell<u32>,
    tracer: Tracer,
}

impl Default for ExecCtl {
    fn default() -> Self {
        Self {
            deadline: None,
            cancel: None,
            stop: None,
            threads: 1,
            polls: Cell::new(0),
            tracer: Tracer::disabled(),
        }
    }
}

/// The `Send` ingredients of an [`ExecCtl`]: deadline and cancellation
/// tokens, without the thread-local poll counter and tracer.  Worker threads
/// of a parallel stage call [`ctl`](Self::ctl) to rebuild a control that
/// honours the same deadline and cancellation as the parent.
#[derive(Clone, Debug, Default)]
pub struct WorkerCtl {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    stop: Option<CancelToken>,
}

impl WorkerCtl {
    /// Adds the consumer-side stop token (see [`ExecCtl::with_stop`]).
    pub fn with_stop(mut self, token: CancelToken) -> Self {
        self.stop = Some(token);
        self
    }

    /// Builds a single-threaded control with the same deadline and
    /// cancellation sources as the parent, a fresh poll counter and a
    /// disabled tracer.
    pub fn ctl(&self) -> ExecCtl {
        ExecCtl {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            stop: self.stop.clone(),
            ..ExecCtl::default()
        }
    }
}

impl ExecCtl {
    /// A control that never interrupts — the default for the legacy
    /// `evaluate*` entry points.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Adds an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a deadline `budget` from now.
    pub fn with_timeout(self, budget: Duration) -> Self {
        let now = Instant::now();
        self.with_deadline(now.checked_add(budget).unwrap_or(now))
    }

    /// Adds a cancellation token (shared with the party that may cancel).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a tracer; every pipeline stage records its spans through it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the intra-query parallelism degree (clamped to at least 1).
    /// Stages fan out over the worker pool only when this exceeds 1 *and*
    /// their input is large enough to split.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Adds the consumer-side stop token of a partitioned enumeration: when
    /// triggered, polls report [`Interrupt::Cancelled`] just like a request
    /// cancellation, but only the worker streams holding the token see it.
    pub fn with_stop(mut self, token: CancelToken) -> Self {
        self.stop = Some(token);
        self
    }

    /// The tracer the pipeline records spans through (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The intra-query parallelism degree (1 = serial, the default).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// The `Send` ingredients of this control, for rebuilding per-worker
    /// controls on other threads.
    pub fn worker(&self) -> WorkerCtl {
        WorkerCtl {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            stop: self.stop.clone(),
        }
    }

    /// Whether this control can never interrupt.
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.stop.is_none()
    }

    /// Full poll for operator boundaries: always checks the cancellation
    /// flag and, when a deadline is set, the wall clock.
    pub fn check(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(token) = &self.stop {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::Timeout);
            }
        }
        Ok(())
    }

    /// Sampled poll for inner loops: the cancellation flag is checked on
    /// every call, the wall clock only every [`SAMPLE_EVERY`]-th call (and on
    /// the first, so a zero budget trips immediately).
    pub fn check_sampled(&self) -> Result<(), Interrupt> {
        if self.is_unbounded() {
            return Ok(());
        }
        let polls = self.polls.get();
        self.polls.set(polls.wrapping_add(1));
        if self.deadline.is_some() && !polls.is_multiple_of(SAMPLE_EVERY) {
            // Between clock reads, still honour cancellation (atomic load).
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Err(Interrupt::Cancelled);
                }
            }
            if let Some(token) = &self.stop {
                if token.is_cancelled() {
                    return Err(Interrupt::Cancelled);
                }
            }
            return Ok(());
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_interrupts() {
        let ctl = ExecCtl::unbounded();
        assert!(ctl.is_unbounded());
        for _ in 0..1000 {
            assert_eq!(ctl.check(), Ok(()));
            assert_eq!(ctl.check_sampled(), Ok(()));
        }
    }

    #[test]
    fn zero_budget_times_out_on_the_first_poll() {
        let ctl = ExecCtl::unbounded().with_timeout(Duration::ZERO);
        assert_eq!(ctl.check(), Err(Interrupt::Timeout));
        let ctl = ExecCtl::unbounded().with_timeout(Duration::ZERO);
        assert_eq!(ctl.check_sampled(), Err(Interrupt::Timeout));
    }

    #[test]
    fn generous_budget_does_not_interrupt() {
        let ctl = ExecCtl::unbounded().with_timeout(Duration::from_secs(3600));
        assert!(!ctl.is_unbounded());
        for _ in 0..2 * SAMPLE_EVERY {
            assert_eq!(ctl.check_sampled(), Ok(()));
        }
    }

    #[test]
    fn cancellation_is_seen_by_every_poll_flavour() {
        let token = CancelToken::new();
        let ctl = ExecCtl::unbounded()
            .with_cancel(token.clone())
            .with_timeout(Duration::from_secs(3600));
        assert_eq!(ctl.check(), Ok(()));
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(ctl.check(), Err(Interrupt::Cancelled));
        // Sampled polls see it even between clock reads.
        for _ in 0..3 {
            assert_eq!(ctl.check_sampled(), Err(Interrupt::Cancelled));
        }
    }

    #[test]
    fn interrupts_render_as_errors() {
        assert!(Interrupt::Timeout.to_string().contains("deadline"));
        assert!(Interrupt::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn threads_degree_is_clamped_to_at_least_one() {
        assert_eq!(ExecCtl::default().threads(), 1);
        assert_eq!(ExecCtl::unbounded().with_threads(0).threads(), 1);
        assert_eq!(ExecCtl::unbounded().with_threads(8).threads(), 8);
    }

    #[test]
    fn worker_controls_share_deadline_and_cancellation() {
        let token = CancelToken::new();
        let parent = ExecCtl::unbounded()
            .with_cancel(token.clone())
            .with_timeout(Duration::from_secs(3600))
            .with_threads(4);
        let parts = parent.worker();
        let handle = std::thread::spawn(move || {
            let wctl = parts.ctl();
            assert_eq!(wctl.threads(), 1);
            assert_eq!(wctl.check(), Ok(()));
            token.cancel();
            assert_eq!(wctl.check(), Err(Interrupt::Cancelled));
        });
        handle.join().unwrap();
        assert_eq!(parent.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn stop_token_cancels_workers_but_not_the_parent() {
        let stop = CancelToken::new();
        let parent = ExecCtl::unbounded().with_timeout(Duration::from_secs(3600));
        let wctl = parent.worker().with_stop(stop.clone()).ctl();
        assert_eq!(wctl.check(), Ok(()));
        assert_eq!(wctl.check_sampled(), Ok(()));
        stop.cancel();
        assert_eq!(wctl.check(), Err(Interrupt::Cancelled));
        assert_eq!(wctl.check_sampled(), Err(Interrupt::Cancelled));
        // The parent never sees a consumer-side stop.
        assert_eq!(parent.check(), Ok(()));
    }
}
